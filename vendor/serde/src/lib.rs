//! Offline stand-in for `serde`.
//!
//! The build environment has no reachable crates registry, so the workspace
//! vendors the small serde surface it actually uses: a JSON-shaped
//! [`Value`] tree, an insertion-ordered [`Map`], and `Serialize` /
//! `Deserialize` traits expressed directly in terms of `Value` (no visitor
//! machinery). `#[derive(Serialize, Deserialize)]` comes from
//! `vendor/serde_derive` and targets exactly these traits; the JSON text
//! layer lives in `vendor/serde_json`.
//!
//! Deliberate simplifications relative to real serde:
//! * serialization is eager (build the whole `Value` tree, then print);
//! * numbers are kept as `U64` / `I64` / `F64` variants — consumers that
//!   pattern-match `Value` only distinguish `Object` / `Array` / `String`;
//! * non-finite floats serialize as `null` (matching serde_json's
//!   lossy-but-total `json!` behaviour rather than erroring).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON value tree.
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup that tolerates non-objects/missing keys (returns
    /// `Null`), matching `serde_json`'s `Index` behaviour.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Numbers compare by value across `U64` / `I64` / `F64` variants, so a
/// serialized-then-reparsed tree compares equal to its source even though
/// the parser picks the narrowest integer representation.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Insertion-ordered string-keyed map (`serde_json::Map` stand-in).
///
/// Backed by a `Vec` — the maps here are small (struct fields, figure
/// JSONs), and insertion order keeps serialized output deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn iter(&self) -> std::slice::Iter<'_, (String, Value)> {
        self.entries.iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            entries: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = &'a (String, Value);
    type IntoIter = std::slice::Iter<'a, (String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-support helper: read struct field `name` from `map`, treating a
/// missing key as `Null` (so `Option` fields tolerate absence while
/// required fields produce a typed error).
pub fn from_field<T: Deserialize>(map: &Map, name: &str) -> Result<T, Error> {
    let v = map.get(name).unwrap_or(&NULL);
    T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

// ---------------------------------------------------------------- impls --

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => Ok(($(
                        $t::from_value(
                            items.get($n).ok_or_else(|| Error::custom("tuple too short"))?,
                        )?,
                    )+)),
                    _ => Err(Error::custom("expected array for tuple")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A);
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
}

impl Serialize for Map<String, Value> {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map<String, Value> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .cloned()
            .ok_or_else(|| Error::custom("expected object"))
    }
}
