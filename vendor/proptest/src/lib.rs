//! Offline stand-in for `proptest`.
//!
//! The build environment has no reachable crates registry, so the workspace
//! vendors the proptest surface its tests use: `proptest!` with an optional
//! `#![proptest_config(..)]` inner attribute, range/tuple/`Just`/`prop_map`
//! strategies, `prop_oneof!`, `collection::vec`, `option::of`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Deliberate simplifications: no shrinking (failures report the generated
//! inputs via the assertion message only), and generation is driven by a
//! fixed-seed splitmix64 stream keyed on the test's module path and name,
//! so every run of a given test explores the same deterministic sequence
//! of cases.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator; the sole entropy source for a test.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (FNV-1a of the name), so distinct tests
    /// get distinct but reproducible streams.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction: fine for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of one type. Unlike real proptest there is no
/// shrinking, so a strategy is just a seeded sampler.
pub trait Strategy {
    type Value;

    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        (**self).gen(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.gen(rng))
    }
}

/// Uniform choice between alternatives (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].gen(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
    (0 A, 1 B, 2 C, 3 D, 4 E);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact size or a half-open /
    /// inclusive range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.gen(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match real proptest's default 50/50 weighting closely enough:
            // 1-in-4 None keeps both arms well exercised.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen(rng))
            }
        }
    }
}

/// Runner configuration: only the `cases` knob is supported.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a proptest file conventionally imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skip the current generated case when its inputs don't satisfy a
/// precondition. Expands to `continue` targeting the per-case loop, so it
/// must appear at the top level of the test body (true of every use in
/// this repository).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a plain test running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::gen(&($strategy), &mut __rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(u8),
        B(u16, u8),
        C,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u8..20).prop_map(Op::A),
            ((0u16..400), (1u8..10)).prop_map(|(a, l)| Op::B(a, l)),
            Just(Op::C),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_respects_size(
            xs in crate::collection::vec(0u64..100, 2..30),
            fixed in crate::collection::vec(0.0f64..1.0, 8),
            opt in crate::option::of(0u32..40),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 30);
            prop_assert_eq!(fixed.len(), 8);
            if let Some(v) = opt {
                prop_assert!(v < 40);
            }
        }

        #[test]
        fn oneof_and_assume(ops in crate::collection::vec(op(), 1..50), k in 0usize..50) {
            prop_assume!(k < ops.len());
            match &ops[k] {
                Op::A(v) => prop_assert!((1..20).contains(v)),
                Op::B(a, l) => prop_assert!(*a < 400 && (1..10).contains(l)),
                Op::C => {}
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = TestRng::for_test("x");
        let mut r2 = TestRng::for_test("x");
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}
