//! Offline stand-in for `criterion`.
//!
//! The build environment has no reachable crates registry, so the workspace
//! vendors the criterion surface its benches use: `criterion_group!` (both
//! list and `name/config/targets` struct syntax), `criterion_main!`,
//! `Criterion::default().sample_size(..)`, `benchmark_group` with
//! `throughput` / `sample_size` / `bench_function` / `finish`, and
//! `Bencher::iter`.
//!
//! Measurement model: per benchmark, one untimed warm-up sample, then
//! `sample_size` timed samples. Fast bodies are batched until a sample
//! takes ≥1 ms so timer resolution doesn't dominate. Reports min / mean /
//! max per-iteration time and optional throughput. No statistical
//! analysis, baselines, or HTML reports — the numbers print to stdout.
//!
//! CLI: a single positional argument filters benchmarks by substring
//! (matching `cargo bench -- <filter>`); `--test` runs each benchmark body
//! once, untimed (what `cargo test --benches` passes); other flags are
//! ignored.

use std::time::{Duration, Instant};

/// Units for reporting throughput alongside timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level harness state: configuration plus parsed CLI arguments.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {} // ignore --bench and friends
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            sample_size: 100,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (consuming, for
    /// `Criterion::default().sample_size(10)` in `criterion_group!`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let sample_size = self.sample_size;
        self.run_one(&name, None, sample_size, f);
        self
    }

    fn run_one<F>(
        &mut self,
        full_name: &str,
        throughput: Option<Throughput>,
        samples: usize,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples,
            test_mode: self.test_mode,
            per_iter_ns: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {full_name} ... ok");
            return;
        }
        bencher.report(full_name, throughput);
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = format!("{}/{}", self.name, name.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(&full_name, throughput, samples, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` does the measuring.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Calibrate a batch size so one sample is at least ~1 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            // Aim straight for the threshold with 2x headroom.
            let scale = (1_000_000f64 / elapsed.as_nanos().max(1) as f64).ceil() * 2.0;
            batch = (batch as f64 * scale.clamp(2.0, 1024.0)) as u64;
        }
        self.per_iter_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            self.per_iter_ns.push(ns);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.per_iter_ns.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let min = self
            .per_iter_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.per_iter_ns.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.per_iter_ns.iter().sum::<f64>() / self.per_iter_ns.len() as f64;
        let mut line = format!(
            "{name:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Some(t) = throughput {
            let per_sec = match t {
                Throughput::Bytes(n) => format!("{}/s", fmt_bytes(n as f64 / (mean / 1e9))),
                Throughput::Elements(n) => {
                    format!("{:.3} Melem/s", n as f64 / (mean / 1e9) / 1e6)
                }
            };
            line.push_str(&format!("  thrpt: [{per_sec}]"));
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_bytes(bytes_per_sec: f64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    const GIB: f64 = 1024.0 * MIB;
    if bytes_per_sec >= GIB {
        format!("{:.3} GiB", bytes_per_sec / GIB)
    } else {
        format!("{:.3} MiB", bytes_per_sec / MIB)
    }
}

/// Group benchmark functions; supports both the list form and the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
            test_mode: false,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(8));
            g.sample_size(2);
            g.bench_function("fast", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0, "benchmark body must run");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("nomatch".into()),
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
