//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no reachable crates registry, so the workspace
//! vendors a minimal serde implementation (see `vendor/serde`). This crate
//! provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the only
//! shape the repository uses: non-generic structs with named fields and no
//! `#[serde(...)]` attributes. The derive parses the raw token stream by
//! hand (no `syn`/`quote`, which would need the registry) and emits impls of
//! the `serde::Serialize` / `serde::Deserialize` traits defined in
//! `vendor/serde`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extract `(struct_name, field_names)` from a derive input token stream.
///
/// Accepts: outer attributes (incl. doc comments), a visibility modifier,
/// `struct Name { fields }`. Field types may contain angle-bracketed
/// generics and parenthesised tuples; commas inside either do not split
/// fields (parens/brackets/braces arrive as single `Group` tokens, and `<`
/// / `>` depth is tracked explicitly).
fn parse_named_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility, find `struct`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "struct" => break,
            _ => i += 1,
        }
    }
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, got {other:?}")),
    };
    let body = tokens[i + 2..].iter().find_map(|t| match t {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
        _ => None,
    });
    let body = match body {
        Some(b) => b,
        None => {
            return Err(format!(
                "derive on `{name}`: only named-field structs are supported"
            ))
        }
    };

    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Skip field attributes (doc comments) and visibility.
        loop {
            match toks.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = toks.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "struct `{name}`: expected field name, got {other:?}"
                ))
            }
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("struct `{name}`: tuple structs are not supported")),
        }
        // Skip the type: consume until a top-level `,` (angle depth 0).
        let mut angle_depth = 0i32;
        while let Some(tok) = toks.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok((name, fields))
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = match parse_named_struct(input) {
        Ok(ok) => ok,
        Err(e) => panic!("#[derive(Serialize)]: {e}"),
    };
    let mut body = String::new();
    for f in &fields {
        body.push_str(&format!(
            "__map.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __map = ::serde::Map::new();\n\
                 {body}\
                 ::serde::Value::Object(__map)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = match parse_named_struct(input) {
        Ok(ok) => ok,
        Err(e) => panic!("#[derive(Deserialize)]: {e}"),
    };
    let mut body = String::new();
    for f in &fields {
        body.push_str(&format!("{f}: ::serde::from_field(__map, {f:?})?,\n"));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let __map = match __v {{\n\
                     ::serde::Value::Object(m) => m,\n\
                     _ => return Err(::serde::Error::custom(concat!(\"expected object for \", stringify!({name})))),\n\
                 }};\n\
                 Ok({name} {{\n\
                     {body}\
                 }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
