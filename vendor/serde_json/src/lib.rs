//! Offline stand-in for `serde_json`: prints and parses JSON text over the
//! [`Value`] tree defined in `vendor/serde`.
//!
//! Supports exactly what the repository uses: `to_string` /
//! `to_string_pretty` (2-space indent, insertion-ordered objects, shortest
//! round-trip float formatting), `from_str` for any `serde::Deserialize`
//! type, and a literal-key `json!` macro.

pub use serde;
pub use serde::{Error, Map, Value};

use std::fmt::Write as _;

/// Build a [`Value`] from JSON-ish syntax. Keys must be string literals;
/// values may be nested `{..}` / `[..]` literals, `null`, or any single
/// `Serialize` expression token (numbers, strings, variables).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $( __map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::serde::Serialize::to_value(&$other) };
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type (including `Value` itself).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        // `{:?}` is Rust's shortest round-trip float formatting and always
        // keeps a decimal point (`1.0`, not `1`), matching serde_json.
        Value::F64(f) if f.is_finite() => {
            let _ = write!(out, "{f:?}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = json!({
            "name": "cubic",
            "mtu": 9000,
            "mean": 1.5,
            "flags": [true, false, null],
            "nested": {"x": [1, 2, 3]}
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back["nested"]["x"].as_array().unwrap().len(), 3);
        assert_eq!(back["mtu"].as_u64(), Some(9000));
        assert_eq!(back["mean"].as_f64(), Some(1.5));
        assert_eq!(back["missing"].as_f64(), None);
    }

    #[test]
    fn negative_numbers_parse() {
        let v: Value = from_str("[-3, -2.5]").unwrap();
        assert_eq!(v[0].as_i64(), Some(-3));
        assert_eq!(v[1].as_f64(), Some(-2.5));
    }

    #[test]
    fn floats_keep_precision() {
        let v = json!([0.1, 1.0, (std::f64::consts::PI), 1e-9]);
        let text = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, vec![0.1, 1.0, std::f64::consts::PI, 1e-9]);
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("a\"b\\c\nd\u{1}".to_string());
        let text = to_string(&v).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, "a\"b\\c\nd\u{1}");
    }
}
