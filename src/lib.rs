//! # green-envy-repro — umbrella crate
//!
//! Reproduction of *"Green With Envy: Unfair Congestion Control
//! Algorithms Can Be More Energy Efficient"* (Arslan, Renganathan, Spang —
//! HotNets '23). This root crate re-exports the workspace's public
//! surface and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! Start with the `greenenvy` experiment layer:
//!
//! ```no_run
//! use green_envy_repro::greenenvy::{fig1, Scale};
//!
//! let result = fig1::run(&fig1::Config::at_scale(Scale::quick()));
//! println!("{}", fig1::render(&result));
//! ```
//!
//! Layers, bottom-up:
//!
//! * [`netsim`] — deterministic packet-level network simulator;
//! * [`transport`] — TCP machinery (SACK, RACK/TLP, RTO, pacing);
//! * [`cca`] — the paper's ten congestion control algorithms;
//! * [`energy`] — the calibrated RAPL-style host energy model;
//! * [`workload`] — iperf3-style scenarios on the simulated testbed;
//! * [`analysis`] — statistics and table rendering;
//! * [`greenenvy`] — one module per figure/table of the paper.

pub use analysis;
pub use cca;
pub use energy;
pub use greenenvy;
pub use netsim;
pub use transport;
pub use workload;
