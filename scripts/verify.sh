#!/usr/bin/env bash
# Full offline verification: release build, the whole test suite, and a
# quick-scale smoke run of every figure binary. This is what CI (and a
# reviewer) should run before merging engine or experiment changes.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== figure smoke run (GREENENVY_SCALE=quick) =="
# Run from a scratch directory: the figure binaries write results/*.json
# relative to the cwd, and the quick-scale smoke must not clobber the
# tracked standard-scale results at the repo root.
repo=$PWD
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
(cd "$smoke" && GREENENVY_SCALE=quick \
    cargo run --release --offline --manifest-path "$repo/Cargo.toml" -p bench --bin all)

echo "verify.sh: all green"
