#!/usr/bin/env bash
# Full offline verification: release build, the whole test suite, and a
# quick-scale smoke run of every figure binary. This is what CI (and a
# reviewer) should run before merging engine or experiment changes.
#
# Usage: scripts/verify.sh [--chaos] [--resume]
#   --chaos   additionally run the fault-injection suite: the netsim and
#             transport chaos property tests, the golden determinism
#             fingerprints (clean + faulted), and a quick-scale run of the
#             chaos experiment binary.
#   --resume  additionally drill the durability layer end to end: start a
#             tiny-scale journaled campaign, SIGTERM it mid-flight, resume
#             it, and require the merged matrix to be byte-identical to an
#             uninterrupted run. Also lints the campaign code with clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

chaos=0
resume=0
for arg in "$@"; do
    case "$arg" in
        --chaos) chaos=1 ;;
        --resume) resume=1 ;;
        *) echo "verify.sh: unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== figure smoke run (GREENENVY_SCALE=quick) =="
# Run from a scratch directory: the figure binaries write results/*.json
# relative to the cwd, and the quick-scale smoke must not clobber the
# tracked standard-scale results at the repo root.
repo=$PWD
smoke=$(mktemp -d)
drill=""
trap 'rm -rf "$smoke" ${drill:+"$drill"}' EXIT
(cd "$smoke" && GREENENVY_SCALE=quick \
    cargo run --release --offline --manifest-path "$repo/Cargo.toml" -p bench --bin all)

if [[ $chaos -eq 1 ]]; then
    echo "== chaos stage: fault-injection properties =="
    cargo test -q --release --offline -p netsim --test proptest_fault
    cargo test -q --release --offline -p transport --test proptest_chaos
    echo "== chaos stage: golden fingerprints (clean + faulted) =="
    cargo test -q --release --offline -p greenenvy --test golden_determinism
    echo "== chaos stage: experiment smoke run (GREENENVY_SCALE=quick) =="
    (cd "$smoke" && GREENENVY_SCALE=quick \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" -p bench --bin chaos)
fi

if [[ $resume -eq 1 ]]; then
    echo "== resume stage: clippy on the campaign layer =="
    cargo clippy --release --offline -p greenenvy -p bench --all-targets -- -D warnings

    echo "== resume stage: kill/resume drill (GREENENVY_SCALE=tiny) =="
    drill=$(mktemp -d)
    # Golden reference: the campaign start to finish, uninterrupted.
    (cd "$drill" && mkdir -p golden && cd golden && GREENENVY_SCALE=tiny \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" \
        -p bench --bin campaign -- --paranoid --threads 2)

    # Interrupted run: SIGTERM once the journal shows progress, then
    # --resume to completion. Exit 130 is the campaign's "cancelled,
    # journal intact" signal.
    mkdir -p "$drill/drill"
    (cd "$drill/drill" && GREENENVY_SCALE=tiny \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" \
        -p bench --bin campaign -- --paranoid --threads 2) &
    pid=$!
    journal="$drill/drill/results/campaign_tiny.jsonl"
    for _ in $(seq 1 600); do
        # >5 lines = header + some journaled cells: interrupt mid-flight.
        if [[ -f "$journal" ]] && [[ $(wc -l <"$journal") -gt 5 ]]; then break; fi
        if ! kill -0 "$pid" 2>/dev/null; then break; fi
        sleep 0.1
    done
    if kill -TERM "$pid" 2>/dev/null; then
        wait "$pid" && status=0 || status=$?
        if [[ $status -ne 130 && $status -ne 0 ]]; then
            echo "verify.sh: interrupted campaign exited $status (wanted 130 graceful or 0 completed)" >&2
            exit 1
        fi
    else
        wait "$pid" || { echo "verify.sh: campaign died before the kill" >&2; exit 1; }
    fi
    (cd "$drill/drill" && GREENENVY_SCALE=tiny \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" \
        -p bench --bin campaign -- --paranoid --threads 2 --resume)

    if ! cmp -s "$drill/golden/results/matrix_tiny.json" "$drill/drill/results/matrix_tiny.json"; then
        echo "verify.sh: resumed matrix differs from the uninterrupted run" >&2
        diff "$drill/golden/results/matrix_tiny.json" "$drill/drill/results/matrix_tiny.json" | head >&2 || true
        exit 1
    fi
    echo "resume drill: resumed matrix is byte-identical to the uninterrupted run"
fi

echo "verify.sh: all green"
