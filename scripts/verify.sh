#!/usr/bin/env bash
# Full offline verification: release build, formatting, workspace clippy,
# the whole test suite, and a quick-scale smoke run of every figure
# binary. This is what CI (and a reviewer) should run before merging
# engine or experiment changes. A pass/fail table for every stage is
# printed at the end, even when a stage fails.
#
# Usage: scripts/verify.sh [--lint] [--chaos] [--resume] [--obs] [--perf] [--scenarios] [--supervise]
#   --lint    additionally run the simlint static-analysis pass over the
#             whole workspace: token rules (determinism, panic-hygiene,
#             durability, float discipline) plus the semantic pass
#             (nondeterminism taint, exit-code/schema/metric registries),
#             and the spec/invariant compliance tracker. Zero
#             unsuppressed findings and full invariant coverage required.
#   --chaos   additionally run the fault-injection suite: the netsim and
#             transport chaos property tests, the golden determinism
#             fingerprints (clean + faulted), and a quick-scale run of the
#             chaos experiment binary.
#   --resume  additionally drill the durability layer end to end: start a
#             tiny-scale journaled campaign, SIGTERM it mid-flight, resume
#             it, and require the merged matrix to be byte-identical to an
#             uninterrupted run.
#   --obs     additionally exercise the observability subsystem: the obs
#             unit tests, the golden obs fingerprint/reproducibility
#             tests, and a tiny-scale chaos run with --trace-out executed
#             twice — the exported Perfetto traces must be byte-identical
#             across the two runs.
#   --perf    additionally run the perf-regression gate: re-measure the
#             perf_baseline scenario suite (including bulk_10k_flows)
#             and fail if any tracked events_per_sec falls more than 15%
#             below the committed BENCH_netsim.json.
#   --scenarios
#             additionally run the declarative resilience suite twice at
#             tiny scale: every scenario must behave (positives pass
#             their expectations, the negative entry fails its
#             RecoveryWithin check as designed) and the two verdict JSON
#             artifacts must be byte-identical.
#   --supervise
#             additionally drill fleet supervision end to end: a sharded
#             tiny-scale campaign with an injected always-panicking cell
#             must finish with the poison cell quarantined (exit 4,
#             quarantine.jsonl carrying the attempt history); the same
#             campaign kill -9'd mid-flight and resumed on a narrower
#             pool must produce a byte-identical cells projection; and
#             the sharded journal must hold the single-journal
#             throughput baseline (perf_baseline --check-journal).
set -uo pipefail
cd "$(dirname "$0")/.."

lint=0
chaos=0
resume=0
obs=0
perf=0
scenarios=0
supervise=0
for arg in "$@"; do
    case "$arg" in
        --lint) lint=1 ;;
        --chaos) chaos=1 ;;
        --resume) resume=1 ;;
        --obs) obs=1 ;;
        --perf) perf=1 ;;
        --scenarios) scenarios=1 ;;
        --supervise) supervise=1 ;;
        *) echo "verify.sh: unknown argument: $arg" >&2; exit 2 ;;
    esac
done

# Stage bookkeeping: run_stage <name> <fn>. Stages run in order; once one
# fails, later stages are skipped but the summary table still prints so
# the first failure is visible next to everything that never ran.
stage_names=()
stage_results=()
failed=0

run_stage() {
    local name=$1 fn=$2
    stage_names+=("$name")
    if [[ $failed -eq 1 ]]; then
        stage_results+=("skip")
        return
    fi
    echo "== $name =="
    if "$fn"; then
        stage_results+=("pass")
    else
        stage_results+=("FAIL")
        failed=1
    fi
}

print_summary() {
    echo
    echo "== verify.sh summary =="
    local i
    for i in "${!stage_names[@]}"; do
        printf '  %-10s %s\n' "${stage_results[$i]}" "${stage_names[$i]}"
    done
    if [[ $failed -eq 1 ]]; then
        echo "verify.sh: FAILED"
    else
        echo "verify.sh: all green"
    fi
}

stage_build() {
    cargo build --release --offline --workspace
}

stage_fmt() {
    cargo fmt --check
}

stage_clippy() {
    cargo clippy --release --offline --workspace --all-targets -- -D warnings
}

stage_test() {
    cargo test -q --offline --workspace
}

stage_smoke() {
    # Run from a scratch directory: the figure binaries write
    # results/*.json relative to the cwd, and the quick-scale smoke must
    # not clobber the tracked standard-scale results at the repo root.
    (cd "$smoke" && GREENENVY_SCALE=quick \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" -p bench --bin all)
}

stage_perf() {
    cargo run --release --offline -p bench --bin perf_baseline -- --check
}

stage_lint() {
    cargo run --release --offline -p simlint -- --workspace &&
    cargo run --release --offline -p simlint -- compliance
}

stage_chaos() {
    cargo test -q --release --offline -p netsim --test proptest_fault &&
    cargo test -q --release --offline -p transport --test proptest_chaos &&
    cargo test -q --release --offline -p greenenvy --test golden_determinism &&
    (cd "$smoke" && GREENENVY_SCALE=quick \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" -p bench --bin chaos)
}

stage_resume() {
    drill=$(mktemp -d)
    # Golden reference: the campaign start to finish, uninterrupted.
    (cd "$drill" && mkdir -p golden && cd golden && GREENENVY_SCALE=tiny \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" \
        -p bench --bin campaign -- --paranoid --threads 2) || return 1

    # Interrupted run: SIGTERM once the journal shows progress, then
    # --resume to completion. Exit 130 is the campaign's "cancelled,
    # journal intact" signal.
    mkdir -p "$drill/drill"
    (cd "$drill/drill" && GREENENVY_SCALE=tiny \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" \
        -p bench --bin campaign -- --paranoid --threads 2) &
    local pid=$!
    local journal="$drill/drill/results/campaign_tiny.jsonl"
    for _ in $(seq 1 600); do
        # >5 lines = header + some journaled cells: interrupt mid-flight.
        if [[ -f "$journal" ]] && [[ $(wc -l <"$journal") -gt 5 ]]; then break; fi
        if ! kill -0 "$pid" 2>/dev/null; then break; fi
        sleep 0.1
    done
    if kill -TERM "$pid" 2>/dev/null; then
        local status=0
        wait "$pid" || status=$?
        if [[ $status -ne 130 && $status -ne 0 ]]; then
            echo "verify.sh: interrupted campaign exited $status (wanted 130 graceful or 0 completed)" >&2
            return 1
        fi
    else
        wait "$pid" || { echo "verify.sh: campaign died before the kill" >&2; return 1; }
    fi
    (cd "$drill/drill" && GREENENVY_SCALE=tiny \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" \
        -p bench --bin campaign -- --paranoid --threads 2 --resume) || return 1

    if ! cmp -s "$drill/golden/results/matrix_tiny.json" "$drill/drill/results/matrix_tiny.json"; then
        echo "verify.sh: resumed matrix differs from the uninterrupted run" >&2
        diff "$drill/golden/results/matrix_tiny.json" "$drill/drill/results/matrix_tiny.json" | head >&2 || true
        return 1
    fi
    echo "resume drill: resumed matrix is byte-identical to the uninterrupted run"
}

stage_obs() {
    cargo test -q --release --offline -p obs &&
    cargo test -q --release --offline -p greenenvy --test golden_obs || return 1

    # Run the tiny chaos sweep twice with --trace-out: deterministic
    # observability means every exported artifact is byte-identical
    # between the runs.
    local tracedir
    tracedir=$(mktemp -d)
    local run
    for run in a b; do
        (cd "$tracedir" && mkdir -p "$run" && cd "$run" && GREENENVY_SCALE=tiny \
            cargo run --release --offline --manifest-path "$repo/Cargo.toml" \
            -p bench --bin chaos -- --trace-out traces) || { rm -rf "$tracedir"; return 1; }
    done
    local n
    n=$(ls "$tracedir/a/traces"/*.trace.json 2>/dev/null | wc -l)
    if [[ $n -lt 2 ]]; then
        echo "verify.sh: expected traces in $tracedir/a/traces, found $n" >&2
        rm -rf "$tracedir"; return 1
    fi
    local f
    for f in "$tracedir/a/traces"/*; do
        if ! cmp -s "$f" "$tracedir/b/traces/$(basename "$f")"; then
            echo "verify.sh: trace artifact $(basename "$f") differs between identical runs" >&2
            rm -rf "$tracedir"; return 1
        fi
    done
    if ! grep -q '"traceEvents"' "$tracedir/a/traces"/*.trace.json; then
        echo "verify.sh: exported trace is not Chrome-trace JSON" >&2
        rm -rf "$tracedir"; return 1
    fi
    echo "obs drill: $n trace artifacts byte-identical across two chaos runs"
    rm -rf "$tracedir"
}

stage_scenarios() {
    # The suite verdict is documented as a pure function of its specs:
    # two tiny-scale runs must behave AND emit byte-identical JSON.
    local scndir
    scndir=$(mktemp -d)
    local run
    for run in a b; do
        (cd "$scndir" && mkdir -p "$run" && cd "$run" && GREENENVY_SCALE=tiny \
            cargo run --release --offline --manifest-path "$repo/Cargo.toml" \
            -p bench --bin scenarios -- --out verdict.json --trace-out obs) \
            || { rm -rf "$scndir"; return 1; }
    done
    if ! cmp -s "$scndir/a/verdict.json" "$scndir/b/verdict.json"; then
        echo "verify.sh: scenario verdicts differ between identical runs" >&2
        diff "$scndir/a/verdict.json" "$scndir/b/verdict.json" | head >&2 || true
        rm -rf "$scndir"; return 1
    fi
    if ! grep -q '"all_behaved": true' "$scndir/a/verdict.json"; then
        echo "verify.sh: resilience suite misbehaved" >&2
        rm -rf "$scndir"; return 1
    fi
    if ! grep -q 'scenario_recovery_time_ms' "$scndir/a/obs/resilience.prom"; then
        echo "verify.sh: recovery histogram missing from the obs export" >&2
        rm -rf "$scndir"; return 1
    fi
    echo "scenario drill: suite behaved, verdicts byte-identical across two runs"
    rm -rf "$scndir"
}

stage_supervise() {
    supdir=$(mktemp -d)

    # Gate 1: sharding must not cost checkpoint throughput.
    cargo run --release --offline -p bench --bin perf_baseline -- --check-journal || return 1

    # Gate 2: golden poisoned run. The injected cubic@1500 cell panics on
    # every attempt; the campaign must quarantine it and finish the other
    # 39 cells (exit 4), with the attempt history in quarantine.jsonl.
    mkdir -p "$supdir/golden"
    local status=0
    (cd "$supdir/golden" && GREENENVY_SCALE=tiny GREENENVY_POISON=cubic@1500 \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" \
        -p bench --bin campaign -- --threads 3 --journal-dir journal \
        --max-attempts 2 --backoff 1 --cells-out cells.json 2>/dev/null) || status=$?
    if [[ $status -ne 4 ]]; then
        echo "verify.sh: poisoned campaign exited $status (wanted 4: quarantined)" >&2
        return 1
    fi
    local quarantine="$supdir/golden/journal/quarantine.jsonl"
    if ! grep -q 'cubic' "$quarantine" || ! grep -q 'injected poison cell' "$quarantine"; then
        echo "verify.sh: quarantine.jsonl does not name the poison cell" >&2
        return 1
    fi
    if ! grep -q 'attempt' "$quarantine"; then
        echo "verify.sh: quarantine.jsonl carries no attempt history" >&2
        return 1
    fi

    # Gate 3: the same poisoned campaign kill -9'd mid-flight, then
    # resumed on a narrower pool. No graceful handler runs on SIGKILL —
    # durability comes purely from the fsynced shard appends. The cells
    # projection (measurements minus retry bookkeeping, which
    # legitimately differs across lives) must be byte-identical.
    mkdir -p "$supdir/drill"
    # exec so $pid IS the campaign binary: a kill -9 must hit the worker
    # pool itself, not a cargo/subshell wrapper that would leave the
    # campaign running as an orphan (and the drill testing nothing).
    (cd "$supdir/drill" && GREENENVY_SCALE=tiny GREENENVY_POISON=cubic@1500 \
        exec "$repo/target/release/campaign" --threads 3 --journal-dir journal \
        --max-attempts 2 --backoff 1 2>/dev/null) &
    local pid=$!
    local shards="$supdir/drill/journal"
    for _ in $(seq 1 600); do
        # >6 lines = 3 shard headers + some journaled cells: mid-flight.
        if [[ $(cat "$shards"/shard-*.jsonl 2>/dev/null | wc -l) -gt 6 ]]; then break; fi
        if ! kill -0 "$pid" 2>/dev/null; then break; fi
        sleep 0.1
    done
    if kill -9 "$pid" 2>/dev/null; then
        status=0
        wait "$pid" || status=$?
        if [[ $status -ne 137 && $status -ne 4 ]]; then
            echo "verify.sh: killed campaign exited $status (wanted 137 SIGKILL or 4 completed)" >&2
            return 1
        fi
    else
        wait "$pid" || { echo "verify.sh: campaign died before the kill" >&2; return 1; }
    fi
    status=0
    (cd "$supdir/drill" && GREENENVY_SCALE=tiny GREENENVY_POISON=cubic@1500 \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" \
        -p bench --bin campaign -- --threads 2 --journal-dir journal \
        --max-attempts 2 --backoff 1 --cells-out cells.json --resume 2>/dev/null) || status=$?
    if [[ $status -ne 4 ]]; then
        echo "verify.sh: resumed poisoned campaign exited $status (wanted 4: quarantined)" >&2
        return 1
    fi
    if ! grep -q 'cubic' "$supdir/drill/journal/quarantine.jsonl"; then
        echo "verify.sh: resumed quarantine.jsonl does not name the poison cell" >&2
        return 1
    fi
    if ! cmp -s "$supdir/golden/cells.json" "$supdir/drill/cells.json"; then
        echo "verify.sh: resumed cells projection differs from the uninterrupted poisoned run" >&2
        diff "$supdir/golden/cells.json" "$supdir/drill/cells.json" | head >&2 || true
        return 1
    fi
    echo "supervise drill: poison cell quarantined (exit 4) and kill -9 resume is byte-identical"
}

repo=$PWD
smoke=$(mktemp -d)
drill=""
supdir=""
trap 'rm -rf "$smoke" ${drill:+"$drill"} ${supdir:+"$supdir"}' EXIT

run_stage "build (release, offline)" stage_build
run_stage "fmt (cargo fmt --check)" stage_fmt
run_stage "clippy (workspace, -D warnings)" stage_clippy
run_stage "tests (offline)" stage_test
run_stage "figure smoke run (GREENENVY_SCALE=quick)" stage_smoke
if [[ $perf -eq 1 ]]; then
    run_stage "perf (baseline regression gate)" stage_perf
fi
if [[ $lint -eq 1 ]]; then
    run_stage "lint (simlint --workspace + compliance)" stage_lint
fi
if [[ $chaos -eq 1 ]]; then
    run_stage "chaos (fault injection + fingerprints)" stage_chaos
fi
if [[ $resume -eq 1 ]]; then
    run_stage "resume (kill/resume drill, GREENENVY_SCALE=tiny)" stage_resume
fi
if [[ $obs -eq 1 ]]; then
    run_stage "obs (trace reproducibility, GREENENVY_SCALE=tiny)" stage_obs
fi
if [[ $scenarios -eq 1 ]]; then
    run_stage "scenarios (resilience suite, GREENENVY_SCALE=tiny)" stage_scenarios
fi
if [[ $supervise -eq 1 ]]; then
    run_stage "supervise (poison/quarantine/kill -9 drill, GREENENVY_SCALE=tiny)" stage_supervise
fi

print_summary
exit $failed
