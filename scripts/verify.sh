#!/usr/bin/env bash
# Full offline verification: release build, the whole test suite, and a
# quick-scale smoke run of every figure binary. This is what CI (and a
# reviewer) should run before merging engine or experiment changes.
#
# Usage: scripts/verify.sh [--chaos]
#   --chaos  additionally run the fault-injection suite: the netsim and
#            transport chaos property tests, the golden determinism
#            fingerprints (clean + faulted), and a quick-scale run of the
#            chaos experiment binary.
set -euo pipefail
cd "$(dirname "$0")/.."

chaos=0
for arg in "$@"; do
    case "$arg" in
        --chaos) chaos=1 ;;
        *) echo "verify.sh: unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== figure smoke run (GREENENVY_SCALE=quick) =="
# Run from a scratch directory: the figure binaries write results/*.json
# relative to the cwd, and the quick-scale smoke must not clobber the
# tracked standard-scale results at the repo root.
repo=$PWD
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
(cd "$smoke" && GREENENVY_SCALE=quick \
    cargo run --release --offline --manifest-path "$repo/Cargo.toml" -p bench --bin all)

if [[ $chaos -eq 1 ]]; then
    echo "== chaos stage: fault-injection properties =="
    cargo test -q --release --offline -p netsim --test proptest_fault
    cargo test -q --release --offline -p transport --test proptest_chaos
    echo "== chaos stage: golden fingerprints (clean + faulted) =="
    cargo test -q --release --offline -p greenenvy --test golden_determinism
    echo "== chaos stage: experiment smoke run (GREENENVY_SCALE=quick) =="
    (cd "$smoke" && GREENENVY_SCALE=quick \
        cargo run --release --offline --manifest-path "$repo/Cargo.toml" -p bench --bin chaos)
fi

echo "verify.sh: all green"
