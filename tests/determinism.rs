//! Reproducibility: a run is a pure function of its configuration.

use green_envy_repro::cca::CcaKind;
use green_envy_repro::workload::prelude::*;

const MB: u64 = 1_000_000;

fn fingerprint(seed: u64, cca: CcaKind) -> (u64, u64, String) {
    let out = workload::scenario::run(
        &Scenario::new(9000, vec![FlowSpec::bulk(cca, 50 * MB)]).with_seed(seed),
    )
    .unwrap();
    let r = &out.reports[0];
    (
        r.fct.as_nanos(),
        r.retransmits,
        format!("{:.9}", out.sender_energy_j),
    )
}

#[test]
fn identical_configurations_replay_bit_for_bit() {
    for cca in [CcaKind::Cubic, CcaKind::Bbr, CcaKind::Baseline] {
        assert_eq!(
            fingerprint(42, cca),
            fingerprint(42, cca),
            "{} must replay identically",
            cca.name()
        );
    }
}

#[test]
fn the_fingerprint_depends_on_the_algorithm() {
    assert_ne!(
        fingerprint(42, CcaKind::Cubic),
        fingerprint(42, CcaKind::Bbr)
    );
}

#[test]
fn two_flow_scenarios_replay_identically() {
    let run = || {
        let out = workload::scenario::run(
            &Scenario::new(
                9000,
                vec![
                    FlowSpec::bulk(CcaKind::Cubic, 50 * MB),
                    FlowSpec::bulk(CcaKind::Cubic, 50 * MB),
                ],
            )
            .with_seed(7),
        )
        .unwrap();
        (
            out.window.as_nanos(),
            out.dropped_pkts,
            format!("{:.9}", out.sender_energy_j),
        )
    };
    assert_eq!(run(), run());
}
