//! Intra-algorithm fairness: two identical flows of each multi-flow-safe
//! CCA must converge to a reasonable share of the bottleneck. This guards
//! the competitive dynamics the two-flow experiments (Figs. 1, 3) rely
//! on, per algorithm.

use green_envy_repro::analysis::fairness::jain_index;
use green_envy_repro::cca::CcaKind;
use green_envy_repro::workload::prelude::*;

const MB: u64 = 1_000_000;

fn two_flow_jain(cca: CcaKind, bytes: u64) -> (f64, f64) {
    let out = workload::scenario::run(&Scenario::new(
        9000,
        vec![FlowSpec::bulk(cca, bytes), FlowSpec::bulk(cca, bytes)],
    ))
    .unwrap_or_else(|e| panic!("{}: {e}", cca.name()));
    let g: Vec<f64> = out.reports.iter().map(|r| r.mean_goodput.gbps()).collect();
    let aggregate = g.iter().sum();
    (jain_index(&g), aggregate)
}

/// Loss-based algorithms converge tightly.
#[test]
fn loss_based_ccas_share_fairly() {
    for cca in [
        CcaKind::Reno,
        CcaKind::Cubic,
        CcaKind::Highspeed,
        CcaKind::Westwood,
    ] {
        let (jain, aggregate) = two_flow_jain(cca, 200 * MB);
        assert!(jain > 0.85, "{}: Jain {jain:.3}", cca.name());
        assert!(
            aggregate > 8.5,
            "{}: aggregate {aggregate:.2} Gb/s",
            cca.name()
        );
    }
}

/// Scalable's MIMD is known not to converge to exact fairness (Kelly's
/// own analysis); require full utilization and only loose sharing.
#[test]
fn scalable_shares_loosely_but_fills_the_link() {
    let (jain, aggregate) = two_flow_jain(CcaKind::Scalable, 200 * MB);
    assert!(aggregate > 8.5, "aggregate {aggregate:.2}");
    assert!(jain > 0.55, "Jain {jain:.3} (MIMD tolerates imbalance)");
}

/// Delay-based algorithms against themselves.
#[test]
fn delay_based_ccas_share() {
    for cca in [CcaKind::Vegas, CcaKind::Swift] {
        let (jain, aggregate) = two_flow_jain(cca, 200 * MB);
        assert!(jain > 0.8, "{}: Jain {jain:.3}", cca.name());
        assert!(
            aggregate > 8.0,
            "{}: aggregate {aggregate:.2} Gb/s",
            cca.name()
        );
    }
}

/// DCTCP's proportional marking response is designed for convergence.
#[test]
fn dctcp_shares_fairly_on_its_marking_queue() {
    let (jain, aggregate) = two_flow_jain(CcaKind::Dctcp, 200 * MB);
    assert!(jain > 0.9, "Jain {jain:.3}");
    assert!(aggregate > 8.5, "aggregate {aggregate:.2}");
}

/// HPCC flows converge through shared telemetry.
#[test]
fn hpcc_shares_through_telemetry() {
    let (jain, aggregate) = two_flow_jain(CcaKind::Hpcc, 200 * MB);
    assert!(jain > 0.8, "Jain {jain:.3}");
    assert!(aggregate > 7.0, "aggregate {aggregate:.2}");
}

/// BBR v1's intra-fairness is famously loose; just require that both
/// flows finish and the link stays utilized.
#[test]
fn bbr_coexists_with_itself() {
    let (jain, aggregate) = two_flow_jain(CcaKind::Bbr, 200 * MB);
    assert!(aggregate > 7.5, "aggregate {aggregate:.2}");
    assert!(jain > 0.5, "Jain {jain:.3}");
}
