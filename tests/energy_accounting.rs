//! End-to-end checks that the measured (simulated-RAPL) energy agrees
//! with the analytic model it was calibrated from.

use green_envy_repro::cca::CcaKind;
use green_envy_repro::energy::prelude::*;
use green_envy_repro::netsim::units::Rate;
use green_envy_repro::workload::prelude::*;

const MB: u64 = 1_000_000;

/// A smoothly throttled sender's measured power lands on the analytic
/// curve across the whole range.
#[test]
fn measured_power_matches_analytic_curve() {
    let model = reference_host_model();
    let ctx = HostContext {
        background_util: 0.0,
        cc_cost_per_ack_j: cc_cost_per_ack_ref_j(),
    };
    for gbps in [1.0, 3.0, 5.0, 8.0] {
        let bytes = ((gbps * 1e9 / 8.0) * 0.1) as u64;
        let out = workload::scenario::run(&Scenario::new(
            9000,
            vec![FlowSpec::bulk(CcaKind::Cubic, bytes.max(10 * MB))
                .with_rate_limit(Rate::from_gbps(gbps))],
        ))
        .unwrap();
        let measured = out.average_sender_power_w();
        let analytic = model.sender_power_at(gbps, 9000, 0.5, ctx);
        assert!(
            (measured - analytic).abs() < 0.7,
            "{gbps} Gbps: measured {measured:.2} W vs analytic {analytic:.2} W"
        );
    }
}

/// Energy scales ~linearly with transfer size at a fixed rate (the
/// justification for running the campaign below 50 GB).
#[test]
fn energy_is_linear_in_transfer_size() {
    let run = |bytes: u64| {
        workload::scenario::run(&Scenario::new(
            9000,
            vec![FlowSpec::bulk(CcaKind::Cubic, bytes)],
        ))
        .unwrap()
        .sender_energy_j
    };
    let e1 = run(100 * MB);
    let e2 = run(200 * MB);
    let ratio = e2 / e1;
    assert!(
        (1.9..2.1).contains(&ratio),
        "doubling the bytes should double the energy: ratio {ratio:.3}"
    );
}

/// Background load raises total energy but *attenuates* the network
/// increment (the §4.2 coupling), end to end.
#[test]
fn background_load_attenuates_network_energy() {
    let energy = |load: f64, bytes: u64| {
        workload::scenario::run(
            &Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, bytes)])
                .with_background_load(StressLoad::fraction(load)),
        )
        .unwrap()
    };
    // Network increment at idle: active energy minus idle-host energy
    // over the same window.
    let idle_run = energy(0.0, 200 * MB);
    let loaded_run = energy(0.75, 200 * MB);
    let w_idle = idle_run.window.as_secs_f64();
    let w_loaded = loaded_run.window.as_secs_f64();
    let net_idle = idle_run.sender_energy_j - P_IDLE_W * w_idle;
    let base_loaded = (P_IDLE_W + reference_fan().watts(0.75)) * w_loaded;
    let net_loaded = loaded_run.sender_energy_j - base_loaded;
    assert!(
        net_loaded < 0.2 * net_idle,
        "network energy must attenuate on a busy host: {net_loaded:.2} vs {net_idle:.2}"
    );
}

/// The receiver's energy is reported separately and is of the same order
/// as a sender's (it processes the same volume).
#[test]
fn receiver_energy_is_reported() {
    let out = workload::scenario::run(&Scenario::new(
        9000,
        vec![FlowSpec::bulk(CcaKind::Cubic, 100 * MB)],
    ))
    .unwrap();
    assert!(out.receiver_energy_j > 0.0);
    let ratio = out.receiver_energy_j / out.sender_energy_j;
    assert!(
        (0.5..1.5).contains(&ratio),
        "receiver/sender energy ratio {ratio:.2}"
    );
}

/// RAPL quantization: reported Joules differ from the model total by at
/// most one counter unit per host.
#[test]
fn rapl_quantization_is_tiny() {
    let out = workload::scenario::run(&Scenario::new(
        9000,
        vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)],
    ))
    .unwrap();
    for reading in &out.sender_readings {
        assert!(
            (reading.joules - reading.breakdown.total_j()).abs() <= DEFAULT_UNIT_J,
            "quantization error exceeds one RAPL unit"
        );
    }
}

/// The energy breakdown's parts sum to its total for a real run.
#[test]
fn breakdown_is_itemized_consistently() {
    let out = workload::scenario::run(&Scenario::new(
        9000,
        vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)],
    ))
    .unwrap();
    let b = out.sender_readings[0].breakdown;
    let sum = b.idle_j + b.compute_j + b.curve_j + b.pkt_j + b.cc_j + b.retx_j;
    assert!((sum - b.total_j()).abs() < 1e-9);
    assert!(b.idle_j > 0.0 && b.curve_j > 0.0 && b.pkt_j > 0.0 && b.cc_j > 0.0);
    assert_eq!(b.compute_j, 0.0, "no background load configured");
}
