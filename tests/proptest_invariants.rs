//! Property-based tests over the workspace's core invariants.

use green_envy_repro::analysis::fairness::jain_index;
use green_envy_repro::analysis::stats::{mean, pearson, std_dev};
use green_envy_repro::energy::prelude::*;
use green_envy_repro::greenenvy::theorem;
use green_envy_repro::netsim::time::{SimDuration, SimTime};
use green_envy_repro::netsim::units::{average_rate, Rate};
use proptest::prelude::*;

proptest! {
    /// Theorem 1, adversarially: any non-fair allocation of any capacity
    /// across 2..8 flows draws strictly less power than the fair one,
    /// for any of our randomly-assembled strictly concave functions.
    #[test]
    fn fair_allocation_maximizes_power(
        seed in 0u64..10_000,
        n in 2usize..8,
        cap in 1.0f64..100.0,
        weights in proptest::collection::vec(0.01f64..1.0, 8),
    ) {
        let p = theorem::random_concave(seed);
        let mut alloc: Vec<f64> = weights[..n].to_vec();
        let sum: f64 = alloc.iter().sum();
        for a in &mut alloc {
            *a *= cap / sum;
        }
        let fair_share = cap / n as f64;
        // Skip near-fair draws: strictness needs a genuine difference.
        prop_assume!(alloc.iter().any(|&a| (a - fair_share).abs() > 1e-3 * cap));
        let gap = theorem::power_gap(p, cap, &alloc);
        prop_assert!(gap > 0.0, "fair must dominate: gap={gap}");
    }

    /// The calibrated host power model is monotone increasing and
    /// strictly concave in throughput at any MTU.
    #[test]
    fn host_power_is_monotone_and_concave(mtu in 1500u32..9001) {
        let model = reference_host_model();
        let ctx = HostContext {
            background_util: 0.0,
            cc_cost_per_ack_j: cc_cost_per_ack_ref_j(),
        };
        let f = |x: f64| model.sender_power_at(x, mtu, 0.5, ctx);
        let mut prev = f(0.0);
        for i in 1..=40 {
            let x = i as f64 * 0.25;
            let cur = f(x);
            prop_assert!(cur > prev, "power must increase with rate");
            prev = cur;
        }
        prop_assert!(is_strictly_concave(f, 0.0, 10.0, 50));
    }

    /// Load coupling: more background load never increases the network
    /// power increment.
    #[test]
    fn coupling_is_monotone(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let c = reference_coupling();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(c.k(hi) <= c.k(lo) + 1e-12);
        prop_assert!(c.k(lo) <= 1.0 && c.k(hi) > 0.0);
    }

    /// Jain's index is always in (0, 1], is 1 for equal shares, and never
    /// increases when one user's share is transferred to a richer user.
    #[test]
    fn jain_bounds_and_transfers(
        shares in proptest::collection::vec(0.1f64..100.0, 2..10),
        delta in 0.0f64..0.09,
    ) {
        let j = jain_index(&shares);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12);

        // Robin Hood in reverse: move `delta` from the poorest to the
        // richest; fairness must not improve.
        let mut unfairer = shares.clone();
        let (mut rich, mut poor) = (0, 0);
        for (i, &s) in shares.iter().enumerate() {
            if s > shares[rich] { rich = i; }
            if s < shares[poor] { poor = i; }
        }
        prop_assume!(rich != poor);
        let d = delta * unfairer[poor];
        unfairer[poor] -= d;
        unfairer[rich] += d;
        prop_assert!(jain_index(&unfairer) <= j + 1e-12);
    }

    /// RAPL counters: any sequence of deposits is conserved to within one
    /// quantization unit, including across 32-bit wraps.
    #[test]
    fn rapl_conserves_energy(deposits in proptest::collection::vec(0.0f64..50.0, 1..100)) {
        let mut c = RaplCounter::new();
        let before = c.read_raw();
        let mut exact = 0.0;
        let mut measured = 0.0;
        let mut last = before;
        for d in &deposits {
            c.deposit(*d);
            exact += d;
            // Read in steps so wraparound handling is exercised.
            let now = c.read_raw();
            measured += c.delta_j(last, now);
            last = now;
        }
        prop_assert!((measured - exact).abs() <= DEFAULT_UNIT_J * 1.01);
    }

    /// Rate arithmetic: serialization time and average rate invert each
    /// other.
    #[test]
    fn rate_roundtrips(gbps in 0.001f64..100.0, bytes in 1u64..100_000_000) {
        let rate = Rate::from_gbps(gbps);
        let t = rate.serialization_time(bytes);
        prop_assume!(t.as_nanos() > 100); // below that, rounding dominates
        let back = average_rate(bytes, t);
        let err = (back.bps() - rate.bps()).abs() / rate.bps();
        prop_assert!(err < 0.01, "roundtrip error {err}");
    }

    /// Time arithmetic is associative and ordered.
    #[test]
    fn time_arithmetic(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d).saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    /// Statistics sanity: correlation is symmetric, bounded, and
    /// invariant under positive affine maps.
    #[test]
    fn pearson_properties(
        xs in proptest::collection::vec(-100.0f64..100.0, 3..30),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = pearson(&xs, &ys);
        prop_assume!(std_dev(&xs) > 1e-9);
        prop_assert!((r - 1.0).abs() < 1e-9);

        let scaled: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let r2 = pearson(&xs, &scaled);
        prop_assert!((r2 - 1.0).abs() < 1e-9);
        prop_assert!((mean(&scaled) - (mean(&xs) * scale + shift)).abs() < 1e-6);
    }
}
