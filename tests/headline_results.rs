//! Cross-crate integration tests for the paper's headline claims, at
//! reduced scale so `cargo test` stays quick in debug builds.

use green_envy_repro::cca::CcaKind;
use green_envy_repro::greenenvy::{fig1, fig2, theorem};
use green_envy_repro::netsim::time::SimTime;
use green_envy_repro::workload::prelude::*;

const MB: u64 = 1_000_000;

/// §4.1 / Figure 1: the fair allocation is the least energy-efficient;
/// serial "full speed, then idle" saves on the order of the paper's 16%.
#[test]
fn unfairness_saves_energy() {
    let cfg = fig1::Config {
        per_flow_bytes: 125 * MB,
        mtu: 9000,
        fractions: vec![0.7, 0.9],
        seeds: vec![11],
        background: StressLoad::IDLE,
    };
    let result = fig1::run(&cfg);
    // Savings must increase monotonically with unfairness.
    let mut last = -1.0;
    for p in result.points.iter().filter(|p| p.fraction >= 0.5) {
        assert!(
            p.savings_pct.mean >= last - 0.2,
            "savings must not regress with unfairness: {:?}",
            result.points
        );
        last = p.savings_pct.mean;
    }
    assert!(
        (11.0..18.0).contains(&result.peak_savings_pct),
        "peak savings {:.1}% should be near the paper's 16%",
        result.peak_savings_pct
    );
}

/// §4.1 / Figure 2: measured sender power is strictly concave in
/// throughput and reproduces the calibrated RAPL points.
#[test]
fn power_curve_is_concave_through_the_papers_points() {
    let cfg = fig2::Config {
        rates_gbps: vec![1.0, 2.5, 5.0, 7.5, 10.0],
        duration_s: 0.1,
        mtu: 9000,
        seeds: vec![5],
        background: StressLoad::IDLE,
    };
    let r = fig2::run(&cfg);
    assert!((r.idle_w - 21.49).abs() < 1e-9);
    let p5 = r.points.iter().find(|p| p.target_gbps == 5.0).unwrap();
    let p10 = r.points.iter().find(|p| p.target_gbps == 10.0).unwrap();
    assert!(
        (p5.power_w.mean - 34.23).abs() < 0.5,
        "P(5)={:?}",
        p5.power_w
    );
    assert!(
        (p10.power_w.mean - 35.82).abs() < 0.8,
        "P(10)={:?}",
        p10.power_w
    );
    assert!(r.is_concave(0.3));
}

/// Theorem 1 end-to-end: the fair allocation maximizes power for the
/// calibrated curve and for random strictly concave instances.
#[test]
fn theorem_1_holds() {
    let r = theorem::run(500);
    assert_eq!(r.violations, 0);
    for row in &r.rows {
        assert!(row.power_w < row.fair_power_w);
    }
}

/// §4.4: jumbo frames reduce energy for the flagship CCA.
#[test]
fn jumbo_frames_save_energy() {
    let small = workload::scenario::run(&Scenario::new(
        1500,
        vec![FlowSpec::bulk(CcaKind::Cubic, 100 * MB)],
    ))
    .unwrap();
    let jumbo = workload::scenario::run(&Scenario::new(
        9000,
        vec![FlowSpec::bulk(CcaKind::Cubic, 100 * MB)],
    ))
    .unwrap();
    let saving = (small.sender_energy_j - jumbo.sender_energy_j) / small.sender_energy_j;
    assert!(
        (0.10..0.40).contains(&saving),
        "MTU 1500 -> 9000 saving {:.1}% should be in the paper's band",
        saving * 100.0
    );
}

/// The quickstart scenario end-to-end: the paper's §4.1 worked example.
#[test]
fn full_speed_then_idle_beats_fair_share() {
    let bytes = 125 * MB;
    let fair = workload::scenario::run(&Scenario::new(
        9000,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, bytes),
            FlowSpec::bulk(CcaKind::Cubic, bytes),
        ],
    ))
    .unwrap();
    let solo = workload::scenario::run(&Scenario::new(
        9000,
        vec![FlowSpec::bulk(CcaKind::Cubic, bytes)],
    ))
    .unwrap();
    let t1 = solo.reports[0].completed_at.saturating_since(SimTime::ZERO);
    let serial = workload::scenario::run(&Scenario::new(
        9000,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, bytes),
            FlowSpec::bulk(CcaKind::Cubic, bytes).with_start_delay(t1),
        ],
    ))
    .unwrap();

    // Same data, comparable windows, less energy.
    let window_ratio = serial.window.as_secs_f64() / fair.window.as_secs_f64();
    assert!((0.9..1.1).contains(&window_ratio), "windows comparable");
    assert!(serial.sender_energy_j < 0.93 * fair.sender_energy_j);
}
