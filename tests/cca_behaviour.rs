//! Every congestion control algorithm, end-to-end through the simulated
//! testbed: completion, sane utilization, and each algorithm's signature
//! behaviour.

use green_envy_repro::cca::CcaKind;
use green_envy_repro::workload::prelude::*;

const MB: u64 = 1_000_000;

fn run_one(cca: CcaKind, mtu: u32, bytes: u64) -> ScenarioOutcome {
    workload::scenario::run(&Scenario::new(mtu, vec![FlowSpec::bulk(cca, bytes)]))
        .unwrap_or_else(|e| panic!("{} at mtu {mtu}: {e}", cca.name()))
}

#[test]
fn every_cca_completes_at_jumbo_mtu() {
    for cca in CcaKind::ALL {
        let out = run_one(cca, 9000, 100 * MB);
        let goodput = out.reports[0].mean_goodput.gbps();
        assert!(
            goodput > 5.0,
            "{} goodput {goodput:.2} suspiciously low",
            cca.name()
        );
        assert!(out.reports[0].rtos <= 2, "{}: rto storm", cca.name());
    }
}

#[test]
fn every_cca_completes_at_standard_mtu() {
    for cca in CcaKind::ALL {
        let out = run_one(cca, 1500, 50 * MB);
        let goodput = out.reports[0].mean_goodput.gbps();
        // The host pps ceiling binds here: nobody exceeds ~8.5 Gb/s.
        assert!(
            (3.0..8.7).contains(&goodput),
            "{} goodput {goodput:.2} outside the pps-capped band",
            cca.name()
        );
    }
}

#[test]
fn dctcp_is_mark_governed() {
    let out = run_one(CcaKind::Dctcp, 9000, 100 * MB);
    assert!(out.marked_pkts > 0, "DCTCP needs CE marks");
    assert!(
        out.dropped_pkts * 10 < out.marked_pkts,
        "DCTCP should be governed by marks ({}) not drops ({})",
        out.marked_pkts,
        out.dropped_pkts
    );
}

#[test]
fn loss_based_ccas_do_not_get_marks() {
    let out = run_one(CcaKind::Cubic, 9000, 100 * MB);
    assert_eq!(out.marked_pkts, 0, "cubic runs on a drop-tail bottleneck");
}

#[test]
fn baseline_is_the_loss_outlier() {
    let base = run_one(CcaKind::Baseline, 9000, 100 * MB);
    let cubic = run_one(CcaKind::Cubic, 9000, 100 * MB);
    assert!(
        base.reports[0].retransmits > 3 * cubic.reports[0].retransmits.max(1),
        "baseline retx {} should dwarf cubic's {}",
        base.reports[0].retransmits,
        cubic.reports[0].retransmits
    );
    assert!(
        base.sender_energy_j > 1.05 * cubic.sender_energy_j,
        "no-CC baseline must cost more energy: {} vs {}",
        base.sender_energy_j,
        cubic.sender_energy_j
    );
}

#[test]
fn bbr2_alpha_underutilizes_and_costs_more_than_bbr() {
    let v1 = run_one(CcaKind::Bbr, 9000, 100 * MB);
    let v2 = run_one(CcaKind::Bbr2, 9000, 100 * MB);
    assert!(
        v2.reports[0].mean_goodput.gbps() < 0.9 * v1.reports[0].mean_goodput.gbps(),
        "the alpha cruises below v1"
    );
    let ratio = v2.sender_energy_j / v1.sender_energy_j;
    assert!(
        (1.1..1.6).contains(&ratio),
        "bbr2/bbr energy ratio {ratio:.2} (paper: ~1.4)"
    );
}

#[test]
fn bbr_avoids_queue_losses() {
    let out = run_one(CcaKind::Bbr, 9000, 100 * MB);
    assert_eq!(
        out.reports[0].retransmits, 0,
        "BBR's pacing should avoid drops entirely on a solo path"
    );
}

#[test]
fn vegas_keeps_the_queue_small() {
    let vegas = run_one(CcaKind::Vegas, 9000, 100 * MB);
    let cubic = run_one(CcaKind::Cubic, 9000, 100 * MB);
    assert!(
        vegas.reports[0].retransmits <= cubic.reports[0].retransmits,
        "delay-based vegas should lose no more than cubic"
    );
    assert!(vegas.reports[0].mean_goodput.gbps() > 9.0);
}

#[test]
fn two_competing_cubic_flows_split_fairly() {
    let out = workload::scenario::run(&Scenario::new(
        9000,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, 200 * MB),
            FlowSpec::bulk(CcaKind::Cubic, 200 * MB),
        ],
    ))
    .unwrap();
    let g: Vec<f64> = out.reports.iter().map(|r| r.mean_goodput.gbps()).collect();
    let jain = green_envy_repro::analysis::fairness::jain_index(&g);
    assert!(jain > 0.9, "cubic-vs-cubic Jain index {jain:.3}");
}

#[test]
fn ten_flows_share_and_complete() {
    let flows: Vec<FlowSpec> = (0..10)
        .map(|_| FlowSpec::bulk(CcaKind::Cubic, 20 * MB))
        .collect();
    let out = workload::scenario::run(&Scenario::new(9000, flows)).unwrap();
    assert_eq!(out.reports.len(), 10);
    let total_gbps: f64 = 10.0 * 20.0 * 8.0 / 1000.0 / out.window.as_secs_f64();
    assert!(total_gbps > 8.0, "aggregate {total_gbps:.2} Gb/s");
}
