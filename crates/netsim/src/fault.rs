//! Deterministic link-fault injection — the simulator's chaos layer.
//!
//! A [`FaultSpec`] attaches non-congestive impairments to one link:
//! random wire drops, bit corruption (discarded by the destination NIC's
//! FCS check), duplication, reordering (a deterministic extra delay on a
//! random subset of frames), uniform delay jitter, and scheduled link
//! flaps (`down@t..up@t'` outages that lose every frame on the wire).
//!
//! ## RNG stream isolation
//!
//! Fault decisions draw from a *dedicated* child stream derived from the
//! engine's master seed (`master_seed ^ FAULT_STREAM_SALT`, forked per
//! link) — never from the node or jitter streams. Attaching, removing, or
//! reconfiguring faults therefore cannot perturb congestion randomness:
//! a fault-free run is bit-identical whether or not the fault layer is
//! compiled in the loop, and a faulted run is bit-reproducible from
//! `(seed, FaultSpec)` alone.
//!
//! ## Drop taxonomy
//!
//! Injected losses land in [`crate::link::LinkStats`] (`injected_*`
//! counters); congestive losses stay in [`crate::queue::QueueStats`]
//! (`dropped_pkts`). The two are disjoint by construction — injection
//! happens *after* a frame has left the queue and paid its serialization
//! time — so energy and retransmission attribution stays honest.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Salt XORed into the master seed to derive the fault stream family.
/// Chosen once; changing it re-randomizes every faulted golden run.
pub(crate) const FAULT_STREAM_SALT: u64 = 0xFA17_1A7E_D00D_5EED;

/// Why a [`FaultSpec`] was rejected at install time. Every variant names
/// the offending knob and value, so a mistyped probability fails the run
/// *before* the first event instead of silently biasing a campaign.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpecError {
    /// A probability knob is NaN/infinite or outside `[0, 1]`.
    BadProbability {
        /// Which knob (`drop_prob`, `corrupt_prob`, ...).
        knob: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A flap window is empty or inverted (`up <= down`): it would never
    /// cover any instant, which is always a schedule typo.
    EmptyFlap {
        /// The window's start.
        down: SimTime,
        /// The window's (non-)end.
        up: SimTime,
    },
    /// Two flap windows overlap. Overlaps are redundant at best and
    /// usually mean two phases were scheduled against the wrong clock.
    OverlappingFlaps {
        /// End of the earlier window.
        first_up: SimTime,
        /// Start of the later window that begins before `first_up`.
        second_down: SimTime,
    },
    /// Per-frame jitter meets or exceeds the link's propagation delay:
    /// the fault layer would silently reorder *every* frame pair instead
    /// of the configured `reorder_prob` fraction.
    JitterExceedsDelay {
        /// The configured jitter bound.
        jitter: SimDuration,
        /// The link's one-way propagation delay.
        link_delay: SimDuration,
    },
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::BadProbability { knob, value } => {
                write!(f, "fault spec: {knob} = {value} outside [0, 1]")
            }
            FaultSpecError::EmptyFlap { down, up } => {
                write!(f, "fault spec: flap window [{down}, {up}) is empty")
            }
            FaultSpecError::OverlappingFlaps {
                first_up,
                second_down,
            } => write!(
                f,
                "fault spec: flap starting at {second_down} overlaps one ending at {first_up}"
            ),
            FaultSpecError::JitterExceedsDelay { jitter, link_delay } => write!(
                f,
                "fault spec: jitter {jitter} >= link propagation delay {link_delay} \
                 (would reorder every frame; use reorder_prob for that)"
            ),
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// One scheduled outage: the link loses every frame whose transmission
/// completes in `[down, up)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFlap {
    /// When the link goes down.
    pub down: SimTime,
    /// When it comes back (exclusive).
    pub up: SimTime,
}

impl LinkFlap {
    /// True if the link is down at `at`.
    #[inline]
    pub fn covers(&self, at: SimTime) -> bool {
        self.down <= at && at < self.up
    }
}

/// Per-link fault configuration. All probabilities are per-frame and
/// independent; `default()` is a no-op spec (hooks attached, nothing
/// injected — used to measure the fault layer's hot-path cost).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability a frame vanishes on the wire.
    pub drop_prob: f64,
    /// Probability a frame is bit-corrupted in transit. Corrupted frames
    /// still traverse (and load) every downstream hop; the destination
    /// host's FCS check discards them before the transport sees them.
    pub corrupt_prob: f64,
    /// Probability a frame is duplicated (both copies arrive together).
    pub duplicate_prob: f64,
    /// Probability a frame is held back by [`Self::reorder_delay`],
    /// arriving behind frames sent after it.
    pub reorder_prob: f64,
    /// Extra delay applied to reordered frames.
    pub reorder_delay: SimDuration,
    /// Uniform per-frame delay jitter in `[0, jitter)`.
    pub jitter: SimDuration,
    /// Scheduled outages.
    pub flaps: Vec<LinkFlap>,
}

impl FaultSpec {
    /// Pure random loss at probability `p`.
    pub fn random_loss(p: f64) -> Self {
        FaultSpec {
            drop_prob: p,
            ..FaultSpec::default()
        }
    }

    /// Set the corruption probability.
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Set the duplication probability.
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Reorder a fraction `p` of frames by holding them `delay` longer.
    pub fn with_reordering(mut self, p: f64, delay: SimDuration) -> Self {
        self.reorder_prob = p;
        self.reorder_delay = delay;
        self
    }

    /// Add uniform delay jitter in `[0, jitter)`.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Schedule an outage from `down` until `up`. The window is checked
    /// by [`Self::validate`] when the spec is installed on a link, so
    /// builders stay infallible.
    pub fn with_flap(mut self, down: SimTime, up: SimTime) -> Self {
        self.flaps.push(LinkFlap { down, up });
        self
    }

    /// True if this spec injects nothing (all probabilities zero, no
    /// jitter, no flaps).
    pub fn is_noop(&self) -> bool {
        self.drop_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reorder_prob == 0.0
            && self.jitter.is_zero()
            && self.flaps.is_empty()
    }

    /// Check the spec's internal consistency: probabilities finite and in
    /// `[0, 1]`, flap windows non-empty and non-overlapping. Called when
    /// the spec is installed on a link so misconfiguration fails at
    /// setup, not mid-run; callers composing specs by hand can run it
    /// early themselves.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        for (knob, p) in [
            ("drop_prob", self.drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("reorder_prob", self.reorder_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(FaultSpecError::BadProbability { knob, value: p });
            }
        }
        for f in &self.flaps {
            if f.down >= f.up {
                return Err(FaultSpecError::EmptyFlap {
                    down: f.down,
                    up: f.up,
                });
            }
        }
        // Overlap check over a sorted copy: the spec itself keeps author
        // order (it is part of the run's identity), validation does not.
        let mut sorted = self.flaps.clone();
        sorted.sort_by_key(|f| (f.down, f.up));
        for pair in sorted.windows(2) {
            if pair[1].down < pair[0].up {
                return Err(FaultSpecError::OverlappingFlaps {
                    first_up: pair[0].up,
                    second_down: pair[1].down,
                });
            }
        }
        Ok(())
    }

    /// [`Self::validate`] plus the link-relative checks that need the
    /// target link's geometry: jitter must stay strictly below the
    /// propagation delay, otherwise the jitter knob degenerates into an
    /// unconfigured full-stream reorderer.
    pub fn validate_for_link(&self, link_delay: SimDuration) -> Result<(), FaultSpecError> {
        self.validate()?;
        if !self.jitter.is_zero() && self.jitter >= link_delay {
            return Err(FaultSpecError::JitterExceedsDelay {
                jitter: self.jitter,
                link_delay,
            });
        }
        Ok(())
    }

    /// True if a scheduled outage covers `at`.
    #[inline]
    pub fn is_down(&self, at: SimTime) -> bool {
        self.flaps.iter().any(|f| f.covers(at))
    }
}

/// What the fault layer decided for one frame leaving the wire.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WireFate {
    /// Frame lost (outage or random drop); nothing arrives.
    pub(crate) drop: bool,
    /// Frame arrives bit-corrupted.
    pub(crate) corrupt: bool,
    /// A second copy arrives alongside the original.
    pub(crate) duplicate: bool,
    /// Frame was selected for reordering (its delay is in `extra_delay`).
    pub(crate) reorder: bool,
    /// Extra propagation delay (reorder hold + jitter).
    pub(crate) extra_delay: SimDuration,
}

/// Runtime fault state of one link: the spec plus its private RNG stream.
pub(crate) struct FaultState {
    spec: FaultSpec,
    rng: SimRng,
}

impl FaultState {
    pub(crate) fn new(spec: FaultSpec, rng: SimRng) -> Self {
        FaultState { spec, rng }
    }

    pub(crate) fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Decide the fate of a frame whose serialization completes at `now`.
    ///
    /// Draw order is fixed (drop, corrupt, duplicate, reorder, jitter)
    /// and each draw is gated on its knob being enabled, so a spec's
    /// consumption of the stream — and hence the whole run — is a pure
    /// function of `(seed, spec)`.
    pub(crate) fn fate(&mut self, now: SimTime) -> WireFate {
        let mut fate = WireFate::default();
        if self.spec.is_down(now) {
            fate.drop = true;
            return fate;
        }
        if self.spec.drop_prob > 0.0 && self.rng.next_f64() < self.spec.drop_prob {
            fate.drop = true;
            return fate;
        }
        if self.spec.corrupt_prob > 0.0 && self.rng.next_f64() < self.spec.corrupt_prob {
            fate.corrupt = true;
        }
        if self.spec.duplicate_prob > 0.0 && self.rng.next_f64() < self.spec.duplicate_prob {
            fate.duplicate = true;
        }
        if self.spec.reorder_prob > 0.0 && self.rng.next_f64() < self.spec.reorder_prob {
            fate.reorder = true;
            fate.extra_delay = self.spec.reorder_delay;
        }
        if !self.spec.jitter.is_zero() {
            fate.extra_delay +=
                SimDuration::from_nanos(self.rng.next_below(self.spec.jitter.as_nanos()));
        }
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_noop_and_draws_nothing() {
        let spec = FaultSpec::default();
        assert!(spec.is_noop());
        let mut a = FaultState::new(spec.clone(), SimRng::new(1));
        let fate = a.fate(SimTime::from_millis(1));
        assert!(!fate.drop && !fate.corrupt && !fate.duplicate && !fate.reorder);
        assert!(fate.extra_delay.is_zero());
        // The stream must be untouched: identical to a fresh one.
        let mut fresh = SimRng::new(1);
        assert_eq!(a.rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn builders_compose() {
        let spec = FaultSpec::random_loss(0.01)
            .with_corruption(0.002)
            .with_duplication(0.003)
            .with_reordering(0.05, SimDuration::from_micros(80))
            .with_jitter(SimDuration::from_micros(5))
            .with_flap(SimTime::from_millis(10), SimTime::from_millis(12));
        spec.validate().expect("well-formed spec");
        spec.validate_for_link(SimDuration::from_micros(25))
            .expect("jitter below delay");
        assert!(!spec.is_noop());
        assert_eq!(spec.drop_prob, 0.01);
        assert_eq!(spec.flaps.len(), 1);
        assert!(spec.is_down(SimTime::from_millis(11)));
        assert!(!spec.is_down(SimTime::from_millis(12)));
    }

    #[test]
    fn fate_is_deterministic_per_seed() {
        let spec = FaultSpec::random_loss(0.3)
            .with_duplication(0.2)
            .with_jitter(SimDuration::from_micros(3));
        let collect = |seed: u64| {
            let mut st = FaultState::new(spec.clone(), SimRng::new(seed));
            (0..256)
                .map(|i| {
                    let f = st.fate(SimTime::from_micros(i));
                    (f.drop, f.duplicate, f.extra_delay.as_nanos())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10), "different streams must differ");
    }

    #[test]
    fn flap_drops_skip_probability_draws() {
        // During an outage no randomness is consumed, so the post-outage
        // stream is independent of the outage's length.
        let spec = FaultSpec::random_loss(0.5).with_flap(SimTime::ZERO, SimTime::from_secs(1));
        let mut st = FaultState::new(spec, SimRng::new(3));
        for i in 0..100 {
            assert!(st.fate(SimTime::from_millis(i)).drop);
        }
        let mut fresh = SimRng::new(3);
        assert_eq!(st.rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        for bad in [1.5, -0.1, f64::NAN, f64::INFINITY] {
            let err = FaultSpec::random_loss(bad).validate().unwrap_err();
            assert!(
                matches!(
                    err,
                    FaultSpecError::BadProbability {
                        knob: "drop_prob",
                        ..
                    }
                ),
                "{bad}: {err}"
            );
            assert!(err.to_string().contains("drop_prob"), "{err}");
        }
        let err = FaultSpec::default()
            .with_corruption(f64::NAN)
            .validate()
            .unwrap_err();
        assert!(matches!(
            err,
            FaultSpecError::BadProbability {
                knob: "corrupt_prob",
                ..
            }
        ));
    }

    #[test]
    fn validate_rejects_empty_and_overlapping_flaps() {
        let t = SimTime::from_millis;
        let empty = FaultSpec::default().with_flap(t(5), t(5));
        assert!(matches!(
            empty.validate().unwrap_err(),
            FaultSpecError::EmptyFlap { .. }
        ));
        let inverted = FaultSpec::default().with_flap(t(7), t(3));
        assert!(matches!(
            inverted.validate().unwrap_err(),
            FaultSpecError::EmptyFlap { .. }
        ));
        // Overlap is detected regardless of author order.
        let overlapping = FaultSpec::default()
            .with_flap(t(10), t(20))
            .with_flap(t(15), t(30));
        let err = overlapping.validate().unwrap_err();
        assert!(
            matches!(err, FaultSpecError::OverlappingFlaps { .. }),
            "{err}"
        );
        let reversed = FaultSpec::default()
            .with_flap(t(15), t(30))
            .with_flap(t(10), t(20));
        assert!(reversed.validate().is_err());
        // Touching windows are fine: [10,20) then [20,30).
        let adjacent = FaultSpec::default()
            .with_flap(t(10), t(20))
            .with_flap(t(20), t(30));
        adjacent.validate().expect("adjacent windows are disjoint");
    }

    #[test]
    fn validate_for_link_rejects_oversized_jitter() {
        let delay = SimDuration::from_micros(25);
        let spec = FaultSpec::default().with_jitter(SimDuration::from_micros(25));
        let err = spec.validate_for_link(delay).unwrap_err();
        assert!(matches!(err, FaultSpecError::JitterExceedsDelay { .. }));
        assert!(err.to_string().contains("jitter"), "{err}");
        FaultSpec::default()
            .with_jitter(SimDuration::from_micros(24))
            .validate_for_link(delay)
            .expect("jitter strictly below delay is fine");
    }
}
