//! The simulated packet.
//!
//! A [`Packet`] models one on-wire frame: either a data segment or an
//! acknowledgement. It carries exactly the header fields the experiments
//! need (sequence numbers, SACK blocks, ECN codepoints, timestamps) and no
//! byte payloads — the simulator tracks payload *sizes*, not contents.

use crate::ids::{FlowId, NodeId};
use crate::time::SimTime;
use core::fmt;

/// Combined IPv4 + TCP header bytes charged to every packet on the wire.
///
/// 20 bytes IPv4 + 20 bytes TCP. Options (SACK, timestamps) are ignored for
/// sizing, matching how iperf3 goodput is usually reasoned about.
pub const HEADER_BYTES: u32 = 40;

/// ECN codepoint carried in the IP header.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EcnCodepoint {
    /// Sender does not support ECN; congested queues must drop.
    #[default]
    NotEct,
    /// ECN-capable transport; congested queues may mark instead of drop.
    Ect0,
    /// Congestion Experienced: set by a queue that would otherwise drop.
    Ce,
}

impl EcnCodepoint {
    /// True if the packet may be CE-marked rather than dropped.
    #[inline]
    pub fn is_capable(self) -> bool {
        !matches!(self, EcnCodepoint::NotEct)
    }

    /// True if the packet has been marked Congestion Experienced.
    #[inline]
    pub fn is_ce(self) -> bool {
        matches!(self, EcnCodepoint::Ce)
    }
}

/// In-band network telemetry stamped by INT-capable switches (the
/// substrate HPCC-style algorithms need; Tofino, the paper's switch,
/// supports INT in silicon). One record carries the most-utilized hop's
/// state; hops overwrite it when their utilization is higher.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntRecord {
    /// Queue occupancy at the stamping hop, in bytes.
    pub queue_bytes: u32,
    /// The hop's recent link utilization, in thousandths (0..=1000).
    pub util_x1000: u16,
    /// The hop's link rate in Mb/s (for normalizing queue terms).
    pub link_mbps: u32,
}

impl IntRecord {
    /// True if any hop stamped this record.
    pub fn is_stamped(&self) -> bool {
        self.link_mbps > 0
    }

    /// HPCC's normalized utilization estimate `U = qlen/(B*T) + txRate/B`
    /// with `t_base_s` as the base RTT `T`.
    pub fn normalized_utilization(&self, t_base_s: f64) -> f64 {
        if !self.is_stamped() {
            return 0.0;
        }
        let b_bytes_per_s = self.link_mbps as f64 * 1e6 / 8.0;
        self.queue_bytes as f64 / (b_bytes_per_s * t_base_s) + self.util_x1000 as f64 / 1000.0
    }
}

/// Maximum SACK blocks carried per ACK (RFC 2018 allows 3-4 with
/// timestamps; we model 3).
pub const MAX_SACK_BLOCKS: usize = 3;

/// A compact, fixed-capacity set of SACK ranges `[start, end)` in byte
/// sequence space, most recently received first.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SackBlocks {
    blocks: [(u64, u64); MAX_SACK_BLOCKS],
    len: u8,
}

impl SackBlocks {
    /// An empty set of blocks.
    pub const EMPTY: SackBlocks = SackBlocks {
        blocks: [(0, 0); MAX_SACK_BLOCKS],
        len: 0,
    };

    /// Number of blocks present.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no blocks are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a block in insertion order, silently dropping the *oldest*
    /// (first-inserted) block when full. Blocks are half-open byte ranges
    /// `[start, end)`; empty ranges are ignored. Callers that want RFC
    /// 2018's most-recent-first wire order (the receiver) push in that
    /// order themselves.
    pub fn push(&mut self, start: u64, end: u64) {
        if end <= start {
            return;
        }
        if (self.len as usize) < MAX_SACK_BLOCKS {
            self.blocks[self.len as usize] = (start, end);
            self.len += 1;
        } else {
            // Shift left, dropping the oldest (first) entry; append.
            self.blocks.copy_within(1..MAX_SACK_BLOCKS, 0);
            self.blocks[MAX_SACK_BLOCKS - 1] = (start, end);
        }
    }

    /// Iterate over present blocks.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.blocks[..self.len as usize].iter().copied()
    }
}

/// Acknowledgement header fields.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AckInfo {
    /// Cumulative ack: the next byte the receiver expects.
    pub cum_ack: u64,
    /// Selective acknowledgement ranges above `cum_ack`.
    pub sacks: SackBlocks,
    /// ECN-Echo flag (classic ECN semantics; DCTCP uses `ce_bytes`).
    pub ece: bool,
    /// Cumulative count of payload bytes that arrived CE-marked, as
    /// maintained by the receiver. Senders diff successive values to get
    /// the exact marked-byte fraction DCTCP needs.
    pub ce_bytes: u64,
    /// Cumulative count of payload bytes delivered in-order or buffered at
    /// the receiver; used by sender-side delivery-rate estimation.
    pub delivered_bytes: u64,
    /// Echo of `sent_at` of the (latest) segment that triggered this ack,
    /// for RTT sampling.
    pub ts_echo: SimTime,
    /// True if the echoed segment was a retransmission (Karn's rule:
    /// the sender must not take an RTT sample from it).
    pub echo_is_retx: bool,
    /// How many data segments this (possibly delayed) ack covers.
    pub segs_acked: u32,
    /// Echo of the latest data segment's in-band telemetry.
    pub int_echo: IntRecord,
}

/// Whether a packet is a data segment or an acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PacketKind {
    /// A data segment carrying `payload_bytes` starting at `seq`.
    Data,
    /// A pure acknowledgement.
    Ack(AckInfo),
}

/// One simulated on-wire frame.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Final destination host (routing key).
    pub dst: NodeId,
    /// Data or acknowledgement.
    pub kind: PacketKind,
    /// Total size on the wire, including [`HEADER_BYTES`].
    pub wire_bytes: u32,
    /// Application payload bytes carried (zero for pure acks).
    pub payload_bytes: u32,
    /// First payload byte's sequence number (data packets).
    pub seq: u64,
    /// ECN codepoint, possibly rewritten to CE by a congested queue.
    pub ecn: EcnCodepoint,
    /// When the packet was handed to the NIC for transmission.
    pub sent_at: SimTime,
    /// True if this is a retransmission of previously sent data.
    pub is_retx: bool,
    /// True if the fault layer bit-corrupted the frame in transit. The
    /// frame still loads every downstream hop; the destination host's FCS
    /// check discards it before the agent sees it.
    pub corrupted: bool,
    /// In-band telemetry, stamped hop by hop (INT-capable switches).
    pub int: IntRecord,
}

impl Packet {
    /// Construct a data segment. `wire_bytes` is derived as
    /// `payload + HEADER_BYTES`.
    pub fn data(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        payload_bytes: u32,
        ecn: EcnCodepoint,
    ) -> Packet {
        Packet {
            flow,
            src,
            dst,
            kind: PacketKind::Data,
            wire_bytes: payload_bytes + HEADER_BYTES,
            payload_bytes,
            seq,
            ecn,
            sent_at: SimTime::ZERO,
            is_retx: false,
            corrupted: false,
            int: IntRecord::default(),
        }
    }

    /// Construct a pure acknowledgement (64 wire bytes: headers + minimal
    /// frame padding).
    pub fn ack(flow: FlowId, src: NodeId, dst: NodeId, info: AckInfo) -> Packet {
        Packet {
            flow,
            src,
            dst,
            kind: PacketKind::Ack(info),
            wire_bytes: 64,
            payload_bytes: 0,
            seq: 0,
            ecn: EcnCodepoint::NotEct,
            sent_at: SimTime::ZERO,
            is_retx: false,
            corrupted: false,
            int: IntRecord::default(),
        }
    }

    /// True if this is a data segment.
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data)
    }

    /// The ack header, if this is an acknowledgement.
    #[inline]
    pub fn ack_info(&self) -> Option<&AckInfo> {
        match &self.kind {
            PacketKind::Ack(info) => Some(info),
            PacketKind::Data => None,
        }
    }

    /// End of this segment's payload in sequence space (`seq + payload`).
    #[inline]
    pub fn seq_end(&self) -> u64 {
        self.seq + self.payload_bytes as u64
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            PacketKind::Data => write!(
                f,
                "{} {}->{} DATA seq={}..{} ({}B{}{})",
                self.flow,
                self.src,
                self.dst,
                self.seq,
                self.seq_end(),
                self.wire_bytes,
                if self.is_retx { " retx" } else { "" },
                if self.ecn.is_ce() { " CE" } else { "" },
            ),
            PacketKind::Ack(a) => write!(
                f,
                "{} {}->{} ACK cum={}{}",
                self.flow,
                self.src,
                self.dst,
                a.cum_ack,
                if a.ece { " ECE" } else { "" },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_data() -> Packet {
        Packet::data(
            FlowId::from_raw(0),
            NodeId::from_raw(0),
            NodeId::from_raw(1),
            1000,
            1460,
            EcnCodepoint::Ect0,
        )
    }

    #[test]
    fn data_packet_sizes_include_headers() {
        let p = mk_data();
        assert_eq!(p.wire_bytes, 1500);
        assert_eq!(p.payload_bytes, 1460);
        assert_eq!(p.seq_end(), 2460);
        assert!(p.is_data());
        assert!(p.ack_info().is_none());
    }

    #[test]
    fn ack_packet_has_no_payload() {
        let info = AckInfo {
            cum_ack: 5000,
            ..AckInfo::default()
        };
        let p = Packet::ack(
            FlowId::from_raw(0),
            NodeId::from_raw(1),
            NodeId::from_raw(0),
            info,
        );
        assert_eq!(p.payload_bytes, 0);
        assert!(!p.is_data());
        assert_eq!(p.ack_info().unwrap().cum_ack, 5000);
    }

    #[test]
    fn ecn_codepoints() {
        assert!(!EcnCodepoint::NotEct.is_capable());
        assert!(EcnCodepoint::Ect0.is_capable());
        assert!(EcnCodepoint::Ce.is_capable());
        assert!(EcnCodepoint::Ce.is_ce());
        assert!(!EcnCodepoint::Ect0.is_ce());
    }

    #[test]
    fn sack_blocks_push_and_overflow() {
        let mut s = SackBlocks::EMPTY;
        assert!(s.is_empty());
        s.push(10, 20);
        s.push(30, 40);
        s.push(50, 60);
        assert_eq!(s.len(), 3);
        // Fourth push evicts the oldest; insertion order is preserved.
        s.push(70, 80);
        assert_eq!(s.len(), 3);
        let blocks: Vec<_> = s.iter().collect();
        assert_eq!(blocks, vec![(30, 40), (50, 60), (70, 80)]);
    }

    #[test]
    fn sack_blocks_ignore_empty_ranges() {
        let mut s = SackBlocks::EMPTY;
        s.push(10, 10);
        s.push(20, 15);
        assert!(s.is_empty());
    }

    #[test]
    fn display_is_readable() {
        let p = mk_data();
        let s = format!("{p}");
        assert!(s.contains("DATA"));
        assert!(s.contains("seq=1000..2460"));
    }
}
