//! The event scheduler: a calendar-queue wheel backed by a heap.
//!
//! The engine's hot loop pops the globally earliest `(at, seq)` pair
//! millions of times per simulated second. Almost every event it schedules
//! lands within a few serialization times of `now` (TxDone, Arrive, pacing
//! and RACK timers); only RTO-class timers sit hundreds of milliseconds
//! out. A binary heap pays `O(log n)` sift costs on every operation for a
//! workload that is nearly sorted already.
//!
//! [`Scheduler`] exploits that shape:
//!
//! * a **near-future wheel** of `NUM_BUCKETS` buckets, each covering one
//!   power-of-two-sized *tick* of simulated time (the bucket width is
//!   auto-sized from link serialization times — see
//!   [`Scheduler::set_bucket_width`]). Pushing an event whose tick is
//!   within the wheel horizon is (in the common, time-ordered case) an
//!   O(1) `Vec` append; a bucket is reversed once when it becomes
//!   current so pops come off the back.
//! * an **overflow heap** for events beyond the horizon. When the wheel
//!   advances, heap entries that have come within the horizon migrate to
//!   their bucket. Far-future timers are usually cancelled/rescheduled
//!   before they migrate (RTO rearms on every ack), so most heap entries
//!   die without ever being sorted into the wheel.
//!
//! # Determinism
//!
//! Pop order is the exact total order `(at, seq)` with `seq` assigned in
//! push order — identical to the `BinaryHeap<Reverse<..>>` it replaced:
//!
//! * the current bucket holds exactly the entries of tick `base_tick`
//!   (inserts require `at >= now`, and the horizon is one wheel length, so
//!   each slot maps to a single tick); it is kept sorted descending by
//!   `(at, seq)`, so popping from the back yields the global minimum;
//! * every other wheel bucket holds strictly later ticks, and after
//!   migration the heap holds only entries strictly beyond the horizon;
//! * `seq` survives wheel/heap placement and migration untouched, so ties
//!   on `at` preserve FIFO insertion order no matter which side an entry
//!   lived on.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of wheel buckets. Power of two so slot = tick & mask. 1024
/// buckets at the default 1 µs tick give a ~1 ms horizon: several RTTs of
/// the paper's testbed, which keeps all data-path events on the wheel.
const NUM_BUCKETS: usize = 1024;
const MASK: u64 = NUM_BUCKETS as u64 - 1;

/// Default bucket width: 2^10 ns ≈ 1 µs, the serialization time of a
/// 1500-byte frame at 10 Gb/s (the paper's testbed NIC).
const DEFAULT_SHIFT: u32 = 10;

/// Smallest allowed bucket width (ns, power of two). Below 128 ns the
/// wheel horizon gets shorter than an RTT.
pub const MIN_BUCKET_NS: u64 = 128;
/// Largest allowed bucket width (ns, power of two). Above 32 µs the
/// current bucket holds so many events that lazy sorting approaches heap
/// cost.
pub const MAX_BUCKET_NS: u64 = 32_768;

/// Outcome of [`Scheduler::pop_due`].
pub enum Due<T> {
    /// The earliest entry, removed — it was due at or before the limit.
    Item(SimTime, T),
    /// The earliest entry is beyond the limit; it remains queued.
    Later(SimTime),
    /// The scheduler is empty.
    Empty,
}

/// One scheduled entry. Ordering is on `(at, seq)` only — the payload
/// does not participate.
struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Bucket<T> {
    /// Entries, always sorted by `(at, seq)`. Staging buckets are kept
    /// *ascending* so the engine's usual push — an event later than
    /// everything already in its bucket — is a plain `Vec` append. When a
    /// bucket becomes current it is reversed once to *descending*, so
    /// popping the minimum is `Vec::pop` from the back.
    items: Vec<Entry<T>>,
    /// True while this bucket is (or was) current and reversed.
    descending: bool,
}

impl<T> Default for Bucket<T> {
    fn default() -> Self {
        Bucket {
            items: Vec::new(),
            descending: false,
        }
    }
}

/// Operation counters, exported through the engine's perf counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Pushes that landed directly in a wheel bucket.
    pub wheel_pushes: u64,
    /// Pushes that went to the overflow heap (beyond the horizon).
    pub heap_pushes: u64,
    /// Heap entries later migrated into the wheel.
    pub migrations: u64,
    /// Entries popped.
    pub pops: u64,
}

impl SchedStats {
    /// Fraction of pushes served by the O(1) wheel path.
    pub fn wheel_hit_rate(&self) -> f64 {
        let total = self.wheel_pushes + self.heap_pushes;
        if total == 0 {
            return 1.0;
        }
        self.wheel_pushes as f64 / total as f64
    }
}

/// Hybrid calendar-wheel + heap priority queue over `(SimTime, insertion
/// seq)`. See the module docs for the design and determinism argument.
pub struct Scheduler<T> {
    buckets: Vec<Bucket<T>>,
    /// Tick of the current bucket; the wheel covers
    /// `[base_tick, base_tick + NUM_BUCKETS)`.
    base_tick: u64,
    /// Entries currently in wheel buckets.
    wheel_len: usize,
    heap: BinaryHeap<Reverse<Entry<T>>>,
    /// log2 of the bucket width in nanoseconds.
    shift: u32,
    seq: u64,
    stats: SchedStats,
}

impl<T> Scheduler<T> {
    /// An empty scheduler with the default ~1 µs bucket width.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, Bucket::default);
        Scheduler {
            buckets,
            base_tick: 0,
            wheel_len: 0,
            heap: BinaryHeap::new(),
            shift: DEFAULT_SHIFT,
            seq: 0,
            stats: SchedStats::default(),
        }
    }

    /// Set the bucket width, rounded down to a power of two and clamped to
    /// `[MIN_BUCKET_NS, MAX_BUCKET_NS]`. Only allowed while empty (the
    /// engine sizes the wheel from link serialization times right before
    /// the first event is scheduled).
    pub fn set_bucket_width(&mut self, width_ns: u64) {
        assert!(self.is_empty(), "cannot resize a non-empty scheduler");
        let clamped = width_ns.clamp(MIN_BUCKET_NS, MAX_BUCKET_NS);
        self.shift = 63 - clamped.leading_zeros();
        // Keep the wheel position consistent with any time already elapsed.
        self.base_tick = 0;
    }

    /// Current bucket width in nanoseconds.
    pub fn bucket_width_ns(&self) -> u64 {
        1 << self.shift
    }

    /// Number of pending entries (wheel + heap).
    pub fn len(&self) -> usize {
        self.wheel_len + self.heap.len()
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    #[inline]
    fn tick_of(&self, at: SimTime) -> u64 {
        at.as_nanos() >> self.shift
    }

    /// Insert an item at time `at`. Later inserts at the same `at` pop
    /// later (FIFO within a timestamp).
    pub fn push(&mut self, at: SimTime, item: T) {
        self.seq += 1;
        let entry = Entry {
            at,
            seq: self.seq,
            item,
        };
        // Clamp: an `at` in the past (engine callers never produce one,
        // timers are clamped to `now`) still lands in the current bucket
        // rather than corrupting a wrapped slot.
        let tick = self.tick_of(at).max(self.base_tick);
        if tick < self.base_tick + NUM_BUCKETS as u64 {
            self.stats.wheel_pushes += 1;
            self.wheel_insert(tick, entry);
        } else {
            self.stats.heap_pushes += 1;
            self.heap.push(Reverse(entry));
        }
    }

    /// Binary-insert into the bucket for `tick`, preserving its sort
    /// order. The overwhelmingly common case — an entry later than
    /// everything in an ascending staging bucket — resolves to an append.
    fn wheel_insert(&mut self, tick: u64, entry: Entry<T>) {
        let bucket = &mut self.buckets[(tick & MASK) as usize];
        if bucket.items.is_empty() {
            bucket.descending = false;
            bucket.items.push(entry);
        } else {
            let key = (entry.at, entry.seq);
            let pos = if bucket.descending {
                bucket.items.partition_point(|e| (e.at, e.seq) > key)
            } else {
                bucket.items.partition_point(|e| (e.at, e.seq) < key)
            };
            bucket.items.insert(pos, entry);
        }
        self.wheel_len += 1;
    }

    /// Advance the wheel to the next non-empty bucket, migrating heap
    /// entries as they come within the horizon. Returns `false` iff the
    /// scheduler is empty. On `true`, the current bucket is non-empty and
    /// sorted, with the global minimum at its back.
    fn normalize(&mut self) -> bool {
        loop {
            // Migrate heap entries now within the horizon. They come off
            // the heap in ascending order, so per-bucket these are
            // appends too.
            while let Some(Reverse(top)) = self.heap.peek() {
                let tick = self.tick_of(top.at);
                if tick >= self.base_tick + NUM_BUCKETS as u64 {
                    break;
                }
                // peek() just returned Some, so pop() must too; the
                // let-else keeps the impossible branch panic-free.
                let Some(Reverse(entry)) = self.heap.pop() else {
                    break;
                };
                self.wheel_insert(tick, entry);
                self.stats.migrations += 1;
            }
            if self.wheel_len == 0 {
                let Some(Reverse(top)) = self.heap.peek() else {
                    return false;
                };
                // Nothing within a full horizon: jump straight to the
                // heap's earliest tick instead of stepping through empties.
                self.base_tick = self.tick_of(top.at);
                continue;
            }
            let bucket = &mut self.buckets[(self.base_tick & MASK) as usize];
            if bucket.items.is_empty() {
                bucket.descending = false;
                self.base_tick += 1;
                continue;
            }
            if !bucket.descending {
                bucket.items.reverse();
                bucket.descending = true;
            }
            return true;
        }
    }

    /// Timestamp of the earliest entry without removing it.
    pub fn next_at(&mut self) -> Option<SimTime> {
        if !self.normalize() {
            return None;
        }
        let bucket = &self.buckets[(self.base_tick & MASK) as usize];
        bucket.items.last().map(|e| e.at)
    }

    /// Remove and return the earliest `(at, item)` iff `pred` approves
    /// it — a peek-then-pop that never exposes references into the wheel.
    /// The engine uses this to coalesce consecutive same-timestamp
    /// deliveries to one host into a single agent dispatch.
    pub fn pop_if(&mut self, pred: impl FnOnce(SimTime, &T) -> bool) -> Option<(SimTime, T)> {
        if !self.normalize() {
            return None;
        }
        let bucket = &mut self.buckets[(self.base_tick & MASK) as usize];
        let head = bucket.items.last()?;
        if !pred(head.at, &head.item) {
            return None;
        }
        let entry = bucket.items.pop()?;
        self.wheel_len -= 1;
        self.stats.pops += 1;
        Some((entry.at, entry.item))
    }

    /// Pop the earliest entry iff it is due at or before `limit`; an
    /// entry beyond the limit stays queued. One normalize serves both
    /// the peek and the pop, so the engine's run loop pays the wheel
    /// walk once per event instead of twice.
    pub fn pop_due(&mut self, limit: SimTime) -> Due<T> {
        if !self.normalize() {
            return Due::Empty;
        }
        let bucket = &mut self.buckets[(self.base_tick & MASK) as usize];
        let Some(head) = bucket.items.last() else {
            // normalize() returned true, which guarantees a non-empty
            // bucket; see the twin guard in `pop`.
            debug_assert!(false, "normalize returned an empty bucket");
            return Due::Empty;
        };
        if head.at > limit {
            return Due::Later(head.at);
        }
        let Some(entry) = bucket.items.pop() else {
            return Due::Empty;
        };
        self.wheel_len -= 1;
        self.stats.pops += 1;
        Due::Item(entry.at, entry.item)
    }

    /// Remove and return the earliest `(at, item)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if !self.normalize() {
            return None;
        }
        let bucket = &mut self.buckets[(self.base_tick & MASK) as usize];
        let Some(entry) = bucket.items.pop() else {
            // normalize() returned true, which guarantees a non-empty
            // bucket; an empty pop would be a scheduler bug. Report the
            // queue as empty rather than aborting a campaign worker.
            debug_assert!(false, "normalize returned an empty bucket");
            return None;
        };
        self.wheel_len -= 1;
        self.stats.pops += 1;
        Some((entry.at, entry.item))
    }
}

impl<T> Default for Scheduler<T> {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Reference implementation: the heap the scheduler replaced.
    struct RefSched<T> {
        heap: BinaryHeap<Reverse<Entry<T>>>,
        seq: u64,
    }

    impl<T> RefSched<T> {
        fn new() -> Self {
            RefSched {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push(&mut self, at: SimTime, item: T) {
            self.seq += 1;
            self.heap.push(Reverse(Entry {
                at,
                seq: self.seq,
                item,
            }));
        }
        fn pop(&mut self) -> Option<(SimTime, T)> {
            self.heap.pop().map(|Reverse(e)| (e.at, e.item))
        }
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_nanos(500), "b");
        s.push(SimTime::from_nanos(100), "a");
        s.push(SimTime::from_nanos(500), "c"); // same time as b: FIFO
        assert_eq!(s.pop(), Some((SimTime::from_nanos(100), "a")));
        assert_eq!(s.pop(), Some((SimTime::from_nanos(500), "b")));
        assert_eq!(s.pop(), Some((SimTime::from_nanos(500), "c")));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn far_future_goes_through_heap_and_back() {
        let mut s = Scheduler::new();
        // Far beyond the wheel horizon (1024 µs at default width).
        s.push(SimTime::from_millis(250), "rto");
        s.push(SimTime::from_nanos(10), "now");
        assert_eq!(s.stats().heap_pushes, 1);
        assert_eq!(s.pop().unwrap().1, "now");
        assert_eq!(s.pop().unwrap().1, "rto");
        assert_eq!(s.stats().migrations, 1);
    }

    #[test]
    fn ties_across_wheel_and_heap_preserve_fifo() {
        let mut s = Scheduler::new();
        let far = SimTime::from_millis(50);
        s.push(far, 1); // beyond horizon -> heap
        s.push(SimTime::from_nanos(1), 0);
        assert_eq!(s.pop().unwrap().1, 0);
        // Now the wheel jumps to the far tick; a push at the identical
        // time goes to the wheel while 1 migrates from the heap. Seq
        // order must still break the tie.
        s.push(far, 2);
        assert_eq!(s.pop(), Some((far, 1)));
        assert_eq!(s.pop(), Some((far, 2)));
    }

    #[test]
    fn insert_into_current_bucket_while_draining() {
        let mut s = Scheduler::new();
        let t = SimTime::from_nanos(100);
        s.push(t, "first");
        assert_eq!(s.next_at(), Some(t)); // sorts the current bucket
                                          // Same-bucket, later time and same-bucket same-time inserts.
        s.push(SimTime::from_nanos(90).max(t), "tie");
        s.push(SimTime::from_nanos(900), "later");
        assert_eq!(s.pop().unwrap().1, "first");
        assert_eq!(s.pop().unwrap().1, "tie");
        assert_eq!(s.pop().unwrap().1, "later");
    }

    #[test]
    fn matches_reference_heap_on_random_workload() {
        // Deterministic xorshift; mixes near-future (serialization-scale),
        // mid-future (RTT-scale), and far-future (RTO-scale) pushes the
        // way the engine does, interleaved with pops.
        let mut rng: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut s = Scheduler::new();
        let mut r = RefSched::new();
        let mut now = SimTime::ZERO;
        let mut id = 0u32;
        for _ in 0..50_000 {
            let roll = next() % 100;
            if roll < 60 {
                let dt = match next() % 10 {
                    0..=6 => SimDuration::from_nanos(next() % 5_000),
                    7 | 8 => SimDuration::from_nanos(next() % 200_000),
                    _ => SimDuration::from_millis(200 + next() % 100),
                };
                // A burst of same-timestamp pushes ~10% of the time.
                let copies = if next() % 10 == 0 { 3 } else { 1 };
                for _ in 0..copies {
                    s.push(now + dt, id);
                    r.push(now + dt, id);
                    id += 1;
                }
            } else {
                let a = s.pop();
                let b = r.pop();
                assert_eq!(a, b, "divergence after {id} pushes");
                if let Some((at, _)) = a {
                    now = at;
                }
            }
        }
        loop {
            let a = s.pop();
            let b = r.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn bucket_width_clamps_and_rounds() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.set_bucket_width(1_200); // 10 Gb/s * 1500 B
        assert_eq!(s.bucket_width_ns(), 1024);
        s.set_bucket_width(1);
        assert_eq!(s.bucket_width_ns(), MIN_BUCKET_NS);
        s.set_bucket_width(u64::MAX);
        assert_eq!(s.bucket_width_ns(), MAX_BUCKET_NS);
    }

    #[test]
    fn stats_count_operations() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_nanos(10), ());
        s.push(SimTime::from_secs_f64(1.0), ());
        let st = s.stats();
        assert_eq!(st.wheel_pushes, 1);
        assert_eq!(st.heap_pushes, 1);
        assert_eq!(st.wheel_hit_rate(), 0.5);
        while s.pop().is_some() {}
        assert_eq!(s.stats().pops, 2);
    }
}
