//! The discrete-event engine.
//!
//! [`Network`] owns the topology (nodes, links, routes), the event queue,
//! the clock, and the attached [`Agent`]s. A run processes events in
//! timestamp order — ties broken by insertion order, so identical
//! configurations replay identically — until the queue drains, a stop is
//! requested, or a time limit is reached.
//!
//! Routing is static: each node maps a destination host to one *or more*
//! outgoing links. Multi-link routes are sprayed round-robin per packet,
//! modelling the paper's bonded 2×10 Gb/s sender links.

use crate::agent::{Agent, AgentCommand, Ctx};
use crate::fault::{FaultSpec, FaultState, FAULT_STREAM_SALT};
use crate::flowtab::{FlowKey, FlowTable};
use crate::ids::{FlowId, LinkId, NodeId};
use crate::link::{LinkSpec, LinkState, LinkStats};
use crate::packet::Packet;
use crate::pktlog::{PacketEventKind, PacketLog};
use crate::pool::{FramePool, FrameRef};
use crate::queue::{EnqueueOutcome, QueueStats};
use crate::rng::SimRng;
use crate::sched::{SchedStats, Scheduler};
use crate::time::{SimDuration, SimTime};
use crate::trace::{FlowTrace, HostActivity};
use obs::SharedRecorder;
use std::any::Any;

/// What kind of node this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host: packets addressed to it are delivered to its agent.
    Host,
    /// A switch: packets are forwarded according to the route table.
    Switch,
}

/// A route entry: one or more parallel links toward a destination.
#[derive(Debug, Default, Clone)]
struct Route {
    links: Vec<LinkId>,
    /// Round-robin cursor for multi-link (bonded) routes.
    next: usize,
}

struct Node {
    kind: NodeKind,
    /// Indexed by destination node id.
    routes: Vec<Route>,
}

#[derive(Debug)]
enum Event {
    /// Frame finished propagation and arrives at `node`. The payload is
    /// a 4-byte ref into the engine's [`FramePool`] — the event wheel
    /// moves 32-byte entries, not 168-byte packets.
    Arrive { node: NodeId, pkt: FrameRef },
    /// Link finished serializing its in-flight frame.
    TxDone { link: LinkId },
    /// Agent timer.
    Timer { node: NodeId, token: u64 },
}

/// Why a run returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// No events remain; the system is quiescent.
    Drained,
    /// An agent called [`Ctx::request_stop`].
    Stopped,
    /// The configured time limit was reached with events still pending.
    TimeLimit,
    /// The stall watchdog fired: more than the configured budget of
    /// events were processed without a single host delivery (see
    /// [`Network::set_stall_budget`]). The run is livelocked — agents and
    /// links keep generating events but no application progress happens.
    Stalled,
    /// The wall-clock deadline passed (see [`Network::set_wall_deadline`]).
    /// Unlike [`RunOutcome::TimeLimit`] this bounds *host* time, not
    /// simulated time: it catches cells that are slow-wedged — still
    /// making nominal event progress, but far past any sane runtime.
    DeadlineExceeded,
}

/// Aggregate drop/mark statistics across all links. Congestive counters
/// (queue drops/marks) and injected counters (fault layer) are disjoint
/// by construction: injection happens after a frame has left its queue.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetworkStats {
    /// Total packets dropped by all queues (congestive).
    pub dropped_pkts: u64,
    /// Total packets CE-marked by all queues.
    pub marked_pkts: u64,
    /// Frames lost to injected faults across all links.
    pub injected_drops: u64,
    /// Frames bit-corrupted by injected faults.
    pub injected_corrupts: u64,
    /// Frames duplicated by injected faults.
    pub injected_dups: u64,
    /// Frames held back for reordering by injected faults.
    pub injected_reorders: u64,
    /// Frames handed to the network by agents (`Ctx::send`). Together
    /// with the counters below this closes the frame conservation law
    /// the paranoid campaign checker asserts: every originated or
    /// fault-duplicated frame is eventually delivered, discarded as
    /// corrupt, injected-dropped, or congestively dropped.
    pub originated_pkts: u64,
    /// Frames dispatched to a host agent (clean deliveries).
    pub delivered_pkts: u64,
    /// Corrupted frames discarded at a host NIC (FCS failure).
    pub corrupt_discards: u64,
}

impl NetworkStats {
    /// Frame conservation residual: originated + duplicated minus every
    /// accounted fate. Zero at quiescence ([`RunOutcome::Drained`]);
    /// positive while frames are still queued or in flight. Negative
    /// means double-counting — always a bug.
    pub fn conservation_residual(&self) -> i64 {
        (self.originated_pkts + self.injected_dups) as i64
            - (self.delivered_pkts
                + self.corrupt_discards
                + self.injected_drops
                + self.dropped_pkts) as i64
    }
}

/// Engine performance counters: event totals plus the scheduler's
/// wheel/heap operation counts. Cheap to copy; sample before and after a
/// run to attribute costs.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineCounters {
    /// Events popped and dispatched by the run loop.
    pub events_processed: u64,
    /// Host dispatches (one agent callback covering ≥1 delivered packets).
    pub dispatch_batches: u64,
    /// Packets delivered through those dispatches. `batched_pkts /
    /// dispatch_batches` is the mean batch size; 1.0 means batching never
    /// found coalescable arrivals (or is disabled).
    pub batched_pkts: u64,
    /// Scheduler operation counters (wheel vs heap pushes, migrations).
    pub sched: SchedStats,
}

impl EngineCounters {
    /// Fraction of event pushes served by the O(1) wheel path.
    pub fn wheel_hit_rate(&self) -> f64 {
        self.sched.wheel_hit_rate()
    }
}

/// The simulated network: topology + clock + event queue + agents.
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<LinkState>,
    /// Flat slab of attached agents: dense storage, generational handles.
    /// `node_agents` maps a node id to its handle, so the per-event
    /// dispatch is two indexed loads instead of chasing an `Option<Box>`
    /// per node, and a detached slot is reused instead of leaking.
    agents: FlowTable<Box<dyn Agent>>,
    node_agents: Vec<Option<FlowKey>>,
    sched: Scheduler<Event>,
    now: SimTime,
    rng: SimRng,
    /// The seed the network was created with; fault streams derive from
    /// it (salted) so installing faults never perturbs `rng`'s fork
    /// order — fault-free runs stay bit-identical.
    master_seed: u64,
    /// Per-node RNG streams (agents draw from their own stream).
    node_rngs: Vec<SimRng>,
    flow_trace: Option<FlowTrace>,
    activity: Option<HostActivity>,
    pkt_log: Option<PacketLog>,
    /// Observability seam (see [`Network::set_recorder`]). `None` — the
    /// default — keeps the hot path at a single branch per site, and the
    /// recorder never touches the RNG or the event queue, so attaching
    /// one cannot perturb the simulation.
    recorder: Option<SharedRecorder>,
    commands: Vec<AgentCommand>,
    /// Reusable buffer for same-timestamp delivery batches; drained by
    /// the agent callback, so it is empty between dispatches.
    delivery_buf: Vec<Packet>,
    /// Coalesce consecutive same-timestamp arrivals at one host into a
    /// single [`Agent::on_packets`] dispatch (see
    /// [`Network::set_delivery_batching`]). On by default.
    batch_deliveries: bool,
    stop_requested: bool,
    events_processed: u64,
    dispatch_batches: u64,
    batched_pkts: u64,
    /// Stall watchdog: events processed since the last host delivery,
    /// and the budget that trips [`RunOutcome::Stalled`] (`None` = off).
    events_since_progress: u64,
    stall_budget: Option<u64>,
    /// Wall-clock deadline for the run loop (`None` = off). Checked every
    /// [`DEADLINE_CHECK_MASK`]+1 events so the hot path pays a masked
    /// branch, not a clock read, per event.
    wall_deadline: Option<std::time::Instant>,
    /// Slab of frames in flight: every packet between `Ctx::send` and
    /// host delivery lives here, addressed by [`FrameRef`].
    frames: FramePool,
    /// Network-level frame conservation counters (see [`NetworkStats`]).
    originated_pkts: u64,
    delivered_pkts: u64,
    corrupt_discards: u64,
}

/// The run loop reads the wall clock once per this many events (power of
/// two; the check is `events_processed & MASK == 0`). At the engine's
/// multi-M events/s rate that is many checks per second — far finer than
/// any sane deadline — while keeping `Instant::now` off the hot path.
const DEADLINE_CHECK_MASK: u64 = (1 << 14) - 1;

impl Network {
    /// Create an empty network with a master seed. Components derive their
    /// own streams from it so runs are reproducible.
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            links: Vec::new(),
            agents: FlowTable::new(),
            node_agents: Vec::new(),
            sched: Scheduler::new(),
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            master_seed: seed,
            node_rngs: Vec::new(),
            flow_trace: None,
            activity: None,
            pkt_log: None,
            recorder: None,
            commands: Vec::new(),
            delivery_buf: Vec::new(),
            batch_deliveries: true,
            stop_requested: false,
            events_processed: 0,
            dispatch_batches: 0,
            batched_pkts: 0,
            events_since_progress: 0,
            stall_budget: None,
            wall_deadline: None,
            frames: FramePool::new(),
            originated_pkts: 0,
            delivered_pkts: 0,
            corrupt_discards: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Snapshot of the engine's performance counters.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            events_processed: self.events_processed,
            dispatch_batches: self.dispatch_batches,
            batched_pkts: self.batched_pkts,
            sched: self.sched.stats(),
        }
    }

    /// Enable or disable same-timestamp delivery batching. Batching is
    /// on by default and bit-identical to per-packet dispatch (the
    /// equivalence the workload proptests pin): only *consecutive*
    /// arrivals at the same host with the same timestamp coalesce, the
    /// per-packet bookkeeping runs per packet either way, and agent
    /// commands apply in the same global order. The switch exists so
    /// equivalence tests can run both modes.
    pub fn set_delivery_batching(&mut self, on: bool) {
        self.batch_deliveries = on;
    }

    /// Enable per-flow delivered-throughput tracing with the given bin.
    pub fn enable_flow_trace(&mut self, bin: SimDuration) {
        self.flow_trace = Some(FlowTrace::new(bin));
    }

    /// Enable per-host activity recording with the given bin. Required by
    /// the energy meter.
    pub fn enable_activity(&mut self, bin: SimDuration) {
        self.activity = Some(HostActivity::new(bin));
    }

    /// The flow trace, if enabled.
    pub fn flow_trace(&self) -> Option<&FlowTrace> {
        self.flow_trace.as_ref()
    }

    /// The host activity record, if enabled.
    pub fn activity(&self) -> Option<&HostActivity> {
        self.activity.as_ref()
    }

    /// Enable packet-level event logging (drops, marks, deliveries),
    /// keeping the most recent `capacity` events.
    pub fn enable_packet_log(&mut self, capacity: usize) {
        self.pkt_log = Some(PacketLog::new(capacity));
    }

    /// The packet log, if enabled.
    pub fn packet_log(&self) -> Option<&PacketLog> {
        self.pkt_log.as_ref()
    }

    /// Attach an observability recorder. The engine reports queue
    /// depth, drops/marks, and link utilization into it; transport
    /// agents sharing the same recorder add per-flow events. Purely
    /// observational: the event stream, RNG draws, and all counters are
    /// bit-identical with or without a recorder attached.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = Some(recorder);
    }

    /// Add a host node; returns its id.
    pub fn add_host(&mut self) -> NodeId {
        self.add_node(NodeKind::Host)
    }

    /// Add a switch node; returns its id.
    pub fn add_switch(&mut self) -> NodeId {
        self.add_node(NodeKind::Switch)
    }

    fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId::from_raw(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            routes: Vec::new(),
        });
        self.node_agents.push(None);
        let stream = self.rng.fork(id.index() as u64);
        self.node_rngs.push(stream);
        id
    }

    /// Add a unidirectional link from `src` to `dst`; returns its id.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, spec: LinkSpec) -> LinkId {
        assert!(src.index() < self.nodes.len(), "unknown src node");
        assert!(dst.index() < self.nodes.len(), "unknown dst node");
        let id = LinkId::from_raw(self.links.len() as u32);
        self.links.push(LinkState::new(src, dst, spec));
        id
    }

    /// Install a route at `node`: packets for `dst` leave via `link`.
    /// Calling repeatedly for the same `(node, dst)` *adds* parallel links,
    /// which the engine sprays round-robin (link bonding).
    pub fn add_route(&mut self, node: NodeId, dst: NodeId, link: LinkId) {
        assert_eq!(
            self.links[link.index()].src,
            node,
            "route must use a link leaving the node"
        );
        let routes = &mut self.nodes[node.index()].routes;
        if routes.len() <= dst.index() {
            routes.resize(dst.index() + 1, Route::default());
        }
        routes[dst.index()].links.push(link);
    }

    /// Attach an agent to a host node. Panics if the node is a switch or
    /// already has an agent.
    pub fn attach_agent(&mut self, node: NodeId, agent: Box<dyn Agent>) {
        assert_eq!(
            self.nodes[node.index()].kind,
            NodeKind::Host,
            "agents attach to hosts"
        );
        let slot = &mut self.node_agents[node.index()];
        assert!(slot.is_none(), "node already has an agent");
        *slot = Some(self.agents.insert(agent));
        self.report_agent_occupancy();
    }

    /// Detach and return the agent attached to `node`, freeing its flow-
    /// table slot for reuse. Timers already armed for the node fire into
    /// the void (or into a replacement agent, which must tolerate stale
    /// tokens — the standard DES idiom).
    pub fn detach_agent(&mut self, node: NodeId) -> Option<Box<dyn Agent>> {
        let key = self.node_agents.get_mut(node.index())?.take()?;
        let agent = self.agents.remove(key);
        debug_assert!(agent.is_some(), "node handle pointed at a vacant slot");
        self.report_agent_occupancy();
        agent
    }

    /// Live/capacity occupancy of the agent flow table, reported through
    /// the recorder whenever an attach/detach changes it.
    fn report_agent_occupancy(&mut self) {
        if let Some(rec) = &self.recorder {
            rec.borrow_mut().flow_table_occupancy(
                self.now.as_nanos(),
                self.agents.len() as u64,
                self.agents.capacity() as u64,
            );
        }
    }

    /// Borrow an attached agent, downcast to its concrete type.
    pub fn agent<T: Agent>(&self, node: NodeId) -> Option<&T> {
        let key = (*self.node_agents.get(node.index())?)?;
        let agent = self.agents.get(key)?;
        (agent.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutably borrow an attached agent, downcast to its concrete type.
    pub fn agent_mut<T: Agent>(&mut self, node: NodeId) -> Option<&mut T> {
        let key = (*self.node_agents.get(node.index())?)?;
        let agent = self.agents.get_mut(key)?;
        (agent.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Queue statistics of a link's qdisc.
    pub fn queue_stats(&self, link: LinkId) -> QueueStats {
        self.links[link.index()].qdisc.stats()
    }

    /// Current queue occupancy of a link in bytes.
    pub fn queue_bytes(&self, link: LinkId) -> u64 {
        self.links[link.index()].qdisc.len_bytes()
    }

    /// Transmit statistics of a link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.links[link.index()].stats
    }

    /// Install (or replace) a fault spec on a link. The fault stream is
    /// derived from the master seed and the link id — deliberately *not*
    /// forked from the engine's live RNG — so congestion randomness and
    /// the golden fingerprints of fault-free runs are untouched.
    ///
    /// The spec is validated against the target link's geometry before
    /// anything is installed ([`FaultSpec::validate_for_link`]): a NaN
    /// probability, an empty or overlapping flap window, or jitter at or
    /// above the link's propagation delay is a typed
    /// [`crate::fault::FaultSpecError`] here instead of silently biased
    /// behaviour a million events later.
    pub fn set_link_fault(
        &mut self,
        link: LinkId,
        spec: FaultSpec,
    ) -> Result<(), crate::fault::FaultSpecError> {
        spec.validate_for_link(self.links[link.index()].prop_delay)?;
        let stream =
            SimRng::new(self.master_seed ^ FAULT_STREAM_SALT).fork(link.index() as u64 + 1);
        self.links[link.index()].fault = Some(FaultState::new(spec, stream));
        Ok(())
    }

    /// Remove a link's fault spec, restoring the clean wire.
    pub fn clear_link_fault(&mut self, link: LinkId) {
        self.links[link.index()].fault = None;
    }

    /// The fault spec installed on a link, if any.
    pub fn link_fault(&self, link: LinkId) -> Option<&FaultSpec> {
        self.links[link.index()].fault.as_ref().map(|f| f.spec())
    }

    /// Arm the stall watchdog: if more than `budget` consecutive events
    /// are processed without a single packet delivered to a host, the run
    /// returns [`RunOutcome::Stalled`] instead of spinning. `None`
    /// disables (the default). Timer-driven retry loops advance slowly
    /// in event count, so a generous budget (~10^6) only trips on
    /// genuine livelock.
    pub fn set_stall_budget(&mut self, budget: Option<u64>) {
        self.stall_budget = budget;
    }

    /// Arm (or clear) a wall-clock deadline: once the host clock passes
    /// `deadline`, the run loop returns [`RunOutcome::DeadlineExceeded`]
    /// at its next check instead of running on. Complements the
    /// event-count stall watchdog: that one catches livelock (events
    /// without progress), this one catches slow-wedged runs that do make
    /// progress but have blown any reasonable time budget.
    pub fn set_wall_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.wall_deadline = deadline;
    }

    /// Aggregate drop/mark counters across all links.
    pub fn network_stats(&self) -> NetworkStats {
        let mut s = NetworkStats::default();
        for l in &self.links {
            let q = l.qdisc.stats();
            s.dropped_pkts += q.dropped_pkts;
            s.marked_pkts += q.marked_pkts;
            s.injected_drops += l.stats.injected_drops;
            s.injected_corrupts += l.stats.injected_corrupts;
            s.injected_dups += l.stats.injected_dups;
            s.injected_reorders += l.stats.injected_reorders;
        }
        s.originated_pkts = self.originated_pkts;
        s.delivered_pkts = self.delivered_pkts;
        s.corrupt_discards = self.corrupt_discards;
        s
    }

    fn schedule(&mut self, at: SimTime, event: Event) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        self.sched.push(at, event);
    }

    /// Size the scheduler's wheel buckets from the topology: one bucket
    /// per fastest-link serialization time (a 1500-byte frame, or the
    /// per-packet gap when a pps cap dominates), so back-to-back packets
    /// land in adjacent buckets instead of piling into one.
    fn autosize_scheduler(&mut self) {
        if !self.sched.is_empty() {
            return;
        }
        let width = self
            .links
            .iter()
            .map(|l| {
                l.rate
                    .serialization_time(1500)
                    .max(l.min_pkt_gap)
                    .as_nanos()
            })
            .min();
        if let Some(width) = width {
            self.sched.set_bucket_width(width);
        }
    }

    /// Route the frame out of `node` and enqueue it on the chosen link.
    fn route_and_transmit(&mut self, node: NodeId, frame: FrameRef) {
        let dst = self.frames.get(frame).dst;
        let route = self.nodes[node.index()]
            .routes
            .get_mut(dst.index())
            .filter(|r| !r.links.is_empty())
            // simlint::allow(panic-hygiene, reason = "a missing route is a topology construction bug, not a runtime condition; it fires on the first packet of a misbuilt scenario, never mid-campaign")
            .unwrap_or_else(|| panic!("no route from {node} to {dst}"));
        let link = route.links[route.next % route.links.len()];
        route.next = route.next.wrapping_add(1);
        self.transmit_on(link, frame);
    }

    fn transmit_on(&mut self, link_id: LinkId, frame: FrameRef) {
        let now = self.now;
        let link = &mut self.links[link_id.index()];
        match link.qdisc.enqueue(frame, &mut self.frames, now) {
            EnqueueOutcome::Dropped => {
                // The qdisc did not store the ref: log the drop, then
                // free the slot — the frame's life ends here.
                let pkt = self.frames.get(frame);
                if let Some(log) = self.pkt_log.as_mut() {
                    log.record(now, PacketEventKind::Dropped, pkt, Some(link_id), None);
                }
                if let Some(rec) = &self.recorder {
                    rec.borrow_mut().queue_drop(
                        now.as_nanos(),
                        link_id.index() as u32,
                        pkt.flow.index() as u32,
                        false,
                    );
                }
                self.frames.release(frame);
            }
            outcome @ (EnqueueOutcome::Enqueued | EnqueueOutcome::EnqueuedMarked) => {
                if outcome == EnqueueOutcome::EnqueuedMarked {
                    let pkt = self.frames.get(frame);
                    if let Some(log) = self.pkt_log.as_mut() {
                        log.record(now, PacketEventKind::Marked, pkt, Some(link_id), None);
                    }
                    if let Some(rec) = &self.recorder {
                        rec.borrow_mut().queue_mark(
                            now.as_nanos(),
                            link_id.index() as u32,
                            pkt.flow.index() as u32,
                        );
                    }
                }
                if let Some(rec) = &self.recorder {
                    let depth = self.links[link_id.index()].qdisc.len_bytes();
                    rec.borrow_mut()
                        .queue_depth(now.as_nanos(), link_id.index() as u32, depth);
                }
                if !self.links[link_id.index()].is_busy() {
                    self.start_tx(link_id);
                }
            }
        }
    }

    /// Begin serializing the next queued packet on an idle link.
    fn start_tx(&mut self, link_id: LinkId) {
        let now = self.now;
        let link = &mut self.links[link_id.index()];
        debug_assert!(!link.is_busy());
        let Some(frame) = link.qdisc.dequeue(now) else {
            return;
        };
        let occupancy = link.occupancy_time(self.frames.get(frame));
        link.update_util(now, occupancy);
        // Read every link-derived value before stamping the frame: the
        // pool borrow and the link borrow are disjoint fields, but the
        // stamp wants both, so the link side is snapshotted first.
        let queue_bytes = link.qdisc.len_bytes().min(u32::MAX as u64) as u32;
        let util_x1000 = (link.util_ewma * 1000.0).round() as u16;
        let link_mbps = link.mbps;
        let src = link.src;
        link.in_flight = Some(frame);
        link.tx_started = now;
        // In-band telemetry: every hop is INT-capable (as the paper's
        // Tofino is); the record keeps the most-utilized hop's state.
        // Stamped in place — the frame never leaves the pool for this.
        let pkt = self.frames.get_mut(frame);
        if pkt.is_data() && (!pkt.int.is_stamped() || util_x1000 >= pkt.int.util_x1000) {
            pkt.int = crate::packet::IntRecord {
                queue_bytes,
                util_x1000,
                link_mbps,
            };
        }
        // Record the host's transmit work when the packet hits the wire.
        let (wire, retx) = (pkt.wire_bytes as u64, pkt.is_retx && pkt.is_data());
        let is_host = self.nodes[src.index()].kind == NodeKind::Host;
        if let Some(rec) = &self.recorder {
            let link = &self.links[link_id.index()];
            let mut rec = rec.borrow_mut();
            rec.link_utilization(now.as_nanos(), link_id.index() as u32, link.util_ewma);
            rec.queue_depth(
                now.as_nanos(),
                link_id.index() as u32,
                link.qdisc.len_bytes(),
            );
        }
        if is_host {
            if let Some(act) = self.activity.as_mut() {
                act.record_tx(src, now, wire, retx);
            }
        }
        self.schedule(now + occupancy, Event::TxDone { link: link_id });
    }

    fn on_tx_done(&mut self, link_id: LinkId) {
        let now = self.now;
        let link = &mut self.links[link_id.index()];
        let Some(frame) = link.in_flight.take() else {
            // A TxDone without an in-flight frame would mean the scheduler
            // delivered a stale event; drop it rather than poison the run.
            debug_assert!(false, "TxDone with no in-flight packet on {link_id:?}");
            return;
        };
        link.stats.tx_pkts += 1;
        link.stats.tx_bytes += self.frames.get(frame).wire_bytes as u64;
        link.stats.busy_time += now - link.tx_started;
        let prop = link.prop_delay;
        let dst = link.dst;
        // Fault layer: decide the frame's fate *after* it has paid its
        // serialization time (the sender's energy accounting already
        // charged the transmit work — injected losses must not refund it).
        let mut lost = false;
        let mut duplicate = false;
        let mut extra = SimDuration::ZERO;
        if let Some(fault) = link.fault.as_mut() {
            let fate = fault.fate(now);
            if fate.drop {
                link.stats.injected_drops += 1;
                lost = true;
            } else {
                if fate.corrupt {
                    link.stats.injected_corrupts += 1;
                    self.frames.get_mut(frame).corrupted = true;
                }
                if fate.duplicate {
                    link.stats.injected_dups += 1;
                    duplicate = true;
                }
                if fate.reorder {
                    link.stats.injected_reorders += 1;
                }
                extra = fate.extra_delay;
            }
        }
        if lost {
            let pkt = self.frames.get(frame);
            if let Some(log) = self.pkt_log.as_mut() {
                log.record(now, PacketEventKind::InjectedDrop, pkt, Some(link_id), None);
            }
            if let Some(rec) = &self.recorder {
                rec.borrow_mut().queue_drop(
                    now.as_nanos(),
                    link_id.index() as u32,
                    pkt.flow.index() as u32,
                    true,
                );
            }
            self.frames.release(frame);
        } else {
            self.schedule(
                now + prop + extra,
                Event::Arrive {
                    node: dst,
                    pkt: frame,
                },
            );
            if duplicate {
                // The copy arrives right behind the original (same
                // timestamp, later insertion order). A duplicate is the
                // one case that clones a pooled frame.
                let copy = *self.frames.get(frame);
                let dup = self.frames.alloc(copy);
                self.schedule(
                    now + prop + extra,
                    Event::Arrive {
                        node: dst,
                        pkt: dup,
                    },
                );
            }
        }
        // Keep the transmitter going.
        if self.links[link_id.index()].qdisc.len_pkts() > 0 {
            self.start_tx(link_id);
        }
    }

    fn on_arrive(&mut self, node: NodeId, frame: FrameRef) {
        match self.nodes[node.index()].kind {
            NodeKind::Switch => {
                // Switch forwarding never touches the payload: the frame
                // stays in the pool and only the 4-byte ref moves.
                self.route_and_transmit(node, frame);
            }
            NodeKind::Host => self.deliver_to_host(node, frame),
        }
    }

    /// Per-packet host receive bookkeeping: activity, FCS check, traces,
    /// packet log, conservation counters. Returns `false` when the frame
    /// is a corrupt discard that must not reach the agent. Runs once per
    /// packet whether or not the dispatch itself is batched, so batching
    /// cannot change any counter or trace.
    fn host_rx_bookkeeping(&mut self, node: NodeId, pkt: &Packet) -> bool {
        debug_assert_eq!(pkt.dst, node, "host received mis-routed packet");
        if let Some(act) = self.activity.as_mut() {
            act.record_rx(node, self.now, pkt.wire_bytes as u64, !pkt.is_data());
        }
        if pkt.corrupted {
            // FCS failure: the NIC paid for the receive (activity
            // recorded above) but discards the frame before the
            // transport ever sees it.
            self.corrupt_discards += 1;
            if let Some(log) = self.pkt_log.as_mut() {
                log.record(
                    self.now,
                    PacketEventKind::CorruptDiscard,
                    pkt,
                    None,
                    Some(node),
                );
            }
            return false;
        }
        if pkt.is_data() {
            if let Some(trace) = self.flow_trace.as_mut() {
                trace.record(pkt.flow, self.now, pkt.payload_bytes as u64);
            }
        }
        if let Some(log) = self.pkt_log.as_mut() {
            log.record(self.now, PacketEventKind::Delivered, pkt, None, Some(node));
        }
        // A host delivery is the watchdog's definition of
        // application progress.
        self.events_since_progress = 0;
        self.delivered_pkts += 1;
        true
    }

    /// Deliver a host arrival, coalescing any *consecutive* arrivals at
    /// the same host with the same timestamp into one agent dispatch.
    ///
    /// Determinism argument (pinned by the workload equivalence
    /// proptests): agent callbacks only buffer commands — they never
    /// mutate engine state directly — so handing the agent packets
    /// `[p1, p2]` in one call draws the same RNG stream and emits the
    /// same command sequence as two back-to-back calls; commands then
    /// apply in the same global order either way. Only *consecutive*
    /// `(at, seq)` events coalesce, so no event is ever reordered past
    /// another. Per-packet bookkeeping still runs per packet.
    fn deliver_to_host(&mut self, node: NodeId, frame: FrameRef) {
        let mut buf = std::mem::take(&mut self.delivery_buf);
        debug_assert!(buf.is_empty());
        // Delivery is the frame's exit from the pool: the one copy-out.
        let pkt = self.frames.take(frame);
        if self.host_rx_bookkeeping(node, &pkt) {
            buf.push(pkt);
        }
        if self.batch_deliveries {
            let now = self.now;
            while let Some((_, ev)) = self.sched.pop_if(|at, ev| {
                at == now && matches!(ev, Event::Arrive { node: n, .. } if *n == node)
            }) {
                // Each coalesced event is still an event: it counts
                // toward the totals the golden fingerprints pin. (The
                // wall-deadline check may slide by one batch length —
                // bounded by the batch, far below its 2^14 granularity.)
                self.events_processed += 1;
                if let Event::Arrive { pkt: coalesced, .. } = ev {
                    let pkt = self.frames.take(coalesced);
                    if self.host_rx_bookkeeping(node, &pkt) {
                        buf.push(pkt);
                    }
                }
            }
        }
        if !buf.is_empty() {
            self.dispatch_batches += 1;
            self.batched_pkts += buf.len() as u64;
            if let Some(rec) = &self.recorder {
                rec.borrow_mut().dispatch_batch(
                    self.now.as_nanos(),
                    node.index() as u32,
                    buf.len() as u32,
                );
            }
            self.with_agent(node, |agent, ctx| agent.on_packets(&mut buf, ctx));
            buf.clear();
        }
        self.delivery_buf = buf;
    }

    /// Run an agent callback and apply the commands it issued.
    ///
    /// The agent is borrowed *in place* through split field borrows (the
    /// flow table, the node's RNG, and the command buffer are disjoint
    /// fields), so a panicking agent unwinds with the table fully
    /// intact — there is no take/put-back window that could leave the
    /// slot empty and turn one cell's panic into a poisoned network.
    fn with_agent(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Agent, &mut Ctx<'_>)) {
        let Some(Some(key)) = self.node_agents.get(node.index()).copied() else {
            // No agent: packets/timers for this host are silently dropped.
            return;
        };
        let Some(agent) = self.agents.get_mut(key) else {
            debug_assert!(false, "node handle pointed at a vacant slot");
            return;
        };
        let Some(rng) = self.node_rngs.get_mut(node.index()) else {
            debug_assert!(false, "node without an RNG stream");
            return;
        };
        // No-op normally (the buffer is drained after every callback);
        // after a *panicking* callback it discards the half-issued
        // commands so a caught unwind can't leak them into the next
        // dispatch.
        self.commands.clear();
        let mut ctx = Ctx {
            now: self.now,
            node,
            rng,
            commands: &mut self.commands,
            token_ns: 0,
        };
        f(agent.as_mut(), &mut ctx);
        self.apply_commands(node);
    }

    /// Apply the commands buffered by an agent callback, in issue order.
    fn apply_commands(&mut self, node: NodeId) {
        if self.commands.is_empty() {
            return;
        }
        // Drain in place and put the buffer back so its capacity is
        // reused across callbacks: this loop runs once per event, and a
        // fresh allocation per agent callback dominates the dispatch cost.
        let mut commands = std::mem::take(&mut self.commands);
        for cmd in commands.drain(..) {
            match cmd {
                AgentCommand::Send(pkt) => {
                    self.originated_pkts += 1;
                    // Origination is the frame's entry into the pool:
                    // the one copy-in.
                    let frame = self.frames.alloc(pkt);
                    self.route_and_transmit(node, frame)
                }
                AgentCommand::SetTimer { at, token } => {
                    self.schedule(at.max(self.now), Event::Timer { node, token })
                }
                AgentCommand::Stop => self.stop_requested = true,
            }
        }
        self.commands = commands;
    }

    /// Invoke every agent's `on_start`. Called automatically by the run
    /// methods on their first use.
    fn start_agents(&mut self) {
        if self.events_processed > 0 || self.now > SimTime::ZERO {
            return;
        }
        self.autosize_scheduler();
        self.report_agent_occupancy();
        for i in 0..self.node_agents.len() {
            let node = NodeId::from_raw(i as u32);
            if self.node_agents[i].is_some() {
                self.with_agent(node, |agent, ctx| agent.on_start(ctx));
            }
        }
    }

    /// Run until the event queue drains, a stop is requested, or `limit`
    /// simulated time is reached.
    pub fn run_until(&mut self, limit: SimTime) -> RunOutcome {
        self.start_agents();
        loop {
            if self.stop_requested {
                return RunOutcome::Stopped;
            }
            let (at, event) = match self.sched.pop_due(limit) {
                crate::sched::Due::Item(at, event) => (at, event),
                // Leave the event queued so a later run resumes it.
                crate::sched::Due::Later(_) => return RunOutcome::TimeLimit,
                crate::sched::Due::Empty => return RunOutcome::Drained,
            };
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.events_processed += 1;
            if self.events_processed & DEADLINE_CHECK_MASK == 0 {
                if let Some(deadline) = self.wall_deadline {
                    // simlint::allow(wall-clock, reason = "the stall watchdog deadline is wall time by design; it only decides when to abandon a run, never what the run computes")
                    if std::time::Instant::now() >= deadline {
                        return RunOutcome::DeadlineExceeded;
                    }
                }
            }
            match event {
                Event::Arrive { node, pkt } => self.on_arrive(node, pkt),
                Event::TxDone { link } => self.on_tx_done(link),
                Event::Timer { node, token } => {
                    self.with_agent(node, |agent, ctx| agent.on_timer(token, ctx))
                }
            }
            if let Some(budget) = self.stall_budget {
                self.events_since_progress += 1;
                if self.events_since_progress > budget {
                    return RunOutcome::Stalled;
                }
            }
        }
    }

    /// Run until quiescent or stopped (no time limit).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }
}

/// Convenience: the flow a packet belongs to, used by trace assertions.
pub fn packet_flow(pkt: &Packet) -> FlowId {
    pkt.flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{AckInfo, EcnCodepoint, Packet, PacketKind};
    use crate::units::Rate;

    /// Test agent: sends `count` data packets to `peer` at start, records
    /// everything it receives, echoes an ack per data packet.
    struct Echo {
        peer: NodeId,
        count: u32,
        received: Vec<Packet>,
        acks_received: u32,
        timer_fired: Vec<u64>,
    }

    impl Echo {
        fn new(peer: NodeId) -> Self {
            Echo {
                peer,
                count: 0,
                received: Vec::new(),
                acks_received: 0,
                timer_fired: Vec::new(),
            }
        }

        fn sending(peer: NodeId, count: u32) -> Self {
            Echo {
                count,
                ..Echo::new(peer)
            }
        }
    }

    impl Agent for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..self.count {
                ctx.send(Packet::data(
                    FlowId::from_raw(0),
                    ctx.node(),
                    self.peer,
                    i as u64 * 1000,
                    1000,
                    EcnCodepoint::NotEct,
                ));
            }
        }

        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            match pkt.kind {
                PacketKind::Data => {
                    let ack = Packet::ack(
                        pkt.flow,
                        ctx.node(),
                        pkt.src,
                        AckInfo {
                            cum_ack: pkt.seq_end(),
                            ..AckInfo::default()
                        },
                    );
                    ctx.send(ack);
                    self.received.push(pkt);
                }
                PacketKind::Ack(_) => self.acks_received += 1,
            }
        }

        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_>) {
            self.timer_fired.push(token);
        }
    }

    fn two_hosts_direct() -> (Network, NodeId, NodeId) {
        let mut net = Network::new(1);
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(
            a,
            b,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(5),
                1_000_000,
            ),
        );
        let ba = net.add_link(
            b,
            a,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(5),
                1_000_000,
            ),
        );
        net.add_route(a, b, ab);
        net.add_route(b, a, ba);
        (net, a, b)
    }

    #[test]
    fn packets_flow_and_acks_return() {
        let (mut net, a, b) = two_hosts_direct();
        net.attach_agent(a, Box::new(Echo::sending(b, 5)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);
        let recv = net.agent::<Echo>(b).unwrap();
        assert_eq!(recv.received.len(), 5);
        let send = net.agent::<Echo>(a).unwrap();
        assert_eq!(send.acks_received, 5);
    }

    #[test]
    fn serialization_and_prop_delay_add_up() {
        let (mut net, a, b) = two_hosts_direct();
        net.attach_agent(a, Box::new(Echo::sending(b, 1)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        net.run();
        let recv = net.agent::<Echo>(b).unwrap();
        // 1040 wire bytes at 10 Gbps = 832 ns serialization + 5 us prop.
        let arrival = recv.received[0];
        assert_eq!(arrival.sent_at, SimTime::ZERO);
        // Arrive time is recorded in network time; check via link stats.
        assert_eq!(net.link_stats(LinkId::from_raw(0)).tx_pkts, 1);
        assert_eq!(net.link_stats(LinkId::from_raw(0)).tx_bytes, 1040);
    }

    #[test]
    fn switch_forwards_between_hosts() {
        let mut net = Network::new(2);
        let a = net.add_host();
        let s = net.add_switch();
        let b = net.add_host();
        let a_s = net.add_link(
            a,
            s,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(1),
                1_000_000,
            ),
        );
        let s_b = net.add_link(
            s,
            b,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(1),
                1_000_000,
            ),
        );
        let b_s = net.add_link(
            b,
            s,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(1),
                1_000_000,
            ),
        );
        let s_a = net.add_link(
            s,
            a,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(1),
                1_000_000,
            ),
        );
        net.add_route(a, b, a_s);
        net.add_route(s, b, s_b);
        net.add_route(b, a, b_s);
        net.add_route(s, a, s_a);
        net.attach_agent(a, Box::new(Echo::sending(b, 3)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);
        assert_eq!(net.agent::<Echo>(b).unwrap().received.len(), 3);
        assert_eq!(net.agent::<Echo>(a).unwrap().acks_received, 3);
    }

    #[test]
    fn bonded_route_sprays_round_robin() {
        let mut net = Network::new(3);
        let a = net.add_host();
        let b = net.add_host();
        let l1 = net.add_link(
            a,
            b,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(1),
                1_000_000,
            ),
        );
        let l2 = net.add_link(
            a,
            b,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(1),
                1_000_000,
            ),
        );
        let back = net.add_link(
            b,
            a,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(1),
                1_000_000,
            ),
        );
        net.add_route(a, b, l1);
        net.add_route(a, b, l2); // second parallel link -> bonding
        net.add_route(b, a, back);
        net.attach_agent(a, Box::new(Echo::sending(b, 10)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        net.run();
        assert_eq!(net.link_stats(l1).tx_pkts, 5);
        assert_eq!(net.link_stats(l2).tx_pkts, 5);
        assert_eq!(net.agent::<Echo>(b).unwrap().received.len(), 10);
    }

    #[test]
    fn droptail_overflow_loses_packets() {
        let mut net = Network::new(4);
        let a = net.add_host();
        let b = net.add_host();
        // Tiny buffer: 2 packets of 1040 wire bytes fit.
        let ab = net.add_link(
            a,
            b,
            LinkSpec::droptail(Rate::from_mbps(1.0), SimDuration::from_micros(1), 2_500),
        );
        let ba = net.add_link(
            b,
            a,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(1),
                1_000_000,
            ),
        );
        net.add_route(a, b, ab);
        net.add_route(b, a, ba);
        net.attach_agent(a, Box::new(Echo::sending(b, 10)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        net.run();
        let received = net.agent::<Echo>(b).unwrap().received.len();
        assert!(received < 10, "expected drops, got all {received}");
        let drops = net.queue_stats(ab).dropped_pkts;
        assert_eq!(drops as usize + received, 10);
        assert_eq!(net.network_stats().dropped_pkts, drops);
    }

    #[test]
    fn min_pkt_gap_caps_packet_rate() {
        let mut net = Network::new(5);
        let a = net.add_host();
        let b = net.add_host();
        // 10 Gbps link but 10 us per-packet gap -> 100k pps cap.
        let spec = LinkSpec::droptail(Rate::from_gbps(10.0), SimDuration::ZERO, 10_000_000)
            .with_min_pkt_gap(SimDuration::from_micros(10));
        let ab = net.add_link(a, b, spec);
        let ba = net.add_link(
            b,
            a,
            LinkSpec::droptail(Rate::from_gbps(10.0), SimDuration::ZERO, 10_000_000),
        );
        net.add_route(a, b, ab);
        net.add_route(b, a, ba);
        net.attach_agent(a, Box::new(Echo::sending(b, 100)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        net.run();
        // 100 packets at 10 us spacing -> at least 990 us of simulated time.
        assert!(net.now() >= SimTime::from_micros(990), "now={}", net.now());
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerAgent;
        impl Agent for TimerAgent {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer_after(SimDuration::from_millis(2), 2);
                ctx.set_timer_after(SimDuration::from_millis(1), 1);
                ctx.set_timer_after(SimDuration::from_millis(3), 3);
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
                // Record order via a static-free trick: re-arm nothing,
                // assert monotone tokens using time.
                assert_eq!(ctx.now(), SimTime::from_millis(token));
            }
        }
        let mut net = Network::new(6);
        let a = net.add_host();
        net.attach_agent(a, Box::new(TimerAgent));
        assert_eq!(net.run(), RunOutcome::Drained);
        assert_eq!(net.events_processed(), 3);
    }

    #[test]
    fn stop_request_halts_run() {
        struct Stopper;
        impl Agent for Stopper {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer_after(SimDuration::from_millis(1), 0);
                ctx.set_timer_after(SimDuration::from_millis(10), 1);
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
                if token == 0 {
                    ctx.request_stop();
                }
            }
        }
        let mut net = Network::new(7);
        let a = net.add_host();
        net.attach_agent(a, Box::new(Stopper));
        assert_eq!(net.run(), RunOutcome::Stopped);
        assert_eq!(net.now(), SimTime::from_millis(1));
    }

    #[test]
    fn time_limit_is_respected() {
        let (mut net, a, b) = two_hosts_direct();
        net.attach_agent(a, Box::new(Echo::sending(b, 5)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        // Limit shorter than the 5 us propagation: nothing arrives.
        assert_eq!(
            net.run_until(SimTime::from_micros(1)),
            RunOutcome::TimeLimit
        );
        assert_eq!(net.agent::<Echo>(b).unwrap().received.len(), 0);
        // Resume to completion.
        assert_eq!(net.run(), RunOutcome::Drained);
        assert_eq!(net.agent::<Echo>(b).unwrap().received.len(), 5);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let a = net.add_host();
            let b = net.add_host();
            let ab = net.add_link(
                a,
                b,
                LinkSpec::droptail(Rate::from_gbps(1.0), SimDuration::from_micros(3), 10_000),
            );
            let ba = net.add_link(
                b,
                a,
                LinkSpec::droptail(Rate::from_gbps(1.0), SimDuration::from_micros(3), 10_000),
            );
            net.add_route(a, b, ab);
            net.add_route(b, a, ba);
            net.attach_agent(a, Box::new(Echo::sending(b, 50)));
            net.attach_agent(b, Box::new(Echo::new(a)));
            net.run();
            (net.now(), net.events_processed())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn flow_trace_records_deliveries() {
        let (mut net, a, b) = two_hosts_direct();
        net.enable_flow_trace(SimDuration::from_millis(1));
        net.attach_agent(a, Box::new(Echo::sending(b, 4)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        net.run();
        let trace = net.flow_trace().unwrap();
        assert_eq!(trace.total_bytes(FlowId::from_raw(0)), 4000);
    }

    #[test]
    fn recorder_sees_queue_activity_without_perturbing_the_run() {
        use std::cell::RefCell;
        use std::rc::Rc;

        // Reference run: no recorder.
        let (mut plain, a, b) = two_hosts_direct();
        plain.attach_agent(a, Box::new(Echo::sending(b, 5)));
        plain.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(plain.run(), RunOutcome::Drained);

        // Same run with a full recorder attached.
        let (mut net, a, b) = two_hosts_direct();
        let rec = Rc::new(RefCell::new(obs::ObsRecorder::with_config(64, 0)));
        net.set_recorder(rec.clone());
        net.attach_agent(a, Box::new(Echo::sending(b, 5)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);

        // Observation is free: identical event count and end time.
        assert_eq!(net.events_processed(), plain.events_processed());
        assert_eq!(net.now(), plain.now());

        drop(net);
        let report = Rc::try_unwrap(rec).unwrap().into_inner().finalize(0);
        // 5 data + 5 ack enqueues, each sampled at enqueue and dequeue.
        let depth = report
            .metrics
            .histogram("queue_depth_bytes", &obs::labels([("link", "l0".into())]))
            .expect("forward link sampled");
        assert!(depth.count() >= 10);
        assert!(report.perfetto_json().contains("queue_bytes"));
    }

    #[test]
    fn recorder_counts_injected_drops_separately() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (mut net, a, b) = two_hosts_direct();
        let rec = Rc::new(RefCell::new(obs::ObsRecorder::with_config(64, 0)));
        net.set_recorder(rec.clone());
        net.set_link_fault(
            LinkId::from_raw(0),
            crate::fault::FaultSpec::random_loss(1.0),
        )
        .expect("valid fault spec");
        net.attach_agent(a, Box::new(Echo::sending(b, 5)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);
        drop(net);
        let report = Rc::try_unwrap(rec).unwrap().into_inner().finalize(0);
        let mut labels = obs::labels([("link", "l0".into())]);
        labels.insert("injected", "yes".into());
        assert_eq!(
            report.metrics.counter("queue_drops_total", &labels),
            Some(5)
        );
    }

    #[test]
    fn injected_full_loss_drops_every_frame() {
        let (mut net, a, b) = two_hosts_direct();
        net.enable_packet_log(64);
        net.set_link_fault(
            LinkId::from_raw(0),
            crate::fault::FaultSpec::random_loss(1.0),
        )
        .expect("valid fault spec");
        net.attach_agent(a, Box::new(Echo::sending(b, 5)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);
        // All five frames serialized (the sender paid for them), none arrived.
        let stats = net.link_stats(LinkId::from_raw(0));
        assert_eq!(stats.tx_pkts, 5);
        assert_eq!(stats.injected_drops, 5);
        assert_eq!(net.agent::<Echo>(b).unwrap().received.len(), 0);
        // Injected losses never masquerade as congestive drops.
        assert_eq!(net.network_stats().dropped_pkts, 0);
        assert_eq!(net.network_stats().injected_drops, 5);
        assert_eq!(
            net.packet_log()
                .unwrap()
                .of_kind(PacketEventKind::InjectedDrop)
                .len(),
            5
        );
    }

    #[test]
    fn corrupted_frames_are_discarded_at_the_host() {
        let (mut net, a, b) = two_hosts_direct();
        net.enable_packet_log(64);
        let spec = crate::fault::FaultSpec::default().with_corruption(1.0);
        net.set_link_fault(LinkId::from_raw(0), spec)
            .expect("valid fault spec");
        net.attach_agent(a, Box::new(Echo::sending(b, 4)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);
        // Frames traverse the wire (and are counted) but the agent never
        // sees them and no acks come back.
        assert_eq!(net.link_stats(LinkId::from_raw(0)).injected_corrupts, 4);
        assert_eq!(net.agent::<Echo>(b).unwrap().received.len(), 0);
        assert_eq!(net.agent::<Echo>(a).unwrap().acks_received, 0);
        assert_eq!(
            net.packet_log()
                .unwrap()
                .of_kind(PacketEventKind::CorruptDiscard)
                .len(),
            4
        );
    }

    #[test]
    fn duplicated_frames_arrive_twice() {
        let (mut net, a, b) = two_hosts_direct();
        let spec = crate::fault::FaultSpec::default().with_duplication(1.0);
        net.set_link_fault(LinkId::from_raw(0), spec)
            .expect("valid fault spec");
        net.attach_agent(a, Box::new(Echo::sending(b, 3)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);
        assert_eq!(net.agent::<Echo>(b).unwrap().received.len(), 6);
        assert_eq!(net.link_stats(LinkId::from_raw(0)).injected_dups, 3);
    }

    #[test]
    fn flap_loses_frames_only_during_the_outage() {
        let (mut net, a, b) = two_hosts_direct();
        // Outage covers the whole run: everything sent at t=0 is lost.
        let spec =
            crate::fault::FaultSpec::default().with_flap(SimTime::ZERO, SimTime::from_secs(1));
        net.set_link_fault(LinkId::from_raw(0), spec)
            .expect("valid fault spec");
        net.attach_agent(a, Box::new(Echo::sending(b, 4)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        net.run();
        assert_eq!(net.agent::<Echo>(b).unwrap().received.len(), 0);
        assert_eq!(net.link_stats(LinkId::from_raw(0)).injected_drops, 4);
        // Clearing the fault restores the clean wire for a resumed run.
        net.clear_link_fault(LinkId::from_raw(0));
        assert!(net.link_fault(LinkId::from_raw(0)).is_none());
    }

    #[test]
    fn faulted_runs_replay_identically() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let a = net.add_host();
            let b = net.add_host();
            let ab = net.add_link(
                a,
                b,
                LinkSpec::droptail(Rate::from_gbps(1.0), SimDuration::from_micros(3), 100_000),
            );
            let ba = net.add_link(
                b,
                a,
                LinkSpec::droptail(Rate::from_gbps(1.0), SimDuration::from_micros(3), 100_000),
            );
            net.add_route(a, b, ab);
            net.add_route(b, a, ba);
            let spec = crate::fault::FaultSpec::random_loss(0.2)
                .with_duplication(0.1)
                .with_jitter(SimDuration::from_micros(2));
            net.set_link_fault(ab, spec).expect("valid fault spec");
            net.attach_agent(a, Box::new(Echo::sending(b, 60)));
            net.attach_agent(b, Box::new(Echo::new(a)));
            net.run();
            let s = net.link_stats(ab);
            (
                net.now(),
                net.events_processed(),
                s.injected_drops,
                s.injected_dups,
                net.agent::<Echo>(b).unwrap().received.len(),
            )
        };
        let first = run(11);
        assert_eq!(first, run(11));
        assert!(first.2 > 0, "0.2 loss over 60 frames should drop some");
        assert_ne!(first, run(12));
    }

    #[test]
    fn installing_a_noop_fault_changes_nothing() {
        // The fault stream is independent of the engine RNG, so a no-op
        // spec must leave the run bit-identical to a fault-free one.
        let run = |fault: bool| {
            let (mut net, a, b) = two_hosts_direct();
            if fault {
                net.set_link_fault(LinkId::from_raw(0), crate::fault::FaultSpec::default())
                    .expect("valid fault spec");
            }
            net.attach_agent(a, Box::new(Echo::sending(b, 20)));
            net.attach_agent(b, Box::new(Echo::new(a)));
            net.run();
            (net.now(), net.events_processed())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stall_watchdog_trips_on_livelock() {
        // A timer agent that re-arms itself forever and never receives a
        // packet: pure event churn with zero progress.
        struct Spinner;
        impl Agent for Spinner {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer_after(SimDuration::from_nanos(1), 0);
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
                ctx.set_timer_after(SimDuration::from_nanos(1), 0);
            }
        }
        let mut net = Network::new(8);
        let a = net.add_host();
        net.attach_agent(a, Box::new(Spinner));
        net.set_stall_budget(Some(1_000));
        assert_eq!(net.run(), RunOutcome::Stalled);
        assert!(net.events_processed() <= 1_100);
    }

    #[test]
    fn stall_watchdog_stays_quiet_while_packets_deliver() {
        let (mut net, a, b) = two_hosts_direct();
        net.set_stall_budget(Some(50));
        net.attach_agent(a, Box::new(Echo::sending(b, 100)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        // 100 data + 100 acks deliver steadily; the budget never trips.
        assert_eq!(net.run(), RunOutcome::Drained);
        assert_eq!(net.agent::<Echo>(b).unwrap().received.len(), 100);
    }

    #[test]
    fn conservation_counters_balance_on_a_clean_run() {
        let (mut net, a, b) = two_hosts_direct();
        net.attach_agent(a, Box::new(Echo::sending(b, 25)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);
        let s = net.network_stats();
        // 25 data + 25 acks, all delivered.
        assert_eq!(s.originated_pkts, 50);
        assert_eq!(s.delivered_pkts, 50);
        assert_eq!(s.corrupt_discards, 0);
        assert_eq!(s.conservation_residual(), 0);
    }

    #[test]
    fn conservation_counters_balance_under_faults() {
        let (mut net, a, b) = two_hosts_direct();
        let spec = crate::fault::FaultSpec::random_loss(0.3)
            .with_corruption(0.2)
            .with_duplication(0.2);
        net.set_link_fault(LinkId::from_raw(0), spec)
            .expect("valid fault spec");
        net.attach_agent(a, Box::new(Echo::sending(b, 200)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);
        let s = net.network_stats();
        assert!(s.injected_drops > 0 && s.injected_corrupts > 0 && s.injected_dups > 0);
        assert!(s.corrupt_discards > 0);
        assert_eq!(
            s.conservation_residual(),
            0,
            "at quiescence every frame fate must be accounted: {s:?}"
        );
    }

    #[test]
    fn conservation_counters_balance_with_queue_drops() {
        let mut net = Network::new(9);
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(
            a,
            b,
            LinkSpec::droptail(Rate::from_mbps(1.0), SimDuration::from_micros(1), 2_500),
        );
        let ba = net.add_link(
            b,
            a,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(1),
                1_000_000,
            ),
        );
        net.add_route(a, b, ab);
        net.add_route(b, a, ba);
        net.attach_agent(a, Box::new(Echo::sending(b, 10)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);
        let s = net.network_stats();
        assert!(s.dropped_pkts > 0, "tiny buffer must overflow");
        assert_eq!(s.conservation_residual(), 0, "{s:?}");
    }

    /// Fires `remaining` back-to-back timer events — a cheap way to push
    /// the event counter past the deadline-check period.
    struct Ticker {
        remaining: u64,
    }
    impl Agent for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(SimDuration::from_nanos(1), 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.set_timer_after(SimDuration::from_nanos(1), 0);
            }
        }
    }

    #[test]
    fn expired_wall_deadline_aborts_a_long_run() {
        let mut net = Network::new(10);
        let a = net.add_host();
        // Plenty of events (> one deadline-check period) and a deadline
        // already in the past: the loop must bail at its first check.
        net.attach_agent(
            a,
            Box::new(Ticker {
                remaining: 10 * (DEADLINE_CHECK_MASK + 1),
            }),
        );
        net.set_wall_deadline(Some(
            std::time::Instant::now() - std::time::Duration::from_secs(1),
        ));
        assert_eq!(net.run(), RunOutcome::DeadlineExceeded);
        assert_eq!(net.events_processed(), DEADLINE_CHECK_MASK + 1);
    }

    #[test]
    fn generous_wall_deadline_leaves_the_run_alone() {
        let mut net = Network::new(11);
        let a = net.add_host();
        net.attach_agent(
            a,
            Box::new(Ticker {
                remaining: 2 * (DEADLINE_CHECK_MASK + 1),
            }),
        );
        net.set_wall_deadline(Some(
            std::time::Instant::now() + std::time::Duration::from_secs(600),
        ));
        assert_eq!(net.run(), RunOutcome::Drained);
    }

    /// Bonded links deliver back-to-back same-timestamp arrivals — the
    /// shape delivery batching coalesces.
    fn bonded_pair(seed: u64, count: u32, batching: bool) -> Network {
        let mut net = Network::new(seed);
        net.set_delivery_batching(batching);
        let a = net.add_host();
        let b = net.add_host();
        let spec = || {
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(1),
                1_000_000,
            )
        };
        let l1 = net.add_link(a, b, spec());
        let l2 = net.add_link(a, b, spec());
        let back = net.add_link(b, a, spec());
        net.add_route(a, b, l1);
        net.add_route(a, b, l2);
        net.add_route(b, a, back);
        net.attach_agent(a, Box::new(Echo::sending(b, count)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        net.run();
        net
    }

    #[test]
    fn batched_delivery_is_bit_identical_to_per_packet() {
        let batched = bonded_pair(21, 40, true);
        let plain = bonded_pair(21, 40, false);
        assert_eq!(batched.now(), plain.now());
        assert_eq!(batched.events_processed(), plain.events_processed());
        let (sb, sp) = (batched.network_stats(), plain.network_stats());
        assert_eq!(sb.delivered_pkts, sp.delivered_pkts);
        assert_eq!(sb.originated_pkts, sp.originated_pkts);
        let (rb, rp) = (
            batched.agent::<Echo>(NodeId::from_raw(1)).unwrap(),
            plain.agent::<Echo>(NodeId::from_raw(1)).unwrap(),
        );
        assert_eq!(rb.received.len(), rp.received.len());
        for (x, y) in rb.received.iter().zip(rp.received.iter()) {
            assert_eq!(x.seq, y.seq, "delivery order must not change");
        }
        // And batching actually happened: bonded links land pairs at the
        // same instant, so dispatches < packets.
        let c = batched.counters();
        assert!(
            c.dispatch_batches < c.batched_pkts,
            "expected coalescing: {} dispatches for {} pkts",
            c.dispatch_batches,
            c.batched_pkts
        );
        let p = plain.counters();
        assert_eq!(p.dispatch_batches, p.batched_pkts, "unbatched mode is 1:1");
    }

    #[test]
    fn agent_panic_leaves_the_slot_intact() {
        struct Bomb {
            fuse: u32,
            handled: u32,
        }
        impl Agent for Bomb {
            fn on_packet(&mut self, _pkt: Packet, ctx: &mut Ctx<'_>) {
                self.handled += 1;
                if self.handled >= self.fuse {
                    // Issue a command first so the panic leaves the
                    // buffer dirty — the next dispatch must discard it.
                    ctx.set_timer_after(SimDuration::from_micros(1), 99);
                    panic!("boom");
                }
            }
            fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
        }
        let (mut net, a, b) = two_hosts_direct();
        net.attach_agent(a, Box::new(Echo::sending(b, 3)));
        net.attach_agent(
            b,
            Box::new(Bomb {
                fuse: 2,
                handled: 0,
            }),
        );
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| net.run()));
        assert!(err.is_err(), "the bomb must go off");
        // The panic unwound out of with_agent mid-dispatch; both agents
        // are still attached and inspectable (the matrix runner relies
        // on this to report per-cell panic context).
        let bomb = net.agent::<Bomb>(b).expect("slot must not be poisoned");
        assert_eq!(bomb.handled, 2);
        assert!(net.agent::<Echo>(a).is_some());
        // And the network still runs: remaining queued events dispatch
        // into the (re-armed) agent without tripping over stale state.
        net.agent_mut::<Bomb>(b).unwrap().fuse = u32::MAX;
        net.run();
        assert_eq!(net.agent::<Bomb>(b).unwrap().handled, 3);
    }

    #[test]
    fn detach_agent_frees_and_reuses_the_slot() {
        let (mut net, a, b) = two_hosts_direct();
        net.attach_agent(a, Box::new(Echo::sending(b, 1)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        let taken = net.detach_agent(b).expect("agent was attached");
        assert!((taken.as_ref() as &dyn Any)
            .downcast_ref::<Echo>()
            .is_some());
        assert!(net.agent::<Echo>(b).is_none());
        assert!(net.detach_agent(b).is_none(), "second detach is None");
        // Reattach into the freed slot and run normally.
        net.attach_agent(b, Box::new(Echo::new(a)));
        assert_eq!(net.run(), RunOutcome::Drained);
        assert_eq!(net.agent::<Echo>(b).unwrap().received.len(), 1);
    }

    #[test]
    fn activity_records_host_work() {
        let (mut net, a, b) = two_hosts_direct();
        net.enable_activity(SimDuration::from_millis(1));
        net.attach_agent(a, Box::new(Echo::sending(b, 4)));
        net.attach_agent(b, Box::new(Echo::new(a)));
        net.run();
        let act = net.activity().unwrap();
        let a_tot = act.totals(a);
        assert_eq!(a_tot.tx_pkts, 4);
        assert_eq!(a_tot.acks_rx, 4);
        let b_tot = act.totals(b);
        assert_eq!(b_tot.rx_pkts, 4);
        assert_eq!(b_tot.tx_pkts, 4); // the acks
    }
}
