//! Typed identifiers for simulation objects.
//!
//! Using newtypes (rather than bare integers) prevents a node index from
//! being passed where a link index is expected — a classic simulator bug
//! class the compiler can eliminate for free.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Construct from a raw index. Exposed for tests and for
            /// compact storage in downstream tables.
            #[inline]
            pub const fn from_raw(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw index backing this id.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

id_type!(
    /// Identifies a node (host or switch) in the simulated network.
    NodeId,
    "n"
);
id_type!(
    /// Identifies a unidirectional link in the simulated network.
    LinkId,
    "l"
);
id_type!(
    /// Identifies a transport flow (one direction of a connection).
    FlowId,
    "f"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_format() {
        let n = NodeId::from_raw(3);
        assert_eq!(n.index(), 3);
        assert_eq!(format!("{n}"), "n3");
        let l = LinkId::from_raw(1);
        assert_eq!(format!("{l:?}"), "l1");
        let f = FlowId::from_raw(9);
        assert_eq!(format!("{f}"), "f9");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
        assert_eq!(FlowId::from_raw(4), FlowId::from_raw(4));
    }
}
