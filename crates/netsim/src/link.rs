//! Unidirectional links.
//!
//! A link ([`LinkSpec`] + engine-internal state) connects a source node
//! to a destination node and models the
//! two delays that matter for congestion control: *serialization* (packet
//! size over link rate) and *propagation* (constant). Packets waiting for
//! the transmitter sit in the link's queue discipline.
//!
//! Links can also model a host-side packet-processing ceiling via
//! `min_pkt_gap`: the transmitter will not start packets closer together
//! than this gap even if serialization is faster. This reproduces the
//! paper's observation that small MTUs cannot reach 10 Gb/s line rate —
//! the per-packet CPU/interrupt cost, not the wire, becomes the bottleneck.

use crate::fault::FaultState;
use crate::ids::NodeId;
use crate::packet::Packet;
use crate::pool::FrameRef;
use crate::queue::{DropTailQueue, Qdisc};
use crate::time::{SimDuration, SimTime};
use crate::units::Rate;

/// Configuration for one unidirectional link.
pub struct LinkSpec {
    /// Wire rate.
    pub rate: Rate,
    /// Propagation delay (distance / signal speed).
    pub prop_delay: SimDuration,
    /// Egress buffer discipline.
    pub qdisc: Box<dyn Qdisc>,
    /// Minimum spacing between packet transmissions; `ZERO` disables the
    /// processing cap. See the module docs.
    pub min_pkt_gap: SimDuration,
}

impl LinkSpec {
    /// A link with a plain drop-tail buffer and no processing cap.
    pub fn droptail(rate: Rate, prop_delay: SimDuration, buffer_bytes: u64) -> Self {
        LinkSpec {
            rate,
            prop_delay,
            qdisc: Box::new(DropTailQueue::new(buffer_bytes)),
            min_pkt_gap: SimDuration::ZERO,
        }
    }

    /// Add a per-packet processing gap (a pps ceiling of `1/gap`).
    pub fn with_min_pkt_gap(mut self, gap: SimDuration) -> Self {
        self.min_pkt_gap = gap;
        self
    }
}

/// Lifetime transmit counters for a link.
///
/// The `injected_*` counters attribute losses to the fault layer
/// ([`crate::fault::FaultSpec`]); congestive drops never appear here —
/// they are counted at the queue ([`crate::queue::QueueStats`]) before
/// the frame ever reaches the wire, so the two tallies are disjoint.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Packets fully serialized onto the wire.
    pub tx_pkts: u64,
    /// Wire bytes fully serialized.
    pub tx_bytes: u64,
    /// Cumulative time the transmitter spent busy.
    pub busy_time: SimDuration,
    /// Frames lost to injected faults (random drops + outages).
    pub injected_drops: u64,
    /// Frames bit-corrupted by injected faults.
    pub injected_corrupts: u64,
    /// Frames duplicated by injected faults.
    pub injected_dups: u64,
    /// Frames held back for reordering by injected faults.
    pub injected_reorders: u64,
}

impl LinkStats {
    /// Fraction of `elapsed` the transmitter was busy.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.busy_time.as_secs_f64() / elapsed.as_secs_f64()
    }
}

/// Runtime state of a link inside the engine.
pub(crate) struct LinkState {
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) rate: Rate,
    pub(crate) prop_delay: SimDuration,
    pub(crate) qdisc: Box<dyn Qdisc>,
    pub(crate) min_pkt_gap: SimDuration,
    /// Frame currently being serialized, if any (a ref into the
    /// engine's frame pool).
    pub(crate) in_flight: Option<FrameRef>,
    /// When the current serialization began (valid while `in_flight`).
    pub(crate) tx_started: SimTime,
    /// EWMA of recent utilization (busy fraction between transmission
    /// starts), exported through in-band telemetry.
    pub(crate) util_ewma: f64,
    /// Start of the previous transmission, for the utilization estimate.
    pub(crate) prev_tx_started: Option<SimTime>,
    /// Fault injection state, if a [`crate::fault::FaultSpec`] is
    /// installed. `None` keeps the fault-free hot path to one branch.
    pub(crate) fault: Option<FaultState>,
    pub(crate) stats: LinkStats,
    /// The link rate in whole Mb/s, for in-band telemetry stamps.
    /// Constant per link, so computed once instead of per data frame.
    pub(crate) mbps: u32,
    /// One-slot serialization-time memo: a link carries nearly uniform
    /// frame sizes (full segments one way, acks the other), so the
    /// float division in [`Rate::serialization_time`] is paid only when
    /// the size actually changes. Same inputs, same function — the
    /// cached result is bit-identical to recomputing.
    ser_memo: (u64, SimDuration),
}

impl LinkState {
    pub(crate) fn new(src: NodeId, dst: NodeId, spec: LinkSpec) -> Self {
        LinkState {
            src,
            dst,
            rate: spec.rate,
            prop_delay: spec.prop_delay,
            qdisc: spec.qdisc,
            min_pkt_gap: spec.min_pkt_gap,
            in_flight: None,
            tx_started: SimTime::ZERO,
            util_ewma: 0.0,
            prev_tx_started: None,
            fault: None,
            stats: LinkStats::default(),
            mbps: (spec.rate.bps() / 1e6).round().max(1.0) as u32,
            ser_memo: (u64::MAX, SimDuration::ZERO),
        }
    }

    /// Update the utilization EWMA for a transmission starting at `now`
    /// that will occupy the transmitter for `occupancy`.
    pub(crate) fn update_util(&mut self, now: SimTime, occupancy: crate::time::SimDuration) {
        if let Some(prev) = self.prev_tx_started {
            let gap = now.saturating_since(prev).as_secs_f64();
            if gap > 0.0 {
                let inst = (occupancy.as_secs_f64() / gap).min(1.0);
                self.util_ewma = 0.875 * self.util_ewma + 0.125 * inst;
            }
        } else {
            self.util_ewma = 1.0; // first packet: transmitter fully busy
        }
        self.prev_tx_started = Some(now);
    }

    /// Time the transmitter occupies for `pkt`: serialization, but never
    /// less than the processing gap.
    pub(crate) fn occupancy_time(&mut self, pkt: &Packet) -> SimDuration {
        let bytes = pkt.wire_bytes as u64;
        if self.ser_memo.0 != bytes {
            self.ser_memo = (bytes, self.rate.serialization_time(bytes));
        }
        self.ser_memo.1.max(self.min_pkt_gap)
    }

    pub(crate) fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }
}
