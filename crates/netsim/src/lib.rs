//! # netsim — deterministic packet-level network simulation
//!
//! A small, fast discrete-event simulator purpose-built for transport and
//! energy experiments: integer-nanosecond clock, deterministic event
//! ordering, links with serialization/propagation delays and pluggable
//! queue disciplines (drop-tail, DCTCP step marking, RED), switches with
//! static routing, link bonding with round-robin spraying, and built-in
//! per-flow and per-host measurement instrumentation.
//!
//! ## Quick tour
//!
//! ```
//! use netsim::prelude::*;
//!
//! let mut net = Network::new(42);
//! let cfg = DumbbellConfig::default();           // the paper's testbed
//! let dumbbell = Dumbbell::build(&mut net, &cfg);
//! net.enable_flow_trace(SimDuration::from_millis(10));
//! // ... attach transport agents to dumbbell.senders / dumbbell.receiver,
//! // then:
//! net.run();
//! ```
//!
//! Hosts run [`agent::Agent`] implementations; the `transport` crate
//! provides TCP-like senders and receivers on top of this interface.

#![warn(missing_docs)]

pub mod agent;
pub mod engine;
pub mod fault;
pub mod flowtab;
pub mod ids;
pub mod link;
pub mod packet;
pub mod pktlog;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod time;
pub mod topology;
pub mod trace;
pub mod units;

/// The commonly-used names, re-exported in one place.
pub mod prelude {
    pub use crate::agent::{Agent, Ctx, TOKEN_BITS, TOKEN_MASK};
    pub use crate::engine::{EngineCounters, Network, NetworkStats, RunOutcome};
    pub use crate::fault::{FaultSpec, FaultSpecError, LinkFlap};
    pub use crate::flowtab::{DenseIndex, FlowKey, FlowTable};
    pub use crate::ids::{FlowId, LinkId, NodeId};
    pub use crate::link::{LinkSpec, LinkStats};
    pub use crate::packet::{
        AckInfo, EcnCodepoint, IntRecord, Packet, PacketKind, SackBlocks, HEADER_BYTES,
    };
    pub use crate::pktlog::{PacketEvent, PacketEventKind, PacketLog};
    pub use crate::pool::{FramePool, FrameRef};
    pub use crate::queue::{
        DropTailQueue, EcnThresholdQueue, EnqueueOutcome, Qdisc, QueueStats, RedQueue,
    };
    pub use crate::rng::SimRng;
    pub use crate::sched::{SchedStats, Scheduler};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{
        BottleneckQueue, Dumbbell, DumbbellConfig, Incast, IncastConfig, ParkingLot,
        ParkingLotConfig,
    };
    pub use crate::trace::{ActivityBin, ActivityTotals, FlowTrace, HostActivity};
    pub use crate::units::{average_rate, Rate, GB, KB, MB};
}
