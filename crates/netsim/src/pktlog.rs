//! Packet-level event logging — the simulator's `tcpdump`.
//!
//! When enabled, the engine records every drop, mark, and host delivery
//! into a bounded ring buffer. Intended for debugging transport behaviour
//! ("why did this flow stall at t = 1.2 s?") without wading through
//! millions of events: filter by flow, kind, or time range after the run.

use crate::ids::{FlowId, LinkId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;

/// What happened to a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketEventKind {
    /// Dropped at a link's queue (congestive loss).
    Dropped,
    /// CE-marked at a link's queue.
    Marked,
    /// Delivered to its destination host.
    Delivered,
    /// Lost on the wire by the fault layer (random drop or outage).
    InjectedDrop,
    /// Arrived bit-corrupted and was discarded by the host's FCS check.
    CorruptDiscard,
}

/// One logged packet event.
#[derive(Clone, Copy, Debug)]
pub struct PacketEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: PacketEventKind,
    /// The flow involved.
    pub flow: FlowId,
    /// Sequence number (data) — 0 for acks.
    pub seq: u64,
    /// True for data segments, false for acks.
    pub is_data: bool,
    /// True if the packet was a retransmission.
    pub is_retx: bool,
    /// The link where it happened (`None` for host deliveries).
    pub link: Option<LinkId>,
    /// The receiving host (`None` for queue events).
    pub host: Option<NodeId>,
}

/// A bounded ring buffer of packet events.
///
/// The buffer is a flat `Vec` that fills once and then wraps: recording
/// an event on the engine's hot path is a slot overwrite, never an
/// allocation or a shift.
#[derive(Debug)]
pub struct PacketLog {
    buf: Vec<PacketEvent>,
    capacity: usize,
    /// Index of the oldest retained event once the buffer has wrapped.
    head: usize,
    /// Events seen in total (including evicted ones).
    seen: u64,
    /// Events evicted because the ring was full. Kept as its own
    /// counter (not derived) so the overflow is an explicit, queryable
    /// fact — a wrapped log is easy to misread as a complete one.
    overflowed: u64,
}

/// Ring capacity used when the caller doesn't pick one.
pub const DEFAULT_CAPACITY: usize = 65_536;

impl PacketLog {
    /// A log keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        PacketLog {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            seen: 0,
            overflowed: 0,
        }
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn record(
        &mut self,
        at: SimTime,
        kind: PacketEventKind,
        pkt: &Packet,
        link: Option<LinkId>,
        host: Option<NodeId>,
    ) {
        self.seen += 1;
        let event = PacketEvent {
            at,
            kind,
            flow: pkt.flow,
            seq: pkt.seq,
            is_data: pkt.is_data(),
            is_retx: pkt.is_retx,
            link,
            host,
        };
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.overflowed += 1;
            self.buf[self.head] = event;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &PacketEvent> {
        let (tail, front) = self.buf.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Retained events for one flow.
    pub fn for_flow(&self, flow: FlowId) -> Vec<&PacketEvent> {
        self.events().filter(|e| e.flow == flow).collect()
    }

    /// Retained events of one kind.
    pub fn of_kind(&self, kind: PacketEventKind) -> Vec<&PacketEvent> {
        self.events().filter(|e| e.kind == kind).collect()
    }

    /// Retained events inside `[from, to)`.
    pub fn between(&self, from: SimTime, to: SimTime) -> Vec<&PacketEvent> {
        self.events()
            .filter(|e| e.at >= from && e.at < to)
            .collect()
    }

    /// Total events observed (retained + evicted).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Events dropped from the ring because it was full. Non-zero means
    /// [`PacketLog::events`] is a suffix of the run, not the whole run —
    /// size the ring up (or filter earlier) if that matters.
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Render retained events as a tcpdump-style text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!(
                "{} {:9} {} seq={}{}{}{}\n",
                e.at,
                format!("{:?}", e.kind).to_lowercase(),
                e.flow,
                e.seq,
                if e.is_data { " data" } else { " ack" },
                if e.is_retx { " retx" } else { "" },
                match (e.link, e.host) {
                    (Some(l), _) => format!(" @{l}"),
                    (_, Some(h)) => format!(" @{h}"),
                    _ => String::new(),
                },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::EcnCodepoint;

    fn pkt(flow: u32, seq: u64) -> Packet {
        Packet::data(
            FlowId::from_raw(flow),
            NodeId::from_raw(0),
            NodeId::from_raw(1),
            seq,
            1000,
            EcnCodepoint::NotEct,
        )
    }

    #[test]
    fn records_and_filters() {
        let mut log = PacketLog::new(16);
        log.record(
            SimTime::from_micros(1),
            PacketEventKind::Dropped,
            &pkt(1, 100),
            Some(LinkId::from_raw(0)),
            None,
        );
        log.record(
            SimTime::from_micros(2),
            PacketEventKind::Delivered,
            &pkt(2, 200),
            None,
            Some(NodeId::from_raw(1)),
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.for_flow(FlowId::from_raw(1)).len(), 1);
        assert_eq!(log.of_kind(PacketEventKind::Dropped).len(), 1);
        assert_eq!(
            log.between(SimTime::from_micros(2), SimTime::from_micros(3))
                .len(),
            1
        );
        assert_eq!(log.total_seen(), 2);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = PacketLog::new(3);
        for i in 0..5 {
            log.record(
                SimTime::from_micros(i),
                PacketEventKind::Delivered,
                &pkt(0, i * 1000),
                None,
                None,
            );
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_seen(), 5);
        assert_eq!(log.overflowed(), 2, "evictions must be explicit");
        assert_eq!(log.capacity(), 3);
        let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2000, 3000, 4000]);
    }

    #[test]
    fn overflow_counter_stays_zero_until_full() {
        let mut log = PacketLog::new(8);
        for i in 0..8 {
            log.record(
                SimTime::from_micros(i),
                PacketEventKind::Delivered,
                &pkt(0, i),
                None,
                None,
            );
        }
        assert_eq!(log.overflowed(), 0);
        log.record(
            SimTime::from_micros(9),
            PacketEventKind::Delivered,
            &pkt(0, 9),
            None,
            None,
        );
        assert_eq!(log.overflowed(), 1);
    }

    #[test]
    fn render_is_greppable() {
        let mut log = PacketLog::new(4);
        let mut p = pkt(3, 500);
        p.is_retx = true;
        log.record(
            SimTime::from_micros(7),
            PacketEventKind::Dropped,
            &p,
            Some(LinkId::from_raw(2)),
            None,
        );
        let text = log.render();
        assert!(text.contains("dropped"));
        assert!(text.contains("f3"));
        assert!(text.contains("retx"));
        assert!(text.contains("@l2"));
    }
}
