//! Queue disciplines for link egress buffers.
//!
//! Three disciplines cover everything the paper's testbed exercises:
//!
//! * [`DropTailQueue`] — a FIFO with a byte capacity; the Tofino switch in
//!   the paper runs plain tail-drop for the loss-based CCAs.
//! * [`EcnThresholdQueue`] — tail-drop plus DCTCP-style *step marking*:
//!   ECN-capable packets are CE-marked when the instantaneous queue exceeds
//!   a threshold K (Alizadeh et al., SIGCOMM '10).
//! * [`RedQueue`] — classic Random Early Detection with an EWMA of queue
//!   length, provided for completeness and ablation benchmarks.

use crate::pool::{FramePool, FrameRef};
use crate::rng::SimRng;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Outcome of offering a packet to a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Packet accepted as-is.
    Enqueued,
    /// Packet accepted and CE-marked by the discipline.
    EnqueuedMarked,
    /// Packet dropped (buffer overflow or early drop).
    Dropped,
}

/// Counters every discipline maintains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued_pkts: u64,
    /// Packets dropped at enqueue.
    pub dropped_pkts: u64,
    /// Bytes dropped at enqueue.
    pub dropped_bytes: u64,
    /// Packets CE-marked at enqueue.
    pub marked_pkts: u64,
    /// High-water mark of queue occupancy in bytes.
    pub max_bytes: u64,
}

/// A queue discipline: decides admission/marking and stores frames in
/// FIFO order until the link can serialize them.
///
/// Frames live in the engine's [`FramePool`]; the discipline stores the
/// 4-byte [`FrameRef`] plus a cached wire size, never the 168-byte
/// packet. CE marking mutates the pooled frame in place.
pub trait Qdisc: Send {
    /// Offer a frame. On `Dropped` the ref is NOT stored — the caller
    /// keeps ownership (to log the drop, then release the slot);
    /// otherwise it is stored, possibly CE-marked in the pool.
    fn enqueue(&mut self, frame: FrameRef, pool: &mut FramePool, now: SimTime) -> EnqueueOutcome;

    /// Remove the next frame to transmit, if any. Ownership of the ref
    /// passes back to the caller.
    fn dequeue(&mut self, now: SimTime) -> Option<FrameRef>;

    /// Current occupancy in bytes.
    fn len_bytes(&self) -> u64;

    /// Current occupancy in packets.
    fn len_pkts(&self) -> usize;

    /// Lifetime counters.
    fn stats(&self) -> QueueStats;

    /// Human-readable discipline name, for traces and reports.
    fn name(&self) -> &'static str;
}

/// Shared FIFO storage used by all disciplines: frame refs plus the
/// cached wire size, so occupancy accounting never dereferences the pool.
#[derive(Debug, Default)]
struct Fifo {
    queue: VecDeque<(FrameRef, u32)>,
    bytes: u64,
    stats: QueueStats,
}

impl Fifo {
    fn push(&mut self, frame: FrameRef, wire_bytes: u32) {
        self.bytes += wire_bytes as u64;
        self.stats.enqueued_pkts += 1;
        self.stats.max_bytes = self.stats.max_bytes.max(self.bytes);
        self.queue.push_back((frame, wire_bytes));
    }

    fn pop(&mut self) -> Option<FrameRef> {
        let (frame, wire_bytes) = self.queue.pop_front()?;
        self.bytes -= wire_bytes as u64;
        Some(frame)
    }

    fn drop_pkt(&mut self, wire_bytes: u32) {
        self.stats.dropped_pkts += 1;
        self.stats.dropped_bytes += wire_bytes as u64;
    }
}

/// Plain tail-drop FIFO with a byte capacity.
#[derive(Debug)]
pub struct DropTailQueue {
    fifo: Fifo,
    capacity_bytes: u64,
}

impl DropTailQueue {
    /// A FIFO that accepts packets while occupancy + packet fits within
    /// `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        DropTailQueue {
            fifo: Fifo::default(),
            capacity_bytes,
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }
}

impl Qdisc for DropTailQueue {
    fn enqueue(&mut self, frame: FrameRef, pool: &mut FramePool, _now: SimTime) -> EnqueueOutcome {
        let wire_bytes = pool.get(frame).wire_bytes;
        if self.fifo.bytes + wire_bytes as u64 > self.capacity_bytes {
            self.fifo.drop_pkt(wire_bytes);
            return EnqueueOutcome::Dropped;
        }
        self.fifo.push(frame, wire_bytes);
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<FrameRef> {
        self.fifo.pop()
    }

    fn len_bytes(&self) -> u64 {
        self.fifo.bytes
    }

    fn len_pkts(&self) -> usize {
        self.fifo.queue.len()
    }

    fn stats(&self) -> QueueStats {
        self.fifo.stats
    }

    fn name(&self) -> &'static str {
        "droptail"
    }
}

/// Tail-drop FIFO with DCTCP-style instantaneous step marking.
///
/// ECN-capable packets are CE-marked when the queue (including the arriving
/// packet) exceeds `mark_threshold_bytes`. Non-capable packets are only
/// dropped on overflow, like [`DropTailQueue`].
#[derive(Debug)]
pub struct EcnThresholdQueue {
    fifo: Fifo,
    capacity_bytes: u64,
    mark_threshold_bytes: u64,
}

impl EcnThresholdQueue {
    /// Create a marking FIFO. `mark_threshold_bytes` is DCTCP's K.
    pub fn new(capacity_bytes: u64, mark_threshold_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        assert!(
            mark_threshold_bytes <= capacity_bytes,
            "marking threshold cannot exceed capacity"
        );
        EcnThresholdQueue {
            fifo: Fifo::default(),
            capacity_bytes,
            mark_threshold_bytes,
        }
    }

    /// The marking threshold K in bytes.
    pub fn mark_threshold_bytes(&self) -> u64 {
        self.mark_threshold_bytes
    }
}

impl Qdisc for EcnThresholdQueue {
    fn enqueue(&mut self, frame: FrameRef, pool: &mut FramePool, _now: SimTime) -> EnqueueOutcome {
        let pkt = pool.get(frame);
        let wire_bytes = pkt.wire_bytes;
        let capable = pkt.ecn.is_capable();
        let occupancy_after = self.fifo.bytes + wire_bytes as u64;
        if occupancy_after > self.capacity_bytes {
            self.fifo.drop_pkt(wire_bytes);
            return EnqueueOutcome::Dropped;
        }
        if capable && occupancy_after > self.mark_threshold_bytes {
            pool.get_mut(frame).ecn = crate::packet::EcnCodepoint::Ce;
            self.fifo.stats.marked_pkts += 1;
            self.fifo.push(frame, wire_bytes);
            return EnqueueOutcome::EnqueuedMarked;
        }
        self.fifo.push(frame, wire_bytes);
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<FrameRef> {
        self.fifo.pop()
    }

    fn len_bytes(&self) -> u64 {
        self.fifo.bytes
    }

    fn len_pkts(&self) -> usize {
        self.fifo.queue.len()
    }

    fn stats(&self) -> QueueStats {
        self.fifo.stats
    }

    fn name(&self) -> &'static str {
        "ecn-threshold"
    }
}

/// Classic Random Early Detection (Floyd & Jacobson 1993).
///
/// Maintains an EWMA of the queue length; between `min_th` and `max_th`
/// packets are dropped (or CE-marked if ECN-capable) with probability
/// rising linearly to `max_p`; above `max_th` everything is dropped/marked.
#[derive(Debug)]
pub struct RedQueue {
    fifo: Fifo,
    capacity_bytes: u64,
    min_th_bytes: f64,
    max_th_bytes: f64,
    max_p: f64,
    /// EWMA weight for the average queue size.
    weight: f64,
    avg_bytes: f64,
    rng: SimRng,
    /// Packets since last drop/mark, for the uniform-spacing correction.
    count: i64,
}

impl RedQueue {
    /// Create a RED queue. `max_p` is the drop probability at `max_th`.
    pub fn new(
        capacity_bytes: u64,
        min_th_bytes: u64,
        max_th_bytes: u64,
        max_p: f64,
        seed: u64,
    ) -> Self {
        assert!(capacity_bytes > 0);
        assert!(min_th_bytes < max_th_bytes);
        assert!(max_th_bytes <= capacity_bytes);
        assert!((0.0..=1.0).contains(&max_p));
        RedQueue {
            fifo: Fifo::default(),
            capacity_bytes,
            min_th_bytes: min_th_bytes as f64,
            max_th_bytes: max_th_bytes as f64,
            max_p,
            weight: 0.002,
            avg_bytes: 0.0,
            rng: SimRng::new(seed),
            count: -1,
        }
    }

    /// Current EWMA of queue occupancy in bytes.
    pub fn avg_bytes(&self) -> f64 {
        self.avg_bytes
    }

    fn drop_probability(&self) -> f64 {
        if self.avg_bytes < self.min_th_bytes {
            0.0
        } else if self.avg_bytes >= self.max_th_bytes {
            1.0
        } else {
            self.max_p * (self.avg_bytes - self.min_th_bytes)
                / (self.max_th_bytes - self.min_th_bytes)
        }
    }
}

impl Qdisc for RedQueue {
    fn enqueue(&mut self, frame: FrameRef, pool: &mut FramePool, _now: SimTime) -> EnqueueOutcome {
        let pkt = pool.get(frame);
        let wire_bytes = pkt.wire_bytes;
        let capable = pkt.ecn.is_capable();
        self.avg_bytes =
            (1.0 - self.weight) * self.avg_bytes + self.weight * self.fifo.bytes as f64;

        if self.fifo.bytes + wire_bytes as u64 > self.capacity_bytes {
            self.fifo.drop_pkt(wire_bytes);
            self.count = 0;
            return EnqueueOutcome::Dropped;
        }

        let pb = self.drop_probability();
        let early = if pb >= 1.0 {
            true
        } else if pb > 0.0 {
            self.count += 1;
            // Uniform-spacing correction from the RED paper.
            let pa = pb / (1.0 - (self.count as f64 * pb).min(0.999));
            self.rng.next_f64() < pa
        } else {
            self.count = -1;
            false
        };

        if early {
            self.count = 0;
            if capable {
                pool.get_mut(frame).ecn = crate::packet::EcnCodepoint::Ce;
                self.fifo.stats.marked_pkts += 1;
                self.fifo.push(frame, wire_bytes);
                return EnqueueOutcome::EnqueuedMarked;
            }
            self.fifo.drop_pkt(wire_bytes);
            return EnqueueOutcome::Dropped;
        }

        self.fifo.push(frame, wire_bytes);
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<FrameRef> {
        self.fifo.pop()
    }

    fn len_bytes(&self) -> u64 {
        self.fifo.bytes
    }

    fn len_pkts(&self) -> usize {
        self.fifo.queue.len()
    }

    fn stats(&self) -> QueueStats {
        self.fifo.stats
    }

    fn name(&self) -> &'static str {
        "red"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, NodeId};
    use crate::packet::{EcnCodepoint, Packet};

    fn pkt(bytes: u32, ecn: EcnCodepoint) -> Packet {
        Packet::data(
            FlowId::from_raw(0),
            NodeId::from_raw(0),
            NodeId::from_raw(1),
            0,
            bytes - crate::packet::HEADER_BYTES,
            ecn,
        )
    }

    /// Test shim: the engine's enqueue-or-release contract in one call.
    fn offer(q: &mut dyn Qdisc, pool: &mut FramePool, p: Packet) -> EnqueueOutcome {
        let frame = pool.alloc(p);
        let out = q.enqueue(frame, pool, SimTime::ZERO);
        if out == EnqueueOutcome::Dropped {
            pool.release(frame);
        }
        out
    }

    fn drain(q: &mut dyn Qdisc, pool: &mut FramePool) -> Option<Packet> {
        q.dequeue(SimTime::ZERO).map(|r| pool.take(r))
    }

    #[test]
    fn droptail_accepts_until_capacity() {
        let mut pool = FramePool::new();
        let mut q = DropTailQueue::new(3000);
        assert_eq!(
            offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::NotEct)),
            EnqueueOutcome::Enqueued
        );
        assert_eq!(
            offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::NotEct)),
            EnqueueOutcome::Enqueued
        );
        assert_eq!(
            offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::NotEct)),
            EnqueueOutcome::Dropped
        );
        assert_eq!(q.len_bytes(), 3000);
        assert_eq!(q.len_pkts(), 2);
        let s = q.stats();
        assert_eq!(s.enqueued_pkts, 2);
        assert_eq!(s.dropped_pkts, 1);
        assert_eq!(s.dropped_bytes, 1500);
        assert_eq!(s.max_bytes, 3000);
    }

    #[test]
    fn droptail_dequeues_fifo() {
        let mut pool = FramePool::new();
        let mut q = DropTailQueue::new(10_000);
        let mut a = pkt(1500, EcnCodepoint::NotEct);
        a.seq = 1;
        let mut b = pkt(1500, EcnCodepoint::NotEct);
        b.seq = 2;
        offer(&mut q, &mut pool, a);
        offer(&mut q, &mut pool, b);
        assert_eq!(drain(&mut q, &mut pool).unwrap().seq, 1);
        assert_eq!(drain(&mut q, &mut pool).unwrap().seq, 2);
        assert!(drain(&mut q, &mut pool).is_none());
        assert_eq!(q.len_bytes(), 0);
        assert_eq!(pool.live(), 0, "delivered frames must free their slots");
    }

    #[test]
    fn ecn_threshold_marks_capable_packets_above_k() {
        let mut pool = FramePool::new();
        let mut q = EcnThresholdQueue::new(30_000, 3000);
        // Below K: unmarked.
        assert_eq!(
            offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::Ect0)),
            EnqueueOutcome::Enqueued
        );
        assert_eq!(
            offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::Ect0)),
            EnqueueOutcome::Enqueued
        );
        // This one pushes occupancy past K and is marked.
        assert_eq!(
            offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::Ect0)),
            EnqueueOutcome::EnqueuedMarked
        );
        assert_eq!(q.stats().marked_pkts, 1);
        // Verify the stored packet carries CE.
        drain(&mut q, &mut pool);
        drain(&mut q, &mut pool);
        assert!(drain(&mut q, &mut pool).unwrap().ecn.is_ce());
    }

    #[test]
    fn ecn_threshold_drops_non_capable_only_on_overflow() {
        let mut pool = FramePool::new();
        let mut q = EcnThresholdQueue::new(3000, 1000);
        assert_eq!(
            offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::NotEct)),
            EnqueueOutcome::Enqueued
        );
        assert_eq!(
            offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::NotEct)),
            EnqueueOutcome::Enqueued
        );
        assert_eq!(
            offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::NotEct)),
            EnqueueOutcome::Dropped
        );
        assert_eq!(q.stats().marked_pkts, 0);
    }

    #[test]
    fn red_never_early_drops_below_min_threshold() {
        let mut pool = FramePool::new();
        let mut q = RedQueue::new(100_000, 50_000, 90_000, 0.1, 42);
        for _ in 0..20 {
            assert_eq!(
                offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::NotEct)),
                EnqueueOutcome::Enqueued
            );
        }
        assert_eq!(q.stats().dropped_pkts, 0);
    }

    #[test]
    fn red_drops_or_marks_under_sustained_occupancy() {
        let mut pool = FramePool::new();
        let mut q = RedQueue::new(100_000, 5_000, 20_000, 0.5, 42);
        // Keep the queue full-ish so the EWMA climbs past max_th.
        let mut outcomes = Vec::new();
        for _ in 0..2000 {
            let out = offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::NotEct));
            outcomes.push(out);
            if q.len_pkts() > 20 {
                drain(&mut q, &mut pool);
            }
        }
        let drops = outcomes
            .iter()
            .filter(|o| **o == EnqueueOutcome::Dropped)
            .count();
        assert!(drops > 0, "RED should early-drop under sustained load");
    }

    #[test]
    fn red_marks_ecn_capable_instead_of_dropping() {
        let mut pool = FramePool::new();
        let mut q = RedQueue::new(1_000_000, 1_000, 2_000, 1.0, 7);
        // Force the average up by holding occupancy high.
        for _ in 0..5000 {
            offer(&mut q, &mut pool, pkt(1500, EcnCodepoint::Ect0));
            if q.len_bytes() > 6_000 {
                drain(&mut q, &mut pool);
            }
        }
        assert!(q.stats().marked_pkts > 0);
        // ECN-capable traffic should overwhelmingly be marked, not dropped
        // (overflow is impossible with this capacity).
        assert_eq!(q.stats().dropped_pkts, 0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DropTailQueue::new(1).name(), "droptail");
        assert_eq!(EcnThresholdQueue::new(10, 5).name(), "ecn-threshold");
        assert_eq!(RedQueue::new(10, 1, 5, 0.1, 0).name(), "red");
    }
}
