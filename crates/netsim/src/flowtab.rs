//! Flat, cache-friendly flow tables with generational handles.
//!
//! Population-scale runs (10k+ concurrent flows) spend their hot path
//! looking up per-flow state: the engine maps a node to its agent on
//! every dispatch, and a multiplexed sender maps a flow id to its
//! transport state machine on every ack. Scattering that state behind
//! `Vec<Option<Box<T>>>` plus linear scans is what made a handful of
//! flows fine and ten thousand unaffordable.
//!
//! [`FlowTable`] is a slab: values live in a dense `Vec`, freed slots go
//! on a free list and are reused, and every handle ([`FlowKey`]) carries
//! the slot's *generation* so a stale handle to a recycled slot is
//! detected instead of silently reading the new occupant. Iteration
//! order is slot order — deterministic and independent of removal
//! history interleaving, so tables are safe inside the replayed
//! simulation surface.
//!
//! [`DenseIndex`] is the companion lookup structure: a direct-mapped
//! `raw id -> FlowKey` vector for the id spaces the simulator already
//! keeps dense (flow ids within a scenario, node ids within a network).
//! Together they replace both the `Vec<Option<Box<dyn Agent>>>` agent
//! array and the `O(flows)` per-packet scan in the multiplexed sender.

use core::fmt;

/// Generational handle into a [`FlowTable`].
///
/// `FlowKey`s are cheap to copy and remain valid until their entry is
/// removed; after removal (and any reuse of the slot) every old key is
/// rejected by the generation check.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    slot: u32,
    generation: u32,
}

impl FlowKey {
    /// The slot index backing this key (stable while the entry lives).
    #[inline]
    pub const fn slot(self) -> usize {
        self.slot as usize
    }

    /// The generation this key was minted with.
    #[inline]
    pub const fn generation(self) -> u32 {
        self.generation
    }
}

impl fmt::Debug for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}g{}", self.slot, self.generation)
    }
}

struct Slot<T> {
    /// Even = vacant, odd = occupied: a removal bumps the generation, so
    /// keys minted for the previous occupant can never validate again.
    generation: u32,
    value: Option<T>,
}

/// A slab of per-flow (or per-agent) state with generational handles.
pub struct FlowTable<T> {
    slots: Vec<Slot<T>>,
    /// LIFO free list of vacant slot indices.
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for FlowTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlowTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        FlowTable {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty table with room for `capacity` entries before resizing.
    pub fn with_capacity(capacity: usize) -> Self {
        FlowTable {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots allocated (live + vacant). `len() / capacity()` is
    /// the table's occupancy, surfaced through the obs hooks.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Insert a value; returns its handle. Reuses the most recently
    /// freed slot first (LIFO), which keeps hot tables compact.
    pub fn insert(&mut self, value: T) -> FlowKey {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.value.is_none(), "free-listed slot was occupied");
            s.generation = s.generation.wrapping_add(1); // even -> odd
            s.value = Some(value);
            return FlowKey {
                slot,
                generation: s.generation,
            };
        }
        let slot = self.slots.len() as u32;
        self.slots.push(Slot {
            generation: 1,
            value: Some(value),
        });
        FlowKey {
            slot,
            generation: 1,
        }
    }

    /// Remove and return the entry behind `key`, or `None` if the key is
    /// stale or was never valid.
    pub fn remove(&mut self, key: FlowKey) -> Option<T> {
        let s = self.slots.get_mut(key.slot())?;
        if s.generation != key.generation {
            return None;
        }
        let value = s.value.take()?;
        s.generation = s.generation.wrapping_add(1); // odd -> even
        self.free.push(key.slot);
        self.len -= 1;
        Some(value)
    }

    /// Borrow the entry behind `key`, if the key is still live.
    #[inline]
    pub fn get(&self, key: FlowKey) -> Option<&T> {
        let s = self.slots.get(key.slot())?;
        if s.generation != key.generation {
            return None;
        }
        s.value.as_ref()
    }

    /// Mutably borrow the entry behind `key`, if the key is still live.
    #[inline]
    pub fn get_mut(&mut self, key: FlowKey) -> Option<&mut T> {
        let s = self.slots.get_mut(key.slot())?;
        if s.generation != key.generation {
            return None;
        }
        s.value.as_mut()
    }

    /// True if `key` still addresses a live entry.
    #[inline]
    pub fn contains(&self, key: FlowKey) -> bool {
        self.get(key).is_some()
    }

    /// Iterate live entries in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (FlowKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    FlowKey {
                        slot: i as u32,
                        generation: s.generation,
                    },
                    v,
                )
            })
        })
    }

    /// Iterate live entries mutably in slot order (deterministic).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (FlowKey, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let generation = s.generation;
            s.value.as_mut().map(move |v| {
                (
                    FlowKey {
                        slot: i as u32,
                        generation,
                    },
                    v,
                )
            })
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for FlowTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Direct-mapped `raw id -> FlowKey` index for dense id spaces.
///
/// The simulator's ids (flows within a scenario, nodes within a
/// network) are small consecutive integers, so a plain vector beats any
/// hash or tree map and iterates deterministically for free.
#[derive(Default)]
pub struct DenseIndex {
    keys: Vec<Option<FlowKey>>,
}

impl DenseIndex {
    /// An empty index.
    pub fn new() -> Self {
        DenseIndex::default()
    }

    /// Associate `raw` with `key`, growing the map as needed. Returns
    /// the previous association, if any.
    pub fn set(&mut self, raw: u32, key: FlowKey) -> Option<FlowKey> {
        let i = raw as usize;
        if self.keys.len() <= i {
            self.keys.resize(i + 1, None);
        }
        self.keys[i].replace(key)
    }

    /// The key associated with `raw`, if any.
    #[inline]
    pub fn get(&self, raw: u32) -> Option<FlowKey> {
        self.keys.get(raw as usize).copied().flatten()
    }

    /// Remove the association for `raw`, returning it.
    pub fn clear(&mut self, raw: u32) -> Option<FlowKey> {
        self.keys.get_mut(raw as usize).and_then(Option::take)
    }
}

impl fmt::Debug for DenseIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(
                self.keys
                    .iter()
                    .enumerate()
                    .filter_map(|(i, k)| k.map(|k| (i, k))),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = FlowTable::new();
        let a = t.insert("a");
        let b = t.insert("b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), Some(&"a"));
        assert_eq!(t.get(b), Some(&"b"));
        assert_eq!(t.remove(a), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(a), None);
        assert_eq!(t.get(b), Some(&"b"));
    }

    #[test]
    fn stale_keys_are_rejected_after_slot_reuse() {
        let mut t = FlowTable::new();
        let a = t.insert(1u32);
        assert_eq!(t.remove(a), Some(1));
        let b = t.insert(2u32); // reuses slot 0
        assert_eq!(b.slot(), a.slot());
        assert_ne!(b.generation(), a.generation());
        assert_eq!(t.get(a), None, "stale key must not see the new occupant");
        assert_eq!(t.remove(a), None);
        assert_eq!(t.get(b), Some(&2));
    }

    #[test]
    fn double_remove_is_none() {
        let mut t = FlowTable::new();
        let a = t.insert(7u8);
        assert_eq!(t.remove(a), Some(7));
        assert_eq!(t.remove(a), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn iteration_is_slot_ordered_and_skips_vacant() {
        let mut t = FlowTable::new();
        let a = t.insert(10);
        let b = t.insert(20);
        let c = t.insert(30);
        t.remove(b);
        let seen: Vec<i32> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec![10, 30]);
        for (k, v) in t.iter_mut() {
            if k == a {
                *v += 1;
            }
            let _ = c;
        }
        assert_eq!(t.get(a), Some(&11));
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut t = FlowTable::new();
        let keys: Vec<FlowKey> = (0..4).map(|i| t.insert(i)).collect();
        t.remove(keys[1]);
        t.remove(keys[3]);
        let r1 = t.insert(100); // takes slot 3 (last freed)
        let r2 = t.insert(200); // takes slot 1
        assert_eq!(r1.slot(), 3);
        assert_eq!(r2.slot(), 1);
        assert_eq!(t.capacity(), 4, "no growth while free slots remain");
    }

    #[test]
    fn occupancy_reflects_len_over_capacity() {
        let mut t = FlowTable::with_capacity(8);
        let keys: Vec<FlowKey> = (0..6).map(|i| t.insert(i)).collect();
        assert_eq!(t.len(), 6);
        assert_eq!(t.capacity(), 6);
        t.remove(keys[0]);
        t.remove(keys[1]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.capacity(), 6, "capacity counts vacant slots too");
    }

    #[test]
    fn dense_index_maps_raw_ids() {
        let mut t = FlowTable::new();
        let mut ix = DenseIndex::new();
        let k5 = t.insert("five");
        let k9 = t.insert("nine");
        ix.set(5, k5);
        ix.set(9, k9);
        assert_eq!(ix.get(5), Some(k5));
        assert_eq!(ix.get(7), None);
        assert_eq!(ix.get(100), None);
        assert_eq!(ix.clear(5), Some(k5));
        assert_eq!(ix.get(5), None);
        assert_eq!(t.get(ix.get(9).unwrap()), Some(&"nine"));
    }
}
