//! A flat frame pool: slab storage for packets in flight.
//!
//! A [`crate::packet::Packet`] is 168 bytes — dominated by the inline
//! ack block — and at population scale (10⁴ flows) every hop used to
//! copy it through the command buffer, the qdisc FIFO, the link's
//! in-flight slot, and the scheduler wheel: ~1.3 KB of memcpy per
//! packet-hop, plus 192-byte scheduler entries that blow out the wheel's
//! cache footprint.
//!
//! [`FramePool`] fixes that shape. A frame is copied into the pool once
//! when an agent originates it and copied out once when a host delivers
//! it; everything between — queueing, serialization, fault injection,
//! switch forwarding, the event wheel — passes a 4-byte [`FrameRef`].
//! Freed slots go on a free list and are reused in LIFO order, so the
//! hot set stays small and cache-resident.
//!
//! # Determinism
//!
//! The pool is pure storage: slot numbers never influence event order,
//! RNG draws, or any simulated quantity, and the packet bytes an agent
//! sees are exactly the bytes its peer sent. Slot reuse order is itself
//! deterministic (LIFO on a deterministic free sequence), so debug
//! traces replay identically too.
//!
//! # Ownership contract
//!
//! `FrameRef` is a plain index with no generation counter: the engine is
//! the only holder, and every ref has exactly one owner (a qdisc FIFO, a
//! link's in-flight slot, or a scheduled `Arrive` event) from `alloc` to
//! `take`/`release`. Double-free or use-after-free is an engine bug, not
//! a runtime condition; debug builds assert liveness on every access.

use crate::packet::Packet;

/// Handle to a pooled frame. 4 bytes, `Copy`; see the module docs for
/// the single-owner contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameRef(u32);

/// Slab of in-flight frames with a LIFO free list.
#[derive(Debug, Default)]
pub struct FramePool {
    slots: Vec<Packet>,
    free: Vec<u32>,
    /// Debug-only liveness map (empty in release builds).
    #[cfg(debug_assertions)]
    live: Vec<bool>,
}

impl FramePool {
    /// An empty pool.
    pub fn new() -> Self {
        FramePool::default()
    }

    /// Number of live (allocated, not yet freed) frames.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (the pool's high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store a frame, reusing a freed slot when one exists.
    #[inline]
    pub fn alloc(&mut self, pkt: Packet) -> FrameRef {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = pkt;
            #[cfg(debug_assertions)]
            {
                debug_assert!(!self.live[idx as usize], "free list held a live slot");
                self.live[idx as usize] = true;
            }
            FrameRef(idx)
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(pkt);
            #[cfg(debug_assertions)]
            self.live.push(true);
            FrameRef(idx)
        }
    }

    /// Borrow a live frame.
    #[inline]
    pub fn get(&self, r: FrameRef) -> &Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[r.0 as usize], "get on a freed frame");
        &self.slots[r.0 as usize]
    }

    /// Mutably borrow a live frame (in-place stamping: INT, CE, FCS).
    #[inline]
    pub fn get_mut(&mut self, r: FrameRef) -> &mut Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[r.0 as usize], "get_mut on a freed frame");
        &mut self.slots[r.0 as usize]
    }

    /// Copy the frame out and free its slot: the delivery-side exit.
    #[inline]
    pub fn take(&mut self, r: FrameRef) -> Packet {
        let pkt = self.slots[r.0 as usize];
        self.release(r);
        pkt
    }

    /// Free a slot without reading it (drops and injected losses).
    #[inline]
    pub fn release(&mut self, r: FrameRef) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.live[r.0 as usize], "double free of a frame");
            self.live[r.0 as usize] = false;
        }
        self.free.push(r.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, NodeId};
    use crate::packet::EcnCodepoint;

    fn pkt(seq: u64) -> Packet {
        Packet::data(
            FlowId::from_raw(1),
            NodeId::from_raw(0),
            NodeId::from_raw(1),
            seq,
            1000,
            EcnCodepoint::NotEct,
        )
    }

    #[test]
    fn alloc_take_roundtrips_bytes() {
        let mut pool = FramePool::new();
        let a = pool.alloc(pkt(7));
        let b = pool.alloc(pkt(9));
        assert_eq!(pool.live(), 2);
        assert_eq!(pool.take(a).seq, 7);
        assert_eq!(pool.take(b).seq, 9);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut pool = FramePool::new();
        let a = pool.alloc(pkt(1));
        let _b = pool.alloc(pkt(2));
        pool.release(a);
        let c = pool.alloc(pkt(3));
        assert_eq!(c, a, "LIFO reuse of the freed slot");
        assert_eq!(pool.capacity(), 2, "no growth while the free list serves");
        assert_eq!(pool.get(c).seq, 3);
    }

    #[test]
    fn get_mut_stamps_in_place() {
        let mut pool = FramePool::new();
        let r = pool.alloc(pkt(5));
        pool.get_mut(r).corrupted = true;
        assert!(pool.take(r).corrupted);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_asserts_in_debug() {
        let mut pool = FramePool::new();
        let r = pool.alloc(pkt(1));
        pool.release(r);
        pool.release(r);
    }
}
