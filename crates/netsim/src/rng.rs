//! Deterministic random number generation.
//!
//! Every stochastic element of the simulator (RED early drops, jittered
//! start times, workload seeds) draws from a [`SimRng`] seeded explicitly,
//! so that a run is a pure function of its configuration. The generator is
//! SplitMix64: tiny, fast, and statistically adequate for simulation
//! (we are not doing cryptography).

/// A small deterministic PRNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derive an independent child generator; used to give each component
    /// its own stream so adding a consumer never perturbs another's draws.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // simulation-sized n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(12345);
        let mut b = SimRng::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = SimRng::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = SimRng::new(4);
        for _ in 0..1_000 {
            let x = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let matches = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(matches, 0);
    }
}
