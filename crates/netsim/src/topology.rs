//! Canonical topologies.
//!
//! [`Dumbbell`] builds the paper's testbed: sender host(s) connected to a
//! switch (optionally over bonded links, as the paper's sender uses
//! 2×10 Gb/s round-robin bonding), and a single bottleneck link from the
//! switch to the receiver host. All experiments in the paper run on this
//! shape.
//!
//! Population-scale studies add two more classics: [`Incast`] (N senders
//! fan into one receiver through a single switch — the many-flows shape
//! of a CDN edge or a partition/aggregate datacenter job) and
//! [`ParkingLot`] (a chain of bottlenecks where one long "through" flow
//! competes with a short local flow on every hop — the standard
//! multi-bottleneck fairness stressor). Examples can of course wire
//! arbitrary topologies by hand.

use crate::engine::Network;
use crate::ids::{LinkId, NodeId};
use crate::link::LinkSpec;
use crate::queue::{DropTailQueue, EcnThresholdQueue, Qdisc};
use crate::time::SimDuration;
use crate::units::Rate;

/// Which discipline the bottleneck queue runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BottleneckQueue {
    /// Plain tail-drop with the given capacity in bytes.
    DropTail {
        /// Buffer capacity in bytes.
        capacity_bytes: u64,
    },
    /// DCTCP-style step marking: tail-drop capacity plus a CE threshold.
    EcnThreshold {
        /// Buffer capacity in bytes.
        capacity_bytes: u64,
        /// Marking threshold K in bytes.
        mark_bytes: u64,
    },
}

impl BottleneckQueue {
    fn build(self) -> Box<dyn Qdisc> {
        match self {
            BottleneckQueue::DropTail { capacity_bytes } => {
                Box::new(DropTailQueue::new(capacity_bytes))
            }
            BottleneckQueue::EcnThreshold {
                capacity_bytes,
                mark_bytes,
            } => Box::new(EcnThresholdQueue::new(capacity_bytes, mark_bytes)),
        }
    }
}

/// Parameters of the dumbbell testbed.
#[derive(Clone, Debug)]
pub struct DumbbellConfig {
    /// Bottleneck (switch -> receiver) rate. The paper's is 10 Gb/s.
    pub bottleneck_rate: Rate,
    /// Rate of each sender -> switch link.
    pub edge_rate: Rate,
    /// Number of parallel sender -> switch links (2 in the paper's bonded
    /// setup, so the sender NIC is never the bottleneck).
    pub sender_bond_links: usize,
    /// One-way propagation delay per hop (sender->switch and
    /// switch->receiver each get this).
    pub hop_delay: SimDuration,
    /// Bottleneck queue discipline.
    pub bottleneck_queue: BottleneckQueue,
    /// Buffer on non-bottleneck links, in bytes.
    pub edge_buffer_bytes: u64,
    /// Host packet-processing ceiling: minimum spacing between packets a
    /// host can emit. `ZERO` disables. Models the per-packet CPU cost that
    /// keeps small-MTU senders below line rate.
    pub host_min_pkt_gap: SimDuration,
    /// Number of sender hosts (each gets its own edge link set).
    pub senders: usize,
}

impl Default for DumbbellConfig {
    /// The paper's testbed: 10 Gb/s bottleneck, bonded 2×10 Gb/s sender
    /// uplinks, ~25 us per-hop delay (a few switch hops' worth of fiber +
    /// forwarding), 1 MB drop-tail bottleneck buffer.
    fn default() -> Self {
        DumbbellConfig {
            bottleneck_rate: Rate::from_gbps(10.0),
            edge_rate: Rate::from_gbps(10.0),
            sender_bond_links: 2,
            hop_delay: SimDuration::from_micros(25),
            bottleneck_queue: BottleneckQueue::DropTail {
                capacity_bytes: 1_000_000,
            },
            edge_buffer_bytes: 4_000_000,
            host_min_pkt_gap: SimDuration::ZERO,
            senders: 1,
        }
    }
}

/// A built dumbbell: node and link handles for experiments to poke at.
#[derive(Debug)]
pub struct Dumbbell {
    /// Sender host ids, one per configured sender.
    pub senders: Vec<NodeId>,
    /// The switch.
    pub switch: NodeId,
    /// The receiver host.
    pub receiver: NodeId,
    /// The bottleneck link (switch -> receiver).
    pub bottleneck: LinkId,
    /// Per-sender uplink ids (bonded groups flattened).
    pub uplinks: Vec<Vec<LinkId>>,
}

impl Dumbbell {
    /// Build the dumbbell inside `net` according to `cfg`.
    pub fn build(net: &mut Network, cfg: &DumbbellConfig) -> Dumbbell {
        assert!(cfg.senders >= 1, "need at least one sender");
        assert!(cfg.sender_bond_links >= 1, "need at least one uplink");

        let switch = net.add_switch();
        let receiver = net.add_host();

        // Bottleneck: switch -> receiver.
        let bottleneck = net.add_link(
            switch,
            receiver,
            LinkSpec {
                rate: cfg.bottleneck_rate,
                prop_delay: cfg.hop_delay,
                qdisc: cfg.bottleneck_queue.build(),
                min_pkt_gap: SimDuration::ZERO,
            },
        );

        // Reverse path: receiver -> switch (acks), generously buffered.
        let rx_up = net.add_link(
            receiver,
            switch,
            LinkSpec::droptail(cfg.edge_rate, cfg.hop_delay, cfg.edge_buffer_bytes)
                .with_min_pkt_gap(cfg.host_min_pkt_gap),
        );
        net.add_route(receiver, switch, rx_up);

        let mut senders = Vec::with_capacity(cfg.senders);
        let mut uplinks = Vec::with_capacity(cfg.senders);
        for _ in 0..cfg.senders {
            let host = net.add_host();
            let mut bond = Vec::with_capacity(cfg.sender_bond_links);
            for _ in 0..cfg.sender_bond_links {
                let l = net.add_link(
                    host,
                    switch,
                    LinkSpec::droptail(cfg.edge_rate, cfg.hop_delay, cfg.edge_buffer_bytes)
                        .with_min_pkt_gap(cfg.host_min_pkt_gap),
                );
                net.add_route(host, receiver, l);
                bond.push(l);
            }
            // Switch routes: to this sender via a downlink.
            let down = net.add_link(
                switch,
                host,
                LinkSpec::droptail(cfg.edge_rate, cfg.hop_delay, cfg.edge_buffer_bytes),
            );
            net.add_route(switch, host, down);
            // Receiver reaches this sender through the switch.
            net.add_route(receiver, host, rx_up);
            senders.push(host);
            uplinks.push(bond);
        }
        // Switch routes everything destined to the receiver over the
        // bottleneck.
        net.add_route(switch, receiver, bottleneck);

        Dumbbell {
            senders,
            switch,
            receiver,
            bottleneck,
            uplinks,
        }
    }

    /// Round-trip propagation+forwarding delay for this topology, ignoring
    /// serialization and queueing: four hop delays (two out, two back).
    pub fn base_rtt(cfg: &DumbbellConfig) -> SimDuration {
        cfg.hop_delay * 4
    }
}

/// Parameters of the incast testbed.
#[derive(Clone, Debug)]
pub struct IncastConfig {
    /// Number of sender hosts fanning into the receiver.
    pub fan_in: usize,
    /// Rate of each sender -> switch uplink (per bond member).
    pub edge_rate: Rate,
    /// Aggregate bottleneck (switch -> receiver) rate; a bonded
    /// bottleneck splits it evenly over its members.
    pub bottleneck_rate: Rate,
    /// LAG width: every link in the rack is a port-channel of this many
    /// members, sprayed round-robin (1 = plain links). Edge members each
    /// run at the full `edge_rate` — the dumbbell's bonded-NIC
    /// convention, so host NICs are never the bottleneck — while
    /// bottleneck members split `bottleneck_rate` to preserve the
    /// aggregate. Equal-size frames sprayed onto an idle bond serialize
    /// in lockstep and arrive at the far host in the same nanosecond,
    /// which is what feeds the engine's batched same-timestamp dispatch.
    pub bond_links: usize,
    /// One-way propagation delay per hop.
    pub hop_delay: SimDuration,
    /// Bottleneck queue discipline, per bond member. Incast collapse
    /// studies want this shallow; the default is a switch-port-sized
    /// 256 KB drop-tail.
    pub bottleneck_queue: BottleneckQueue,
    /// Buffer on non-bottleneck links, in bytes.
    pub edge_buffer_bytes: u64,
}

impl Default for IncastConfig {
    fn default() -> Self {
        IncastConfig {
            fan_in: 32,
            edge_rate: Rate::from_gbps(10.0),
            bottleneck_rate: Rate::from_gbps(10.0),
            bond_links: 1,
            hop_delay: SimDuration::from_micros(25),
            bottleneck_queue: BottleneckQueue::DropTail {
                capacity_bytes: 256_000,
            },
            edge_buffer_bytes: 4_000_000,
        }
    }
}

/// A built incast: N senders, one switch, one receiver, one bottleneck
/// (possibly a bonded group).
#[derive(Debug)]
pub struct Incast {
    /// Sender host ids, one per fan-in slot.
    pub senders: Vec<NodeId>,
    /// The switch every sender hangs off.
    pub switch: NodeId,
    /// The receiver everything converges on.
    pub receiver: NodeId,
    /// The first bottleneck member (the whole bottleneck when
    /// `bond_links` is 1).
    pub bottleneck: LinkId,
    /// All bottleneck members (length = `bond_links`).
    pub bottlenecks: Vec<LinkId>,
    /// Per-sender uplink bond (sender -> switch), flattened per sender.
    pub uplinks: Vec<Vec<LinkId>>,
}

impl Incast {
    /// Build the incast inside `net` according to `cfg`.
    pub fn build(net: &mut Network, cfg: &IncastConfig) -> Incast {
        assert!(cfg.fan_in >= 1, "need at least one sender");
        assert!(cfg.bond_links >= 1, "need at least one bond member");
        let switch = net.add_switch();
        let receiver = net.add_host();
        let member_rate = Rate::from_bps(cfg.bottleneck_rate.bps() / cfg.bond_links as f64);
        let mut bottlenecks = Vec::with_capacity(cfg.bond_links);
        for _ in 0..cfg.bond_links {
            let l = net.add_link(
                switch,
                receiver,
                LinkSpec {
                    rate: member_rate,
                    prop_delay: cfg.hop_delay,
                    qdisc: cfg.bottleneck_queue.build(),
                    min_pkt_gap: SimDuration::ZERO,
                },
            );
            net.add_route(switch, receiver, l);
            bottlenecks.push(l);
        }
        // Reverse path (acks): bonded like everything else, so ack pairs
        // emitted in the same nanosecond keep their tie through the
        // switch and reach a multiplexed sender as one batch.
        let mut rx_ups = Vec::with_capacity(cfg.bond_links);
        for _ in 0..cfg.bond_links {
            let l = net.add_link(
                receiver,
                switch,
                LinkSpec::droptail(cfg.bottleneck_rate, cfg.hop_delay, cfg.edge_buffer_bytes),
            );
            net.add_route(receiver, switch, l);
            rx_ups.push(l);
        }

        let mut senders = Vec::with_capacity(cfg.fan_in);
        let mut uplinks = Vec::with_capacity(cfg.fan_in);
        for _ in 0..cfg.fan_in {
            let host = net.add_host();
            let mut bond = Vec::with_capacity(cfg.bond_links);
            for _ in 0..cfg.bond_links {
                let up = net.add_link(
                    host,
                    switch,
                    LinkSpec::droptail(cfg.edge_rate, cfg.hop_delay, cfg.edge_buffer_bytes),
                );
                net.add_route(host, receiver, up);
                bond.push(up);
            }
            for _ in 0..cfg.bond_links {
                let down = net.add_link(
                    switch,
                    host,
                    LinkSpec::droptail(cfg.edge_rate, cfg.hop_delay, cfg.edge_buffer_bytes),
                );
                net.add_route(switch, host, down);
            }
            for &ru in &rx_ups {
                net.add_route(receiver, host, ru);
            }
            senders.push(host);
            uplinks.push(bond);
        }
        Incast {
            senders,
            switch,
            receiver,
            bottleneck: bottlenecks[0],
            bottlenecks,
            uplinks,
        }
    }
}

/// Parameters of the parking-lot chain.
#[derive(Clone, Debug)]
pub struct ParkingLotConfig {
    /// Number of bottleneck hops in the chain (and of local flows; ≥ 1).
    pub hops: usize,
    /// Rate of every chain (bottleneck) link.
    pub link_rate: Rate,
    /// Rate of host access links.
    pub edge_rate: Rate,
    /// One-way propagation delay per hop.
    pub hop_delay: SimDuration,
    /// Queue discipline on each forward chain link.
    pub bottleneck_queue: BottleneckQueue,
    /// Buffer on access and reverse links, in bytes.
    pub edge_buffer_bytes: u64,
}

impl Default for ParkingLotConfig {
    fn default() -> Self {
        ParkingLotConfig {
            hops: 3,
            link_rate: Rate::from_gbps(10.0),
            edge_rate: Rate::from_gbps(10.0),
            hop_delay: SimDuration::from_micros(25),
            bottleneck_queue: BottleneckQueue::DropTail {
                capacity_bytes: 1_000_000,
            },
            edge_buffer_bytes: 4_000_000,
        }
    }
}

/// A built parking lot: switches `S0..=Sh` in a chain, one through
/// sender/receiver pair spanning the whole chain, and one local
/// sender/receiver pair straddling each hop.
#[derive(Debug)]
pub struct ParkingLot {
    /// Chain switches, left to right (`hops + 1` of them).
    pub switches: Vec<NodeId>,
    /// Sender of the through flow (attached at the left end).
    pub through_sender: NodeId,
    /// Receiver of the through flow (attached at the right end).
    pub through_receiver: NodeId,
    /// Local sender `i`, attached at switch `i`.
    pub local_senders: Vec<NodeId>,
    /// Local receiver `i`, attached at switch `i + 1`.
    pub local_receivers: Vec<NodeId>,
    /// Forward chain links `S_i -> S_{i+1}` — the bottlenecks.
    pub bottlenecks: Vec<LinkId>,
}

impl ParkingLot {
    /// Build the parking lot inside `net` according to `cfg`.
    pub fn build(net: &mut Network, cfg: &ParkingLotConfig) -> ParkingLot {
        assert!(cfg.hops >= 1, "need at least one hop");
        let n_sw = cfg.hops + 1;
        let switches: Vec<NodeId> = (0..n_sw).map(|_| net.add_switch()).collect();

        // Chain links: forward links carry data through the configured
        // bottleneck qdisc; reverse links carry acks, generously buffered.
        let mut forward = Vec::with_capacity(cfg.hops);
        let mut reverse = Vec::with_capacity(cfg.hops);
        for i in 0..cfg.hops {
            forward.push(net.add_link(
                switches[i],
                switches[i + 1],
                LinkSpec {
                    rate: cfg.link_rate,
                    prop_delay: cfg.hop_delay,
                    qdisc: cfg.bottleneck_queue.build(),
                    min_pkt_gap: SimDuration::ZERO,
                },
            ));
            reverse.push(net.add_link(
                switches[i + 1],
                switches[i],
                LinkSpec::droptail(cfg.link_rate, cfg.hop_delay, cfg.edge_buffer_bytes),
            ));
        }

        // Hosts: (host id, index of the switch it hangs off).
        let mut hosts: Vec<(NodeId, usize)> = Vec::new();
        let attach = |net: &mut Network, sw_idx: usize, hosts: &mut Vec<(NodeId, usize)>| {
            let host = net.add_host();
            let up = net.add_link(
                host,
                switches[sw_idx],
                LinkSpec::droptail(cfg.edge_rate, cfg.hop_delay, cfg.edge_buffer_bytes),
            );
            let down = net.add_link(
                switches[sw_idx],
                host,
                LinkSpec::droptail(cfg.edge_rate, cfg.hop_delay, cfg.edge_buffer_bytes),
            );
            net.add_route(switches[sw_idx], host, down);
            hosts.push((host, sw_idx));
            (host, up)
        };

        let (through_sender, ts_up) = attach(net, 0, &mut hosts);
        let (through_receiver, tr_up) = attach(net, cfg.hops, &mut hosts);
        let mut local_senders = Vec::with_capacity(cfg.hops);
        let mut local_receivers = Vec::with_capacity(cfg.hops);
        let mut host_uplinks = vec![(through_sender, ts_up), (through_receiver, tr_up)];
        for i in 0..cfg.hops {
            let (s, s_up) = attach(net, i, &mut hosts);
            let (r, r_up) = attach(net, i + 1, &mut hosts);
            local_senders.push(s);
            local_receivers.push(r);
            host_uplinks.push((s, s_up));
            host_uplinks.push((r, r_up));
        }

        // Routing. Hosts send everything to their switch; each switch
        // forwards along the chain toward the switch the destination
        // hangs off (local destinations were routed at attach time).
        for &(host, up) in &host_uplinks {
            for &(dst, _) in &hosts {
                if dst != host {
                    net.add_route(host, dst, up);
                }
            }
        }
        for s in 0..n_sw {
            for &(dst, at) in &hosts {
                if at > s {
                    net.add_route(switches[s], dst, forward[s]);
                } else if at < s {
                    net.add_route(switches[s], dst, reverse[s - 1]);
                }
            }
        }

        ParkingLot {
            switches,
            through_sender,
            through_receiver,
            local_senders,
            local_receivers,
            bottlenecks: forward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, Ctx};
    use crate::ids::FlowId;
    use crate::packet::{AckInfo, EcnCodepoint, Packet, PacketKind};

    struct Blaster {
        dst: NodeId,
        n: u32,
        acked: u32,
    }
    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..self.n {
                ctx.send(Packet::data(
                    FlowId::from_raw(7),
                    ctx.node(),
                    self.dst,
                    (i as u64) * 1448,
                    1448,
                    EcnCodepoint::NotEct,
                ));
            }
        }
        fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx<'_>) {
            if matches!(pkt.kind, PacketKind::Ack(_)) {
                self.acked += 1;
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    }

    struct Sink;
    impl Agent for Sink {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            if pkt.is_data() {
                ctx.send(Packet::ack(
                    pkt.flow,
                    ctx.node(),
                    pkt.src,
                    AckInfo {
                        cum_ack: pkt.seq_end(),
                        ..AckInfo::default()
                    },
                ));
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    }

    #[test]
    fn dumbbell_carries_traffic_end_to_end() {
        let mut net = Network::new(11);
        let cfg = DumbbellConfig::default();
        let d = Dumbbell::build(&mut net, &cfg);
        net.attach_agent(
            d.senders[0],
            Box::new(Blaster {
                dst: d.receiver,
                n: 20,
                acked: 0,
            }),
        );
        net.attach_agent(d.receiver, Box::new(Sink));
        net.run();
        assert_eq!(net.agent::<Blaster>(d.senders[0]).unwrap().acked, 20);
        assert_eq!(net.link_stats(d.bottleneck).tx_pkts, 20);
    }

    #[test]
    fn bonded_uplinks_share_packets() {
        let mut net = Network::new(12);
        let cfg = DumbbellConfig::default();
        let d = Dumbbell::build(&mut net, &cfg);
        assert_eq!(d.uplinks[0].len(), 2);
        net.attach_agent(
            d.senders[0],
            Box::new(Blaster {
                dst: d.receiver,
                n: 10,
                acked: 0,
            }),
        );
        net.attach_agent(d.receiver, Box::new(Sink));
        net.run();
        assert_eq!(net.link_stats(d.uplinks[0][0]).tx_pkts, 5);
        assert_eq!(net.link_stats(d.uplinks[0][1]).tx_pkts, 5);
    }

    #[test]
    fn two_senders_get_distinct_hosts() {
        let mut net = Network::new(13);
        let cfg = DumbbellConfig {
            senders: 2,
            ..DumbbellConfig::default()
        };
        let d = Dumbbell::build(&mut net, &cfg);
        assert_eq!(d.senders.len(), 2);
        assert_ne!(d.senders[0], d.senders[1]);
        net.attach_agent(
            d.senders[0],
            Box::new(Blaster {
                dst: d.receiver,
                n: 5,
                acked: 0,
            }),
        );
        net.attach_agent(
            d.senders[1],
            Box::new(Blaster {
                dst: d.receiver,
                n: 5,
                acked: 0,
            }),
        );
        net.attach_agent(d.receiver, Box::new(Sink));
        net.run();
        assert_eq!(net.agent::<Blaster>(d.senders[0]).unwrap().acked, 5);
        assert_eq!(net.agent::<Blaster>(d.senders[1]).unwrap().acked, 5);
    }

    #[test]
    fn ecn_bottleneck_marks_capable_traffic() {
        let mut net = Network::new(14);
        let cfg = DumbbellConfig {
            bottleneck_queue: BottleneckQueue::EcnThreshold {
                capacity_bytes: 1_000_000,
                mark_bytes: 3_000,
            },
            ..DumbbellConfig::default()
        };
        let d = Dumbbell::build(&mut net, &cfg);

        struct EcnBlaster {
            dst: NodeId,
        }
        impl Agent for EcnBlaster {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // Burst enough to exceed the 3 KB threshold at the
                // bottleneck queue.
                for i in 0..50u64 {
                    ctx.send(Packet::data(
                        FlowId::from_raw(1),
                        ctx.node(),
                        self.dst,
                        i * 1448,
                        1448,
                        EcnCodepoint::Ect0,
                    ));
                }
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
        }

        net.attach_agent(d.senders[0], Box::new(EcnBlaster { dst: d.receiver }));
        net.attach_agent(d.receiver, Box::new(Sink));
        net.run();
        assert!(net.queue_stats(d.bottleneck).marked_pkts > 0);
    }

    #[test]
    fn base_rtt_is_four_hops() {
        let cfg = DumbbellConfig::default();
        assert_eq!(Dumbbell::base_rtt(&cfg), SimDuration::from_micros(100));
    }

    #[test]
    fn incast_converges_all_senders_on_the_receiver() {
        let mut net = Network::new(15);
        let cfg = IncastConfig {
            fan_in: 8,
            ..IncastConfig::default()
        };
        let inc = Incast::build(&mut net, &cfg);
        assert_eq!(inc.senders.len(), 8);
        for &s in &inc.senders {
            net.attach_agent(
                s,
                Box::new(Blaster {
                    dst: inc.receiver,
                    n: 10,
                    acked: 0,
                }),
            );
        }
        net.attach_agent(inc.receiver, Box::new(Sink));
        net.run();
        // Every sender's burst crossed the single bottleneck and was acked.
        assert_eq!(net.link_stats(inc.bottleneck).tx_pkts, 80);
        for &s in &inc.senders {
            assert_eq!(net.agent::<Blaster>(s).unwrap().acked, 10);
        }
    }

    #[test]
    fn incast_synchronized_burst_overflows_the_shallow_buffer() {
        let mut net = Network::new(16);
        let cfg = IncastConfig {
            fan_in: 24,
            bottleneck_queue: BottleneckQueue::DropTail {
                capacity_bytes: 30_000,
            },
            ..IncastConfig::default()
        };
        let inc = Incast::build(&mut net, &cfg);
        for &s in &inc.senders {
            net.attach_agent(
                s,
                Box::new(Blaster {
                    dst: inc.receiver,
                    n: 20,
                    acked: 0,
                }),
            );
        }
        net.attach_agent(inc.receiver, Box::new(Sink));
        net.run();
        assert!(
            net.queue_stats(inc.bottleneck).dropped_pkts > 0,
            "a synchronized 24-way burst must overflow a 30 KB port buffer"
        );
    }

    #[test]
    fn parking_lot_routes_through_and_local_flows() {
        let mut net = Network::new(17);
        let cfg = ParkingLotConfig {
            hops: 3,
            ..ParkingLotConfig::default()
        };
        let lot = ParkingLot::build(&mut net, &cfg);
        assert_eq!(lot.switches.len(), 4);
        assert_eq!(lot.bottlenecks.len(), 3);
        net.attach_agent(
            lot.through_sender,
            Box::new(Blaster {
                dst: lot.through_receiver,
                n: 12,
                acked: 0,
            }),
        );
        for i in 0..3 {
            net.attach_agent(
                lot.local_senders[i],
                Box::new(Blaster {
                    dst: lot.local_receivers[i],
                    n: 7,
                    acked: 0,
                }),
            );
            net.attach_agent(lot.local_receivers[i], Box::new(Sink));
        }
        net.attach_agent(lot.through_receiver, Box::new(Sink));
        net.run();
        // The through flow crossed every hop; each local flow only its own.
        assert_eq!(net.agent::<Blaster>(lot.through_sender).unwrap().acked, 12);
        for i in 0..3 {
            assert_eq!(net.agent::<Blaster>(lot.local_senders[i]).unwrap().acked, 7);
            // Hop i carries the through flow plus local flow i.
            assert_eq!(net.link_stats(lot.bottlenecks[i]).tx_pkts, 12 + 7);
        }
    }
}
