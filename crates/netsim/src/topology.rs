//! Canonical topologies.
//!
//! [`Dumbbell`] builds the paper's testbed: sender host(s) connected to a
//! switch (optionally over bonded links, as the paper's sender uses
//! 2×10 Gb/s round-robin bonding), and a single bottleneck link from the
//! switch to the receiver host. All experiments in the paper run on this
//! shape; examples can of course wire arbitrary topologies by hand.

use crate::engine::Network;
use crate::ids::{LinkId, NodeId};
use crate::link::LinkSpec;
use crate::queue::{DropTailQueue, EcnThresholdQueue, Qdisc};
use crate::time::SimDuration;
use crate::units::Rate;

/// Which discipline the bottleneck queue runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BottleneckQueue {
    /// Plain tail-drop with the given capacity in bytes.
    DropTail {
        /// Buffer capacity in bytes.
        capacity_bytes: u64,
    },
    /// DCTCP-style step marking: tail-drop capacity plus a CE threshold.
    EcnThreshold {
        /// Buffer capacity in bytes.
        capacity_bytes: u64,
        /// Marking threshold K in bytes.
        mark_bytes: u64,
    },
}

impl BottleneckQueue {
    fn build(self) -> Box<dyn Qdisc> {
        match self {
            BottleneckQueue::DropTail { capacity_bytes } => {
                Box::new(DropTailQueue::new(capacity_bytes))
            }
            BottleneckQueue::EcnThreshold {
                capacity_bytes,
                mark_bytes,
            } => Box::new(EcnThresholdQueue::new(capacity_bytes, mark_bytes)),
        }
    }
}

/// Parameters of the dumbbell testbed.
#[derive(Clone, Debug)]
pub struct DumbbellConfig {
    /// Bottleneck (switch -> receiver) rate. The paper's is 10 Gb/s.
    pub bottleneck_rate: Rate,
    /// Rate of each sender -> switch link.
    pub edge_rate: Rate,
    /// Number of parallel sender -> switch links (2 in the paper's bonded
    /// setup, so the sender NIC is never the bottleneck).
    pub sender_bond_links: usize,
    /// One-way propagation delay per hop (sender->switch and
    /// switch->receiver each get this).
    pub hop_delay: SimDuration,
    /// Bottleneck queue discipline.
    pub bottleneck_queue: BottleneckQueue,
    /// Buffer on non-bottleneck links, in bytes.
    pub edge_buffer_bytes: u64,
    /// Host packet-processing ceiling: minimum spacing between packets a
    /// host can emit. `ZERO` disables. Models the per-packet CPU cost that
    /// keeps small-MTU senders below line rate.
    pub host_min_pkt_gap: SimDuration,
    /// Number of sender hosts (each gets its own edge link set).
    pub senders: usize,
}

impl Default for DumbbellConfig {
    /// The paper's testbed: 10 Gb/s bottleneck, bonded 2×10 Gb/s sender
    /// uplinks, ~25 us per-hop delay (a few switch hops' worth of fiber +
    /// forwarding), 1 MB drop-tail bottleneck buffer.
    fn default() -> Self {
        DumbbellConfig {
            bottleneck_rate: Rate::from_gbps(10.0),
            edge_rate: Rate::from_gbps(10.0),
            sender_bond_links: 2,
            hop_delay: SimDuration::from_micros(25),
            bottleneck_queue: BottleneckQueue::DropTail {
                capacity_bytes: 1_000_000,
            },
            edge_buffer_bytes: 4_000_000,
            host_min_pkt_gap: SimDuration::ZERO,
            senders: 1,
        }
    }
}

/// A built dumbbell: node and link handles for experiments to poke at.
#[derive(Debug)]
pub struct Dumbbell {
    /// Sender host ids, one per configured sender.
    pub senders: Vec<NodeId>,
    /// The switch.
    pub switch: NodeId,
    /// The receiver host.
    pub receiver: NodeId,
    /// The bottleneck link (switch -> receiver).
    pub bottleneck: LinkId,
    /// Per-sender uplink ids (bonded groups flattened).
    pub uplinks: Vec<Vec<LinkId>>,
}

impl Dumbbell {
    /// Build the dumbbell inside `net` according to `cfg`.
    pub fn build(net: &mut Network, cfg: &DumbbellConfig) -> Dumbbell {
        assert!(cfg.senders >= 1, "need at least one sender");
        assert!(cfg.sender_bond_links >= 1, "need at least one uplink");

        let switch = net.add_switch();
        let receiver = net.add_host();

        // Bottleneck: switch -> receiver.
        let bottleneck = net.add_link(
            switch,
            receiver,
            LinkSpec {
                rate: cfg.bottleneck_rate,
                prop_delay: cfg.hop_delay,
                qdisc: cfg.bottleneck_queue.build(),
                min_pkt_gap: SimDuration::ZERO,
            },
        );

        // Reverse path: receiver -> switch (acks), generously buffered.
        let rx_up = net.add_link(
            receiver,
            switch,
            LinkSpec::droptail(cfg.edge_rate, cfg.hop_delay, cfg.edge_buffer_bytes)
                .with_min_pkt_gap(cfg.host_min_pkt_gap),
        );
        net.add_route(receiver, switch, rx_up);

        let mut senders = Vec::with_capacity(cfg.senders);
        let mut uplinks = Vec::with_capacity(cfg.senders);
        for _ in 0..cfg.senders {
            let host = net.add_host();
            let mut bond = Vec::with_capacity(cfg.sender_bond_links);
            for _ in 0..cfg.sender_bond_links {
                let l = net.add_link(
                    host,
                    switch,
                    LinkSpec::droptail(cfg.edge_rate, cfg.hop_delay, cfg.edge_buffer_bytes)
                        .with_min_pkt_gap(cfg.host_min_pkt_gap),
                );
                net.add_route(host, receiver, l);
                bond.push(l);
            }
            // Switch routes: to this sender via a downlink.
            let down = net.add_link(
                switch,
                host,
                LinkSpec::droptail(cfg.edge_rate, cfg.hop_delay, cfg.edge_buffer_bytes),
            );
            net.add_route(switch, host, down);
            // Receiver reaches this sender through the switch.
            net.add_route(receiver, host, rx_up);
            senders.push(host);
            uplinks.push(bond);
        }
        // Switch routes everything destined to the receiver over the
        // bottleneck.
        net.add_route(switch, receiver, bottleneck);

        Dumbbell {
            senders,
            switch,
            receiver,
            bottleneck,
            uplinks,
        }
    }

    /// Round-trip propagation+forwarding delay for this topology, ignoring
    /// serialization and queueing: four hop delays (two out, two back).
    pub fn base_rtt(cfg: &DumbbellConfig) -> SimDuration {
        cfg.hop_delay * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, Ctx};
    use crate::ids::FlowId;
    use crate::packet::{AckInfo, EcnCodepoint, Packet, PacketKind};

    struct Blaster {
        dst: NodeId,
        n: u32,
        acked: u32,
    }
    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..self.n {
                ctx.send(Packet::data(
                    FlowId::from_raw(7),
                    ctx.node(),
                    self.dst,
                    (i as u64) * 1448,
                    1448,
                    EcnCodepoint::NotEct,
                ));
            }
        }
        fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx<'_>) {
            if matches!(pkt.kind, PacketKind::Ack(_)) {
                self.acked += 1;
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    }

    struct Sink;
    impl Agent for Sink {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            if pkt.is_data() {
                ctx.send(Packet::ack(
                    pkt.flow,
                    ctx.node(),
                    pkt.src,
                    AckInfo {
                        cum_ack: pkt.seq_end(),
                        ..AckInfo::default()
                    },
                ));
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    }

    #[test]
    fn dumbbell_carries_traffic_end_to_end() {
        let mut net = Network::new(11);
        let cfg = DumbbellConfig::default();
        let d = Dumbbell::build(&mut net, &cfg);
        net.attach_agent(
            d.senders[0],
            Box::new(Blaster {
                dst: d.receiver,
                n: 20,
                acked: 0,
            }),
        );
        net.attach_agent(d.receiver, Box::new(Sink));
        net.run();
        assert_eq!(net.agent::<Blaster>(d.senders[0]).unwrap().acked, 20);
        assert_eq!(net.link_stats(d.bottleneck).tx_pkts, 20);
    }

    #[test]
    fn bonded_uplinks_share_packets() {
        let mut net = Network::new(12);
        let cfg = DumbbellConfig::default();
        let d = Dumbbell::build(&mut net, &cfg);
        assert_eq!(d.uplinks[0].len(), 2);
        net.attach_agent(
            d.senders[0],
            Box::new(Blaster {
                dst: d.receiver,
                n: 10,
                acked: 0,
            }),
        );
        net.attach_agent(d.receiver, Box::new(Sink));
        net.run();
        assert_eq!(net.link_stats(d.uplinks[0][0]).tx_pkts, 5);
        assert_eq!(net.link_stats(d.uplinks[0][1]).tx_pkts, 5);
    }

    #[test]
    fn two_senders_get_distinct_hosts() {
        let mut net = Network::new(13);
        let cfg = DumbbellConfig {
            senders: 2,
            ..DumbbellConfig::default()
        };
        let d = Dumbbell::build(&mut net, &cfg);
        assert_eq!(d.senders.len(), 2);
        assert_ne!(d.senders[0], d.senders[1]);
        net.attach_agent(
            d.senders[0],
            Box::new(Blaster {
                dst: d.receiver,
                n: 5,
                acked: 0,
            }),
        );
        net.attach_agent(
            d.senders[1],
            Box::new(Blaster {
                dst: d.receiver,
                n: 5,
                acked: 0,
            }),
        );
        net.attach_agent(d.receiver, Box::new(Sink));
        net.run();
        assert_eq!(net.agent::<Blaster>(d.senders[0]).unwrap().acked, 5);
        assert_eq!(net.agent::<Blaster>(d.senders[1]).unwrap().acked, 5);
    }

    #[test]
    fn ecn_bottleneck_marks_capable_traffic() {
        let mut net = Network::new(14);
        let cfg = DumbbellConfig {
            bottleneck_queue: BottleneckQueue::EcnThreshold {
                capacity_bytes: 1_000_000,
                mark_bytes: 3_000,
            },
            ..DumbbellConfig::default()
        };
        let d = Dumbbell::build(&mut net, &cfg);

        struct EcnBlaster {
            dst: NodeId,
        }
        impl Agent for EcnBlaster {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // Burst enough to exceed the 3 KB threshold at the
                // bottleneck queue.
                for i in 0..50u64 {
                    ctx.send(Packet::data(
                        FlowId::from_raw(1),
                        ctx.node(),
                        self.dst,
                        i * 1448,
                        1448,
                        EcnCodepoint::Ect0,
                    ));
                }
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
        }

        net.attach_agent(d.senders[0], Box::new(EcnBlaster { dst: d.receiver }));
        net.attach_agent(d.receiver, Box::new(Sink));
        net.run();
        assert!(net.queue_stats(d.bottleneck).marked_pkts > 0);
    }

    #[test]
    fn base_rtt_is_four_hops() {
        let cfg = DumbbellConfig::default();
        assert_eq!(Dumbbell::base_rtt(&cfg), SimDuration::from_micros(100));
    }
}
