//! Simulation clock primitives.
//!
//! The simulator uses an integer nanosecond clock so that event ordering is
//! exact and runs are bit-for-bit reproducible. [`SimTime`] is an absolute
//! instant measured from the start of the simulation; [`SimDuration`] is a
//! span between two instants. Both are thin wrappers around `u64`
//! nanoseconds with saturating/checked arithmetic where it matters.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute simulation instant, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span; useful as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimDuration cannot be negative");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Multiply by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Exact span from `rhs` to `self`. Panics in debug builds if `rhs`
    /// is later than `self`; use [`SimTime::saturating_since`] when the
    /// ordering is uncertain.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        debug_assert!(rhs >= 0.0);
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(11).as_nanos(), 11);
    }

    #[test]
    fn duration_construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
    }

    #[test]
    fn fractional_seconds_roundtrip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);

        let d = SimDuration::from_secs_f64(0.5);
        assert_eq!(d.as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_nanos(), 1_250_000_000);
        assert_eq!(((t + d) - t).as_nanos(), d.as_nanos());
        assert_eq!((t + d) - d, t);

        let mut t2 = t;
        t2 += d;
        assert_eq!(t2, t + d);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!((d * 3u64).as_nanos(), 30_000);
        assert_eq!((d * 0.5).as_nanos(), 5_000);
        assert_eq!((d / 2).as_nanos(), 5_000);
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_nanos(1) < SimDuration::from_nanos(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000000s");
    }
}
