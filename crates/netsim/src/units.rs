//! Rate and size units.
//!
//! Link speeds and throughputs are expressed as [`Rate`] (bits per second,
//! stored as `f64`). Byte counts are plain `u64`; this module provides the
//! conversion helpers the rest of the workspace uses so that Gbit/GByte
//! confusion cannot creep in silently.

use crate::time::SimDuration;
use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

/// A data rate in bits per second.
///
/// Rates are non-negative; construction from a negative value is a logic
/// error and panics in debug builds.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// Zero rate (an idle sender).
    pub const ZERO: Rate = Rate(0.0);

    /// Construct from bits per second.
    #[inline]
    pub fn from_bps(bps: f64) -> Self {
        debug_assert!(bps >= 0.0, "rates are non-negative");
        Rate(bps)
    }

    /// Construct from kilobits per second (10^3 bits).
    #[inline]
    pub fn from_kbps(kbps: f64) -> Self {
        Rate::from_bps(kbps * 1e3)
    }

    /// Construct from megabits per second (10^6 bits).
    #[inline]
    pub fn from_mbps(mbps: f64) -> Self {
        Rate::from_bps(mbps * 1e6)
    }

    /// Construct from gigabits per second (10^9 bits).
    #[inline]
    pub fn from_gbps(gbps: f64) -> Self {
        Rate::from_bps(gbps * 1e9)
    }

    /// The rate in bits per second.
    #[inline]
    pub fn bps(self) -> f64 {
        self.0
    }

    /// The rate in gigabits per second.
    #[inline]
    pub fn gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// The rate in bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// Time to serialize `bytes` at this rate.
    ///
    /// Returns [`SimDuration::MAX`] for a zero rate: nothing ever finishes
    /// on a zero-speed link.
    #[inline]
    pub fn serialization_time(self, bytes: u64) -> SimDuration {
        if self.0 <= 0.0 {
            return SimDuration::MAX;
        }
        let secs = (bytes as f64 * 8.0) / self.0;
        SimDuration::from_secs_f64(secs)
    }

    /// How many bytes are transferred at this rate during `d`.
    #[inline]
    pub fn bytes_in(self, d: SimDuration) -> f64 {
        self.bytes_per_sec() * d.as_secs_f64()
    }

    /// True if this rate is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }

    /// The smaller of two rates.
    #[inline]
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }

    /// The larger of two rates.
    #[inline]
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }
}

impl Add for Rate {
    type Output = Rate;
    #[inline]
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl Sub for Rate {
    type Output = Rate;
    #[inline]
    fn sub(self, rhs: Rate) -> Rate {
        Rate((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn mul(self, rhs: f64) -> Rate {
        debug_assert!(rhs >= 0.0);
        Rate(self.0 * rhs)
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn div(self, rhs: f64) -> Rate {
        debug_assert!(rhs > 0.0);
        Rate(self.0 / rhs)
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3}Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3}Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3}Kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.1}bps", self.0)
        }
    }
}

/// Bytes in one kibibyte-free, paper-style "KB" (10^3). The paper reports
/// data volumes in decimal units (50 GB = 50 * 10^9 bytes), so we follow it.
pub const KB: u64 = 1_000;
/// Decimal megabyte (10^6 bytes).
pub const MB: u64 = 1_000_000;
/// Decimal gigabyte (10^9 bytes), as used for the paper's 50 GB transfers.
pub const GB: u64 = 1_000_000_000;

/// Compute an average rate from a byte count over a span.
///
/// Returns [`Rate::ZERO`] for a zero-length span.
#[inline]
pub fn average_rate(bytes: u64, over: SimDuration) -> Rate {
    let secs = over.as_secs_f64();
    if secs <= 0.0 {
        return Rate::ZERO;
    }
    Rate::from_bps(bytes as f64 * 8.0 / secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn rate_conversions() {
        let r = Rate::from_gbps(10.0);
        assert_eq!(r.bps(), 10e9);
        assert_eq!(r.gbps(), 10.0);
        assert_eq!(r.bytes_per_sec(), 1.25e9);
        assert_eq!(Rate::from_mbps(1.0).bps(), 1e6);
        assert_eq!(Rate::from_kbps(1.0).bps(), 1e3);
    }

    #[test]
    fn serialization_time_is_exact_for_common_cases() {
        // 1500 bytes at 10 Gbps = 1.2 us.
        let d = Rate::from_gbps(10.0).serialization_time(1500);
        assert_eq!(d.as_nanos(), 1_200);
        // 9000 bytes at 10 Gbps = 7.2 us.
        let d = Rate::from_gbps(10.0).serialization_time(9000);
        assert_eq!(d.as_nanos(), 7_200);
    }

    #[test]
    fn zero_rate_never_finishes() {
        assert_eq!(Rate::ZERO.serialization_time(1), SimDuration::MAX);
        assert!(Rate::ZERO.is_zero());
    }

    #[test]
    fn bytes_in_duration() {
        let r = Rate::from_gbps(8.0); // 1 GB/s
        let b = r.bytes_in(SimDuration::from_millis(10));
        assert!((b - 10e6).abs() < 1.0);
    }

    #[test]
    fn average_rate_inverts_serialization() {
        let r = average_rate(1_250_000_000, SimDuration::from_secs(1));
        assert!((r.gbps() - 10.0).abs() < 1e-9);
        assert_eq!(average_rate(10, SimDuration::ZERO), Rate::ZERO);
    }

    #[test]
    fn rate_arithmetic_saturates_at_zero() {
        let a = Rate::from_gbps(1.0);
        let b = Rate::from_gbps(2.0);
        assert_eq!((a - b), Rate::ZERO);
        assert!((b - a).gbps() > 0.99);
        assert_eq!((a + a).gbps(), 2.0);
        assert_eq!((b * 0.5).gbps(), 1.0);
        assert_eq!((b / 2.0).gbps(), 1.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Rate::from_gbps(10.0)), "10.000Gbps");
        assert_eq!(format!("{}", Rate::from_mbps(10.0)), "10.000Mbps");
        assert_eq!(format!("{}", Rate::from_kbps(10.0)), "10.000Kbps");
        assert_eq!(format!("{}", Rate::from_bps(10.0)), "10.0bps");
    }
}
