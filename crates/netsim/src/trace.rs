//! Measurement instrumentation.
//!
//! Two recorders feed the experiments:
//!
//! * [`FlowTrace`] — per-flow delivered-payload time series, binned at a
//!   configurable interval. This regenerates the paper's throughput-vs-time
//!   plots (Fig. 3) and per-flow average throughputs.
//! * [`HostActivity`] — per-host transmit/receive work time series (bytes
//!   and packets, binned). The energy model integrates power over these
//!   bins, exactly as RAPL integrates over the experiment interval.

use crate::ids::{FlowId, NodeId};
use crate::time::{SimDuration, SimTime};
use crate::units::Rate;
use std::collections::BTreeMap;

/// Per-flow delivered-bytes recorder.
#[derive(Debug)]
pub struct FlowTrace {
    bin: SimDuration,
    /// flow -> per-bin delivered payload bytes
    bins: BTreeMap<FlowId, Vec<u64>>,
    /// flow -> (first delivery time, last delivery time, total payload)
    totals: BTreeMap<FlowId, (SimTime, SimTime, u64)>,
}

impl FlowTrace {
    /// Create a trace with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        assert!(!bin.is_zero(), "trace bin must be positive");
        FlowTrace {
            bin,
            bins: BTreeMap::new(),
            totals: BTreeMap::new(),
        }
    }

    /// Bin width.
    pub fn bin(&self) -> SimDuration {
        self.bin
    }

    /// Record `payload` bytes of flow `flow` delivered at `now`.
    pub fn record(&mut self, flow: FlowId, now: SimTime, payload: u64) {
        let idx = (now.as_nanos() / self.bin.as_nanos()) as usize;
        let bins = self.bins.entry(flow).or_default();
        if bins.len() <= idx {
            bins.resize(idx + 1, 0);
        }
        bins[idx] += payload;
        let entry = self.totals.entry(flow).or_insert((now, now, 0));
        entry.1 = now;
        entry.2 += payload;
    }

    /// The delivered-bytes series for a flow (empty if never seen).
    pub fn series(&self, flow: FlowId) -> &[u64] {
        self.bins.get(&flow).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The throughput series for a flow in Gbps, one point per bin.
    ///
    /// Delegates to [`obs::series::throughput_gbps`], the workspace's
    /// single home for this conversion: the final bin is scaled by the
    /// width it actually covers (up to the flow's last delivery) rather
    /// than the full bin width, so a flow finishing mid-bin no longer
    /// shows a truncated closing rate.
    pub fn throughput_gbps(&self, flow: FlowId) -> Vec<f64> {
        let end_ns = self
            .totals
            .get(&flow)
            .map(|&(_, last, _)| last.as_nanos())
            .unwrap_or(0);
        obs::series::throughput_gbps(self.series(flow), self.bin.as_nanos(), end_ns)
    }

    /// Total payload bytes delivered for a flow.
    pub fn total_bytes(&self, flow: FlowId) -> u64 {
        self.totals.get(&flow).map(|t| t.2).unwrap_or(0)
    }

    /// Average delivery rate of a flow between its first and last delivery.
    pub fn average_rate(&self, flow: FlowId) -> Rate {
        match self.totals.get(&flow) {
            Some(&(first, last, bytes)) if last > first => {
                crate::units::average_rate(bytes, last - first)
            }
            _ => Rate::ZERO,
        }
    }

    /// All flows that delivered at least one byte.
    pub fn flows(&self) -> Vec<FlowId> {
        let mut v: Vec<_> = self.bins.keys().copied().collect();
        v.sort();
        v
    }
}

/// One bin of a host's network work.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ActivityBin {
    /// Wire bytes transmitted by the host in this bin.
    pub tx_bytes: u64,
    /// Packets transmitted.
    pub tx_pkts: u64,
    /// Wire bytes received.
    pub rx_bytes: u64,
    /// Packets received.
    pub rx_pkts: u64,
    /// Pure acknowledgements received.
    pub acks_rx: u64,
    /// Retransmitted data packets transmitted.
    pub retx_pkts: u64,
}

/// Lifetime totals of a host's network work.
#[derive(Clone, Copy, Debug, Default)]
pub struct ActivityTotals {
    /// Wire bytes transmitted.
    pub tx_bytes: u64,
    /// Packets transmitted.
    pub tx_pkts: u64,
    /// Retransmitted data packets transmitted.
    pub retx_pkts: u64,
    /// Wire bytes received.
    pub rx_bytes: u64,
    /// Packets received.
    pub rx_pkts: u64,
    /// Pure acknowledgements received (the ack-processing cost driver).
    pub acks_rx: u64,
}

/// Per-host binned transmit/receive activity.
#[derive(Debug)]
pub struct HostActivity {
    bin: SimDuration,
    /// host -> bins
    bins: BTreeMap<NodeId, Vec<ActivityBin>>,
    totals: BTreeMap<NodeId, ActivityTotals>,
}

impl HostActivity {
    /// Create a recorder with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        assert!(!bin.is_zero(), "activity bin must be positive");
        HostActivity {
            bin,
            bins: BTreeMap::new(),
            totals: BTreeMap::new(),
        }
    }

    /// Bin width.
    pub fn bin(&self) -> SimDuration {
        self.bin
    }

    fn bin_mut(&mut self, host: NodeId, now: SimTime) -> &mut ActivityBin {
        let idx = (now.as_nanos() / self.bin.as_nanos()) as usize;
        let bins = self.bins.entry(host).or_default();
        if bins.len() <= idx {
            bins.resize(idx + 1, ActivityBin::default());
        }
        &mut bins[idx]
    }

    /// Record a transmission starting at `now` from `host`.
    pub fn record_tx(&mut self, host: NodeId, now: SimTime, wire_bytes: u64, is_retx: bool) {
        let b = self.bin_mut(host, now);
        b.tx_bytes += wire_bytes;
        b.tx_pkts += 1;
        if is_retx {
            b.retx_pkts += 1;
        }
        let t = self.totals.entry(host).or_default();
        t.tx_bytes += wire_bytes;
        t.tx_pkts += 1;
        if is_retx {
            t.retx_pkts += 1;
        }
    }

    /// Record a packet received by `host` at `now`.
    pub fn record_rx(&mut self, host: NodeId, now: SimTime, wire_bytes: u64, is_ack: bool) {
        let b = self.bin_mut(host, now);
        b.rx_bytes += wire_bytes;
        b.rx_pkts += 1;
        if is_ack {
            b.acks_rx += 1;
        }
        let t = self.totals.entry(host).or_default();
        t.rx_bytes += wire_bytes;
        t.rx_pkts += 1;
        if is_ack {
            t.acks_rx += 1;
        }
    }

    /// The activity series for a host (empty if it never moved a packet).
    pub fn series(&self, host: NodeId) -> &[ActivityBin] {
        self.bins.get(&host).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Lifetime totals for a host.
    pub fn totals(&self, host: NodeId) -> ActivityTotals {
        self.totals.get(&host).copied().unwrap_or_default()
    }

    /// All hosts with recorded activity.
    pub fn hosts(&self) -> Vec<NodeId> {
        let mut v: Vec<_> = self.bins.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FlowId = FlowId::from_raw(1);
    const H: NodeId = NodeId::from_raw(0);

    #[test]
    fn flow_trace_bins_bytes() {
        let mut t = FlowTrace::new(SimDuration::from_millis(10));
        t.record(F, SimTime::from_millis(1), 100);
        t.record(F, SimTime::from_millis(9), 200);
        t.record(F, SimTime::from_millis(15), 300);
        assert_eq!(t.series(F), &[300, 300]);
        assert_eq!(t.total_bytes(F), 600);
    }

    #[test]
    fn flow_trace_throughput_conversion() {
        let mut t = FlowTrace::new(SimDuration::from_millis(10));
        // 12.5 MB across the full first bin = 10 Gbps...
        t.record(F, SimTime::from_millis(5), 12_500_000);
        // ...then 12.5 MB more, but the flow stops 5 ms into bin 1: the
        // final bin is scaled by the width it covered, not truncated to
        // half the true closing rate.
        t.record(F, SimTime::from_millis(15), 12_500_000);
        let series = t.throughput_gbps(F);
        assert_eq!(series.len(), 2);
        assert!((series[0] - 10.0).abs() < 1e-9);
        assert!((series[1] - 20.0).abs() < 1e-9, "partial final bin");
    }

    #[test]
    fn flow_trace_average_rate() {
        let mut t = FlowTrace::new(SimDuration::from_millis(1));
        t.record(F, SimTime::from_secs(0), 0);
        t.record(F, SimTime::from_secs(1), 1_250_000_000);
        // 1.25 GB over 1 s = 10 Gbps.
        assert!((t.average_rate(F).gbps() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn flow_trace_unknown_flow_is_empty() {
        let t = FlowTrace::new(SimDuration::from_millis(10));
        assert!(t.series(F).is_empty());
        assert_eq!(t.total_bytes(F), 0);
        assert!(t.average_rate(F).is_zero());
        assert!(t.flows().is_empty());
    }

    #[test]
    fn host_activity_accumulates() {
        let mut a = HostActivity::new(SimDuration::from_millis(1));
        a.record_tx(H, SimTime::from_micros(100), 1500, false);
        a.record_tx(H, SimTime::from_micros(200), 1500, true);
        a.record_rx(H, SimTime::from_micros(300), 64, true);
        let bins = a.series(H);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].tx_bytes, 3000);
        assert_eq!(bins[0].tx_pkts, 2);
        assert_eq!(bins[0].rx_pkts, 1);
        assert_eq!(bins[0].retx_pkts, 1);
        assert_eq!(bins[0].acks_rx, 1);
        let t = a.totals(H);
        assert_eq!(t.retx_pkts, 1);
        assert_eq!(t.acks_rx, 1);
        assert_eq!(a.hosts(), vec![H]);
    }

    #[test]
    fn host_activity_bins_by_time() {
        let mut a = HostActivity::new(SimDuration::from_millis(1));
        a.record_tx(H, SimTime::from_micros(500), 100, false);
        a.record_tx(H, SimTime::from_millis(3), 200, false);
        let bins = a.series(H);
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[0].tx_bytes, 100);
        assert_eq!(bins[1], ActivityBin::default());
        assert_eq!(bins[3].tx_bytes, 200);
    }
}
