//! Host agents.
//!
//! Hosts run an [`Agent`]: the engine calls it when a packet arrives at the
//! host or a timer the agent armed fires. Agents interact with the network
//! only through [`Ctx`], which exposes the clock, packet transmission,
//! timers, and a per-node RNG stream. The transport layer implements
//! `Agent`; so can any custom application an example wants to model.

use crate::ids::NodeId;
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::any::Any;

/// Behaviour attached to a host node.
///
/// Agents must be `Any` so callers can recover their concrete type after a
/// run (e.g. to read an iperf client's final report).
pub trait Agent: Any {
    /// Called once when the simulation starts, before any events fire.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// A packet addressed to this host has arrived.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);

    /// A timer armed via [`Ctx::set_timer_after`] has fired. `token` is the
    /// value passed when arming; agents use it to distinguish timer kinds
    /// and detect stale timers.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>);

    /// A batch of packets that arrived at this host in the same dispatch
    /// round (identical arrival timestamp, consecutive event order). The
    /// engine hands the whole run to the agent in one call so composite
    /// agents can amortize per-dispatch setup (one flow-table walk, one
    /// recorder borrow) across the batch.
    ///
    /// The default implementation preserves per-packet semantics exactly:
    /// it calls [`Agent::on_packet`] once per packet, in delivery order,
    /// resetting the timer-token namespace before each — precisely what N
    /// separate engine dispatches would have done. Overrides must keep
    /// that equivalence: process packets in order, consume all of them,
    /// and leave `pkts` empty.
    fn on_packets(&mut self, pkts: &mut Vec<Packet>, ctx: &mut Ctx<'_>) {
        for pkt in pkts.drain(..) {
            ctx.set_token_namespace(0);
            self.on_packet(pkt, ctx);
        }
    }
}

/// Commands an agent issues during a callback; applied by the engine
/// immediately after the callback returns.
#[derive(Debug)]
pub(crate) enum AgentCommand {
    Send(Packet),
    SetTimer { at: SimTime, token: u64 },
    Stop,
}

/// The agent's window into the simulation.
///
/// `Ctx` buffers commands rather than mutating engine state directly; this
/// keeps callbacks free of aliasing gymnastics and makes every effect of a
/// callback take hold at one well-defined instant.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) commands: &'a mut Vec<AgentCommand>,
    /// Timer-token namespace for composite agents; see
    /// [`Ctx::set_token_namespace`]. Reset to 0 for every dispatch.
    pub(crate) token_ns: u16,
}

/// Bits of a timer token available to the agent itself; the top 16 bits
/// carry the [`Ctx::set_token_namespace`] tag.
pub const TOKEN_BITS: u32 = 48;

/// Mask selecting the agent-visible part of a token.
pub const TOKEN_MASK: u64 = (1 << TOKEN_BITS) - 1;

impl Ctx<'_> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this agent is attached to.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Transmit a packet from this node. The packet is routed by its `dst`
    /// field; `sent_at` is stamped with the current time.
    pub fn send(&mut self, mut pkt: Packet) {
        pkt.sent_at = self.now;
        self.commands.push(AgentCommand::Send(pkt));
    }

    /// Arm a timer to fire `after` from now, delivering `token` to
    /// [`Agent::on_timer`]. Timers cannot be cancelled; agents ignore
    /// stale tokens instead (the standard DES idiom).
    pub fn set_timer_after(&mut self, after: SimDuration, token: u64) {
        self.set_timer_at(self.now + after, token);
    }

    /// Arm a timer for an absolute instant (must not be in the past).
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        debug_assert!(at >= self.now, "timer armed in the past");
        debug_assert!(token <= TOKEN_MASK, "token overflows the namespace");
        self.commands.push(AgentCommand::SetTimer {
            at,
            token: token | (self.token_ns as u64) << TOKEN_BITS,
        });
    }

    /// Set the timer-token namespace: tokens armed from now on carry this
    /// tag in their top 16 bits. Composite agents (e.g. a multiplexer of
    /// several transport state machines on one host) tag each sub-agent's
    /// timers so they can dispatch firings back to the right one. Resets
    /// to 0 on every engine dispatch.
    pub fn set_token_namespace(&mut self, ns: u16) {
        self.token_ns = ns;
    }

    /// Request that the simulation stop after this callback.
    pub fn request_stop(&mut self) {
        self.commands.push(AgentCommand::Stop);
    }

    /// This node's deterministic RNG stream.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Network;
    use crate::time::SimDuration;

    /// A composite agent that arms one timer in each of two namespaces
    /// and records which namespaces fire back.
    struct NsAgent {
        fired: Vec<(u16, u64)>,
    }
    impl Agent for NsAgent {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_token_namespace(1);
            ctx.set_timer_after(SimDuration::from_micros(10), 7);
            ctx.set_token_namespace(2);
            ctx.set_timer_after(SimDuration::from_micros(20), 7);
            ctx.set_token_namespace(0);
            ctx.set_timer_after(SimDuration::from_micros(30), 7);
        }
        fn on_packet(&mut self, _p: crate::packet::Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_>) {
            self.fired
                .push(((token >> TOKEN_BITS) as u16, token & TOKEN_MASK));
        }
    }

    #[test]
    fn token_namespaces_roundtrip_through_timers() {
        let mut net = Network::new(1);
        let host = net.add_host();
        net.attach_agent(host, Box::new(NsAgent { fired: Vec::new() }));
        net.run();
        let fired = &net.agent::<NsAgent>(host).unwrap().fired;
        assert_eq!(fired, &vec![(1, 7), (2, 7), (0, 7)]);
    }

    #[test]
    fn namespace_resets_between_dispatches() {
        // The second dispatch (a timer) arms without setting a namespace:
        // it must default back to 0 even though the previous dispatch set 2.
        struct ResetProbe {
            second_token: Option<u64>,
        }
        impl Agent for ResetProbe {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_token_namespace(2);
                ctx.set_timer_after(SimDuration::from_micros(1), 1);
            }
            fn on_packet(&mut self, _p: crate::packet::Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
                if token >> TOKEN_BITS == 2 {
                    // Re-arm WITHOUT setting a namespace.
                    ctx.set_timer_after(SimDuration::from_micros(1), 5);
                } else {
                    self.second_token = Some(token);
                }
            }
        }
        let mut net = Network::new(2);
        let host = net.add_host();
        net.attach_agent(host, Box::new(ResetProbe { second_token: None }));
        net.run();
        let probe = net.agent::<ResetProbe>(host).unwrap();
        assert_eq!(probe.second_token, Some(5), "namespace must reset to 0");
    }
}
