//! In-band telemetry substrate tests: hops stamp data packets with queue
//! occupancy and utilization, and the most-utilized hop's record wins.

use netsim::prelude::*;

/// Sends `n` packets at start; records every data packet's INT on arrival.
struct Blast {
    dst: NodeId,
    n: u32,
}
impl Agent for Blast {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.n {
            ctx.send(Packet::data(
                FlowId::from_raw(1),
                ctx.node(),
                self.dst,
                i as u64 * 1460,
                1460,
                EcnCodepoint::NotEct,
            ));
        }
    }
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_>) {}
}

struct IntSink {
    records: Vec<IntRecord>,
}
impl Agent for IntSink {
    fn on_packet(&mut self, p: Packet, _ctx: &mut Ctx<'_>) {
        if p.is_data() {
            self.records.push(p.int);
        }
    }
    fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_>) {}
}

fn run_blast(n: u32) -> Vec<IntRecord> {
    let mut net = Network::new(17);
    let d = Dumbbell::build(&mut net, &DumbbellConfig::default());
    net.attach_agent(d.senders[0], Box::new(Blast { dst: d.receiver, n }));
    net.attach_agent(
        d.receiver,
        Box::new(IntSink {
            records: Vec::new(),
        }),
    );
    net.run();
    net.agent::<IntSink>(d.receiver).unwrap().records.clone()
}

#[test]
fn every_delivered_packet_is_stamped() {
    let records = run_blast(50);
    assert_eq!(records.len(), 50);
    for r in &records {
        assert!(r.is_stamped(), "all hops are INT-capable");
        assert_eq!(r.link_mbps, 10_000, "the winning hop runs at 10 Gb/s");
        assert!(r.util_x1000 <= 1000);
    }
}

#[test]
fn queue_buildup_appears_in_telemetry() {
    // A 200-packet burst into the 10 Gb/s bottleneck behind bonded
    // 2x10 Gb/s uplinks: the bottleneck queue must grow and later packets
    // must report deeper occupancy than the first.
    let records = run_blast(200);
    let first = &records[0];
    let deepest = records.iter().map(|r| r.queue_bytes).max().unwrap();
    assert!(
        deepest > first.queue_bytes + 50_000,
        "queue must visibly build: first {} deepest {deepest}",
        first.queue_bytes
    );
}

#[test]
fn normalized_utilization_is_plausible() {
    let records = run_blast(200);
    // Near the end of the burst the bottleneck is saturated with a
    // standing queue: U should exceed the DCQCN/HPCC target band.
    let last = records.last().unwrap();
    let u = last.normalized_utilization(100e-6);
    assert!(
        u > 0.9,
        "saturated hop must report high utilization: {u:.2}"
    );
    // And an unstamped record reports zero.
    assert_eq!(IntRecord::default().normalized_utilization(100e-6), 0.0);
}

#[test]
fn acks_are_not_stamped() {
    // Acks are control traffic; the INT hook only touches data packets.
    struct AckProbe {
        peer: NodeId,
        stamped_acks: u32,
        acks: u32,
    }
    impl Agent for AckProbe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..10u64 {
                ctx.send(Packet::data(
                    FlowId::from_raw(2),
                    ctx.node(),
                    self.peer,
                    i * 1000,
                    1000,
                    EcnCodepoint::NotEct,
                ));
            }
        }
        fn on_packet(&mut self, p: Packet, _ctx: &mut Ctx<'_>) {
            if !p.is_data() {
                self.acks += 1;
                if p.int.is_stamped() {
                    self.stamped_acks += 1;
                }
            }
        }
        fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_>) {}
    }
    struct Echo;
    impl Agent for Echo {
        fn on_packet(&mut self, p: Packet, ctx: &mut Ctx<'_>) {
            if p.is_data() {
                ctx.send(Packet::ack(p.flow, ctx.node(), p.src, AckInfo::default()));
            }
        }
        fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_>) {}
    }

    let mut net = Network::new(23);
    let d = Dumbbell::build(&mut net, &DumbbellConfig::default());
    net.attach_agent(
        d.senders[0],
        Box::new(AckProbe {
            peer: d.receiver,
            stamped_acks: 0,
            acks: 0,
        }),
    );
    net.attach_agent(d.receiver, Box::new(Echo));
    net.run();
    let probe = net.agent::<AckProbe>(d.senders[0]).unwrap();
    assert_eq!(probe.acks, 10);
    assert_eq!(probe.stamped_acks, 0);
}

#[test]
fn packet_log_captures_drops_and_deliveries() {
    let mut net = Network::new(31);
    let cfg = DumbbellConfig {
        bottleneck_queue: BottleneckQueue::DropTail {
            capacity_bytes: 20_000,
        },
        ..DumbbellConfig::default()
    };
    let d = Dumbbell::build(&mut net, &cfg);
    net.enable_packet_log(10_000);
    net.attach_agent(
        d.senders[0],
        Box::new(Blast {
            dst: d.receiver,
            n: 100,
        }),
    );
    net.attach_agent(
        d.receiver,
        Box::new(IntSink {
            records: Vec::new(),
        }),
    );
    net.run();
    let log = net.packet_log().unwrap();
    let drops = log.of_kind(PacketEventKind::Dropped).len() as u64;
    let delivered = log.of_kind(PacketEventKind::Delivered).len() as u64;
    assert_eq!(drops, net.network_stats().dropped_pkts);
    assert_eq!(drops + delivered, 100);
    assert!(log.render().contains("dropped"));
    // Every logged event belongs to the one flow we sent.
    assert_eq!(log.for_flow(FlowId::from_raw(1)).len(), log.len());
}
