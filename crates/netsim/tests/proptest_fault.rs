//! Property-based tests of the fault-injection layer: frame conservation
//! under arbitrary fault specs, the injected/congestive drop dichotomy,
//! and bit-exact replay of faulted runs.

use netsim::prelude::*;
use proptest::prelude::*;

/// Blasts `n` fixed-size data packets at `dst` from `on_start`.
struct Blast {
    dst: NodeId,
    n: u32,
}
impl Agent for Blast {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.n {
            ctx.send(Packet::data(
                FlowId::from_raw(1),
                ctx.node(),
                self.dst,
                i as u64 * 1460,
                1460,
                EcnCodepoint::NotEct,
            ));
        }
    }
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_>) {}
}

/// Counts data packets that reach the agent (corrupted frames are
/// discarded by the engine before dispatch, so they never show up here).
struct Count {
    seen: u64,
}
impl Agent for Count {
    fn on_packet(&mut self, p: Packet, _ctx: &mut Ctx<'_>) {
        if p.is_data() {
            self.seen += 1;
        }
    }
    fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_>) {}
}

/// A random (but always valid) fault spec: probabilities inside [0, 1],
/// non-empty flap windows, and jitter below the 25 us link delay the
/// harness uses. (The vendored proptest only implements `Strategy` for
/// tuples up to arity 5, hence the nesting.)
fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    (
        (0.0f64..0.5, 0.0f64..0.3, 0.0f64..0.3),
        (0.0f64..0.5, 0u64..200_000, 0u64..25_000),
        proptest::option::of((0u64..5_000_000, 1u64..5_000_000)),
    )
        .prop_map(
            |((drop, corrupt, dup), (reorder, reorder_ns, jitter_ns), flap)| {
                let mut spec = FaultSpec::random_loss(drop)
                    .with_corruption(corrupt)
                    .with_duplication(dup)
                    .with_reordering(reorder, SimDuration::from_nanos(reorder_ns))
                    .with_jitter(SimDuration::from_nanos(jitter_ns));
                if let Some((down_ns, len_ns)) = flap {
                    spec = spec.with_flap(
                        SimTime::from_nanos(down_ns),
                        SimTime::from_nanos(down_ns + len_ns),
                    );
                }
                spec
            },
        )
}

/// Two hosts, one faulted link, ample buffer (no congestive drops).
/// Returns (agent-seen frames, per-link stats, congestive drops,
/// corrupt discards).
fn faulted_run(spec: &FaultSpec, n: u32, seed: u64) -> (u64, LinkStats, u64, u64) {
    let mut net = Network::new(seed);
    let a = net.add_host();
    let b = net.add_host();
    let ab = net.add_link(
        a,
        b,
        LinkSpec::droptail(Rate::from_gbps(10.0), SimDuration::from_micros(25), 64 * MB),
    );
    net.add_route(a, b, ab);
    net.set_link_fault(ab, spec.clone())
        .expect("valid fault spec");
    net.enable_packet_log(200_000);
    net.attach_agent(a, Box::new(Blast { dst: b, n }));
    net.attach_agent(b, Box::new(Count { seen: 0 }));
    net.run();
    let seen = net.agent::<Count>(b).unwrap().seen;
    let discarded = net
        .packet_log()
        .expect("log enabled")
        .of_kind(PacketEventKind::CorruptDiscard)
        .len() as u64;
    (
        seen,
        net.link_stats(ab),
        net.network_stats().dropped_pkts,
        discarded,
    )
}

proptest! {
    /// Frame conservation under any fault spec: every frame serialized
    /// onto the wire is delivered to the agent, discarded as corrupt at
    /// the host, or dropped by the fault layer — and duplicates add
    /// exactly one extra arrival each. Nothing vanishes, nothing is
    /// double-counted.
    #[test]
    fn faulted_link_conserves_frames(
        spec in arb_spec(),
        n in 1u32..400,
        seed in 0u64..50,
    ) {
        let (seen, link, congestive, discarded) = faulted_run(&spec, n, seed);
        // The wire serialized every blast frame exactly once (duplication
        // clones the arrival, not the transmission).
        prop_assert_eq!(link.tx_pkts, n as u64);
        prop_assert_eq!(
            seen + discarded + link.injected_drops,
            n as u64 + link.injected_dups,
            "arrivals + drops must balance transmissions + duplicates"
        );
        // With an ample buffer, nothing is congestive: the fault layer
        // and the queue never claim the same loss.
        prop_assert_eq!(congestive, 0);
    }

    /// Injected and congestive drops stay disjoint even when the queue
    /// *is* overflowing: the two tallies sum to total losses with no
    /// frame counted twice (fault injection happens strictly after a
    /// frame has escaped the queue).
    #[test]
    fn injected_and_congestive_drops_are_disjoint(
        drop_prob in 0.0f64..0.5,
        n in 50u32..400,
        seed in 0u64..50,
    ) {
        let mut net = Network::new(seed);
        let a = net.add_host();
        let b = net.add_host();
        // Tiny buffer: the burst overflows it before serialization.
        let ab = net.add_link(
            a,
            b,
            LinkSpec::droptail(Rate::from_gbps(1.0), SimDuration::from_micros(25), 10_000),
        );
        net.add_route(a, b, ab);
        net.set_link_fault(ab, FaultSpec::random_loss(drop_prob))
            .expect("valid fault spec");
        net.attach_agent(a, Box::new(Blast { dst: b, n }));
        net.attach_agent(b, Box::new(Count { seen: 0 }));
        net.run();
        let seen = net.agent::<Count>(b).unwrap().seen;
        let link = net.link_stats(ab);
        let congestive = net.network_stats().dropped_pkts;
        // Congestive drops never reached the wire; injected drops did.
        prop_assert_eq!(link.tx_pkts, n as u64 - congestive);
        prop_assert_eq!(seen + link.injected_drops, link.tx_pkts);
        prop_assert!(congestive > 0, "the buffer must overflow");
    }

    /// Bit-exact replay: the same spec and seed produce identical
    /// delivery counts and fault tallies every time.
    #[test]
    fn faulted_runs_replay_bit_identically(
        spec in arb_spec(),
        n in 1u32..200,
        seed in 0u64..50,
    ) {
        let (seen_a, link_a, cong_a, disc_a) = faulted_run(&spec, n, seed);
        let (seen_b, link_b, cong_b, disc_b) = faulted_run(&spec, n, seed);
        prop_assert_eq!(seen_a, seen_b);
        prop_assert_eq!(cong_a, cong_b);
        prop_assert_eq!(disc_a, disc_b);
        prop_assert_eq!(link_a.injected_drops, link_b.injected_drops);
        prop_assert_eq!(link_a.injected_corrupts, link_b.injected_corrupts);
        prop_assert_eq!(link_a.injected_dups, link_b.injected_dups);
        prop_assert_eq!(link_a.injected_reorders, link_b.injected_reorders);
    }
}
