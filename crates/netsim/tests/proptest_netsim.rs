//! Property-based tests of the simulator substrate: queue conservation,
//! SACK-block bookkeeping, and end-to-end packet conservation through a
//! random dumbbell.

use netsim::prelude::*;
use proptest::prelude::*;

fn data_packet(seq: u64, payload: u32) -> Packet {
    Packet::data(
        FlowId::from_raw(0),
        NodeId::from_raw(0),
        NodeId::from_raw(1),
        seq,
        payload,
        EcnCodepoint::NotEct,
    )
}

proptest! {
    /// Drop-tail queues conserve packets: everything enqueued is either
    /// dequeued or counted dropped, and byte accounting matches.
    #[test]
    fn droptail_conserves_packets(
        capacity in 2_000u64..100_000,
        sizes in proptest::collection::vec(100u32..9_000, 1..200),
        drain_every in 1usize..8,
    ) {
        let mut q = DropTailQueue::new(capacity);
        let mut pool = FramePool::new();
        let mut accepted = 0u64;
        let mut dequeued = 0u64;
        for (i, &payload) in sizes.iter().enumerate() {
            let frame = pool.alloc(data_packet(i as u64, payload));
            match q.enqueue(frame, &mut pool, SimTime::ZERO) {
                EnqueueOutcome::Enqueued | EnqueueOutcome::EnqueuedMarked => accepted += 1,
                EnqueueOutcome::Dropped => pool.release(frame),
            }
            if i % drain_every == 0 {
                if let Some(r) = q.dequeue(SimTime::ZERO) {
                    pool.release(r);
                    dequeued += 1;
                }
            }
            prop_assert!(q.len_bytes() <= capacity, "capacity respected");
        }
        while let Some(r) = q.dequeue(SimTime::ZERO) {
            pool.release(r);
            dequeued += 1;
        }
        prop_assert_eq!(pool.live(), 0, "every frame accounted for");
        let stats = q.stats();
        prop_assert_eq!(accepted, dequeued);
        prop_assert_eq!(stats.enqueued_pkts + stats.dropped_pkts, sizes.len() as u64);
        prop_assert_eq!(q.len_bytes(), 0);
    }

    /// ECN threshold queues never drop an ECN-capable packet unless the
    /// buffer is genuinely full, and never mark below the threshold.
    #[test]
    fn ecn_queue_marks_instead_of_dropping(
        sizes in proptest::collection::vec(100u32..1_400, 1..150),
    ) {
        let capacity = 1_000_000u64;
        let threshold = 10_000u64;
        let mut q = EcnThresholdQueue::new(capacity, threshold);
        let mut pool = FramePool::new();
        for (i, &payload) in sizes.iter().enumerate() {
            let mut pkt = data_packet(i as u64, payload);
            pkt.ecn = EcnCodepoint::Ect0;
            let below = q.len_bytes() + pkt.wire_bytes as u64 <= threshold;
            let frame = pool.alloc(pkt);
            match q.enqueue(frame, &mut pool, SimTime::ZERO) {
                EnqueueOutcome::Dropped => prop_assert!(false, "capacity is ample"),
                EnqueueOutcome::EnqueuedMarked => prop_assert!(!below, "marked below K"),
                EnqueueOutcome::Enqueued => prop_assert!(below, "unmarked above K"),
            }
        }
    }

    /// SACK block containers preserve insertion order, cap their length,
    /// evict oldest-first, and never hold empty ranges.
    #[test]
    fn sack_blocks_are_well_formed(
        ranges in proptest::collection::vec((0u64..10_000, 1u64..500), 0..12),
    ) {
        let mut blocks = SackBlocks::EMPTY;
        for &(start, len) in &ranges {
            blocks.push(start, start + len);
        }
        prop_assert!(blocks.len() <= netsim::packet::MAX_SACK_BLOCKS);
        for (s, e) in blocks.iter() {
            prop_assert!(e > s, "no empty ranges");
        }
        // The kept blocks are exactly the most recently inserted ones, in
        // insertion order.
        let expected: Vec<(u64, u64)> = ranges
            .iter()
            .map(|&(s, l)| (s, s + l))
            .rev()
            .take(netsim::packet::MAX_SACK_BLOCKS)
            .rev()
            .collect();
        let got: Vec<(u64, u64)> = blocks.iter().collect();
        prop_assert_eq!(got, expected);
    }

    /// End-to-end conservation: N packets blasted through a dumbbell are
    /// either delivered or dropped at a queue — none vanish, none
    /// duplicate.
    #[test]
    fn dumbbell_conserves_packets(
        n in 1u32..300,
        buffer in 20_000u64..2_000_000,
        seed in 0u64..50,
    ) {
        struct Blast {
            dst: NodeId,
            n: u32,
        }
        impl Agent for Blast {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for i in 0..self.n {
                    ctx.send(Packet::data(
                        FlowId::from_raw(1),
                        ctx.node(),
                        self.dst,
                        i as u64 * 1460,
                        1460,
                        EcnCodepoint::NotEct,
                    ));
                }
            }
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_>) {}
        }
        struct Count {
            seen: u64,
        }
        impl Agent for Count {
            fn on_packet(&mut self, p: Packet, _ctx: &mut Ctx<'_>) {
                if p.is_data() {
                    self.seen += 1;
                }
            }
            fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_>) {}
        }

        let mut net = Network::new(seed);
        let cfg = DumbbellConfig {
            bottleneck_queue: BottleneckQueue::DropTail { capacity_bytes: buffer },
            ..DumbbellConfig::default()
        };
        let d = Dumbbell::build(&mut net, &cfg);
        net.attach_agent(d.senders[0], Box::new(Blast { dst: d.receiver, n }));
        net.attach_agent(d.receiver, Box::new(Count { seen: 0 }));
        net.run();
        let delivered = net.agent::<Count>(d.receiver).unwrap().seen;
        let dropped = net.network_stats().dropped_pkts;
        prop_assert_eq!(delivered + dropped, n as u64);
    }

    /// The deterministic RNG's doubles stay within [0,1) and pass a crude
    /// uniformity check per seed.
    #[test]
    fn rng_uniformity(seed in 0u64..1000) {
        let mut rng = SimRng::new(seed);
        let n = 4096;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        prop_assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
