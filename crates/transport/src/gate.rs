//! Transmission gating: application rate limiting, congestion-control
//! pacing, and the host's packet-processing ceiling, unified as a single
//! earliest-send-time computation.
//!
//! The paper's experiments throttle iperf3 flows to fixed bitrates
//! ("sending smoothly at a certain throughput", Fig. 2) — that is the
//! `app_rate` limit here. BBR contributes a `pacing_rate`. The per-packet
//! ceiling (`min_gap`) models the kernel's packet-processing limit that
//! keeps small-MTU senders below line rate (§4.4).

use netsim::time::{SimDuration, SimTime};
use netsim::units::Rate;

/// Computes when the next packet may be handed to the NIC.
#[derive(Clone, Debug)]
pub struct SendGate {
    /// Application-level throttle (iperf3 `-b`), if any.
    app_rate: Option<Rate>,
    /// Minimum inter-packet gap (host pps ceiling); `ZERO` disables.
    min_gap: SimDuration,
    /// Next instant a packet may start.
    next_allowed: SimTime,
}

impl SendGate {
    /// An ungated sender.
    pub fn new() -> Self {
        SendGate {
            app_rate: None,
            min_gap: SimDuration::ZERO,
            next_allowed: SimTime::ZERO,
        }
    }

    /// Set (or clear) the application rate limit.
    pub fn set_app_rate(&mut self, rate: Option<Rate>) {
        self.app_rate = rate;
    }

    /// The application rate limit, if any.
    pub fn app_rate(&self) -> Option<Rate> {
        self.app_rate
    }

    /// Set the host per-packet processing gap.
    pub fn set_min_gap(&mut self, gap: SimDuration) {
        self.min_gap = gap;
    }

    /// Earliest time the next packet may be sent.
    pub fn earliest(&self, now: SimTime) -> SimTime {
        self.next_allowed.max(now)
    }

    /// True if a packet may be sent right now.
    pub fn ready(&self, now: SimTime) -> bool {
        self.next_allowed <= now
    }

    /// Account for a packet of `wire_bytes` sent at `now` (must be
    /// `ready`), applying the strictest of the three spacings. `pacing`
    /// is the CC's current pacing rate, if it paces.
    pub fn on_send(&mut self, now: SimTime, wire_bytes: u64, pacing: Option<Rate>) {
        debug_assert!(self.ready(now), "gate violated");
        let start = self.earliest(now);
        let mut gap = self.min_gap;
        if let Some(rate) = self.app_rate {
            gap = gap.max(rate.serialization_time(wire_bytes));
        }
        if let Some(rate) = pacing {
            if !rate.is_zero() {
                gap = gap.max(rate.serialization_time(wire_bytes));
            }
        }
        self.next_allowed = start + gap;
    }
}

impl Default for SendGate {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungated_is_always_ready() {
        let mut g = SendGate::new();
        let now = SimTime::from_millis(5);
        assert!(g.ready(now));
        g.on_send(now, 1500, None);
        assert!(g.ready(now), "no limits -> zero gap");
    }

    #[test]
    fn app_rate_spaces_packets() {
        let mut g = SendGate::new();
        g.set_app_rate(Some(Rate::from_gbps(1.0)));
        let t0 = SimTime::ZERO;
        g.on_send(t0, 1500, None);
        // 1500 B at 1 Gb/s = 12 us.
        assert_eq!(g.earliest(t0), SimTime::from_micros(12));
        assert!(!g.ready(SimTime::from_micros(11)));
        assert!(g.ready(SimTime::from_micros(12)));
    }

    #[test]
    fn min_gap_enforces_pps_ceiling() {
        let mut g = SendGate::new();
        g.set_min_gap(SimDuration::from_micros(2));
        g.on_send(SimTime::ZERO, 100, None);
        assert_eq!(g.earliest(SimTime::ZERO), SimTime::from_micros(2));
    }

    #[test]
    fn strictest_limit_wins() {
        let mut g = SendGate::new();
        g.set_app_rate(Some(Rate::from_gbps(10.0))); // 1.2 us per 1500 B
        g.set_min_gap(SimDuration::from_micros(2)); // stricter
        g.on_send(SimTime::ZERO, 1500, Some(Rate::from_gbps(5.0))); // 2.4 us, strictest
        assert_eq!(g.earliest(SimTime::ZERO), SimTime::from_nanos(2_400));
    }

    #[test]
    fn spacing_accumulates_from_virtual_clock() {
        // Two sends back-to-back at t=0 with a 10 us gap: the second is
        // blocked; after waiting, the third spaces from the *allowed*
        // time, not from `now`, so there is no long-term rate drift.
        let mut g = SendGate::new();
        g.set_min_gap(SimDuration::from_micros(10));
        g.on_send(SimTime::ZERO, 100, None);
        let t1 = g.earliest(SimTime::ZERO);
        g.on_send(t1, 100, None);
        assert_eq!(g.earliest(t1), SimTime::from_micros(20));
    }

    #[test]
    fn zero_pacing_rate_is_ignored() {
        let mut g = SendGate::new();
        g.on_send(SimTime::ZERO, 1500, Some(Rate::ZERO));
        assert!(g.ready(SimTime::ZERO));
    }

    #[test]
    fn average_rate_matches_app_limit() {
        let mut g = SendGate::new();
        g.set_app_rate(Some(Rate::from_mbps(100.0)));
        let mut now = SimTime::ZERO;
        let mut sent = 0u64;
        for _ in 0..1000 {
            now = g.earliest(now);
            g.on_send(now, 1500, None);
            sent += 1500;
        }
        let end = g.earliest(now);
        let rate = sent as f64 * 8.0 / end.as_secs_f64();
        assert!((rate - 100e6).abs() / 100e6 < 0.001, "rate={rate}");
    }
}
