//! # transport — TCP-like reliable transport for the simulator
//!
//! The shared machinery the paper's kernel provides to every congestion
//! control algorithm: a SACK scoreboard with RFC 6675-style loss marking,
//! RFC 6298 RTO estimation with exponential backoff, delayed/immediate/
//! DCTCP acknowledgement policies, application rate limiting ("sending
//! smoothly at a certain throughput"), packet pacing, and a host
//! packet-processing ceiling.
//!
//! Congestion control is pluggable through [`cc::CongestionControl`]
//! (the analogue of Linux's `tcp_congestion_ops`); the `cca` crate
//! implements the paper's ten algorithms against it.
//!
//! A flow is a [`sender::TcpSender`] agent on one host and a
//! [`receiver::TcpReceiver`] agent on another, connected by any `netsim`
//! topology:
//!
//! ```
//! use netsim::prelude::*;
//! use transport::prelude::*;
//!
//! let mut net = Network::new(1);
//! let d = Dumbbell::build(&mut net, &DumbbellConfig::default());
//! let flow = FlowId::from_raw(0);
//! let cfg = TcpSenderConfig::bulk(flow, d.receiver, 9000, 10_000_000);
//! net.attach_agent(d.senders[0],
//!     Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(1_000_000)))));
//! net.attach_agent(d.receiver,
//!     Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
//! net.run();
//! assert!(net.agent::<TcpSender>(d.senders[0]).unwrap().is_complete());
//! ```

#![warn(missing_docs)]

pub mod cc;
pub mod gate;
pub mod mux;
pub mod receiver;
pub mod rtt;
pub mod scoreboard;
pub mod sender;
pub mod stats;

/// The commonly-used names, re-exported in one place.
pub mod prelude {
    pub use crate::cc::{AckEvent, CongestionControl, CongestionEvent, FixedCwnd};
    pub use crate::gate::SendGate;
    pub use crate::mux::MuxSender;
    pub use crate::receiver::{AckPolicy, TcpReceiver};
    pub use crate::rtt::RttEstimator;
    pub use crate::scoreboard::{AckOutcome, Scoreboard, SegState, SentSegment};
    pub use crate::sender::{TcpSender, TcpSenderConfig};
    pub use crate::stats::{AbortReason, FlowOutcome, ReceiverFlowStats, SenderStats};
}
