//! Round-trip time estimation and retransmission timeout (RFC 6298).

use netsim::time::SimDuration;

/// RFC 6298 smoothed RTT estimator with Karn-filtered samples.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: SimDuration,
    latest: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    /// Exponential backoff multiplier applied after RTOs.
    backoff: u32,
    samples: u64,
}

impl RttEstimator {
    /// Default clamps: Linux-like 200 ms minimum RTO, 120 s maximum.
    pub fn new() -> Self {
        Self::with_bounds(SimDuration::from_millis(200), SimDuration::from_secs(120))
    }

    /// Custom RTO clamps (the testbed kernel's `TCP_RTO_MIN` analogue).
    pub fn with_bounds(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(min_rto <= max_rto);
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: SimDuration::MAX,
            latest: SimDuration::ZERO,
            min_rto,
            max_rto,
            backoff: 0,
            samples: 0,
        }
    }

    /// Incorporate a fresh RTT sample (never from a retransmitted
    /// segment — the caller enforces Karn's rule).
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.samples += 1;
        self.latest = rtt;
        self.min_rtt = self.min_rtt.min(rtt);
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar =
                    SimDuration::from_nanos((3 * self.rttvar.as_nanos() + err.as_nanos()) / 4);
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + rtt.as_nanos()) / 8,
                ));
            }
        }
        // A valid sample resets the backoff (RFC 6298 §5.7).
        self.backoff = 0;
    }

    /// Smoothed RTT; falls back to a conservative default before the
    /// first sample.
    pub fn srtt(&self) -> SimDuration {
        self.srtt.unwrap_or(SimDuration::from_millis(1))
    }

    /// Latest raw sample.
    pub fn latest(&self) -> SimDuration {
        self.latest
    }

    /// Minimum RTT seen so far ([`SimDuration::MAX`] before any sample).
    pub fn min_rtt(&self) -> SimDuration {
        self.min_rtt
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// True once at least one sample has been taken.
    pub fn has_sample(&self) -> bool {
        self.samples > 0
    }

    /// Number of samples incorporated.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current retransmission timeout: `srtt + 4*rttvar`, clamped, with
    /// exponential backoff applied.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => SimDuration::from_secs(1), // RFC 6298 initial RTO
            Some(srtt) => srtt + self.rttvar.saturating_mul(4),
        };
        let clamped = base.max(self.min_rto).min(self.max_rto);
        clamped
            .saturating_mul(1u64 << self.backoff.min(16))
            .min(self.max_rto)
    }

    /// Apply exponential backoff after a timeout.
    pub fn backoff(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_srtt() {
        let mut est = RttEstimator::new();
        assert!(!est.has_sample());
        est.on_sample(SimDuration::from_micros(100));
        assert_eq!(est.srtt(), SimDuration::from_micros(100));
        assert_eq!(est.rttvar(), SimDuration::from_micros(50));
        assert_eq!(est.min_rtt(), SimDuration::from_micros(100));
        assert!(est.has_sample());
    }

    //= rfc9002#section-5
    #[test]
    fn ewma_converges_to_constant_rtt() {
        let mut est = RttEstimator::new();
        for _ in 0..100 {
            est.on_sample(SimDuration::from_micros(200));
        }
        assert_eq!(est.srtt(), SimDuration::from_micros(200));
        assert_eq!(est.rttvar(), SimDuration::ZERO);
        assert_eq!(est.samples(), 100);
    }

    #[test]
    fn min_rtt_tracks_minimum() {
        let mut est = RttEstimator::new();
        est.on_sample(SimDuration::from_micros(300));
        est.on_sample(SimDuration::from_micros(100));
        est.on_sample(SimDuration::from_micros(500));
        assert_eq!(est.min_rtt(), SimDuration::from_micros(100));
    }

    #[test]
    fn rto_is_clamped_below() {
        let mut est = RttEstimator::new();
        est.on_sample(SimDuration::from_micros(100));
        // srtt + 4*rttvar = 300 us, far below the 200 ms floor.
        assert_eq!(est.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn custom_floor_allows_small_rto() {
        let mut est =
            RttEstimator::with_bounds(SimDuration::from_micros(100), SimDuration::from_secs(1));
        est.on_sample(SimDuration::from_micros(100));
        assert_eq!(est.rto(), SimDuration::from_micros(300));
    }

    #[test]
    fn initial_rto_is_one_second() {
        let est = RttEstimator::new();
        assert_eq!(est.rto(), SimDuration::from_secs(1));
    }

    //= rfc9002#section-6-2
    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut est = RttEstimator::new();
        est.on_sample(SimDuration::from_micros(100));
        let base = est.rto();
        est.backoff();
        assert_eq!(est.rto(), base * 2);
        est.backoff();
        assert_eq!(est.rto(), base * 4);
        est.on_sample(SimDuration::from_micros(100));
        assert_eq!(est.rto(), base);
    }

    #[test]
    fn rto_is_capped_above() {
        let mut est =
            RttEstimator::with_bounds(SimDuration::from_millis(1), SimDuration::from_secs(2));
        est.on_sample(SimDuration::from_millis(100));
        for _ in 0..20 {
            est.backoff();
        }
        assert_eq!(est.rto(), SimDuration::from_secs(2));
    }

    #[test]
    fn variance_reflects_jitter() {
        let mut est = RttEstimator::new();
        for i in 0..50 {
            let us = if i % 2 == 0 { 100 } else { 300 };
            est.on_sample(SimDuration::from_micros(us));
        }
        assert!(est.rttvar() > SimDuration::from_micros(50));
    }
}
