//! Transport-level statistics, mirroring what `iperf3`/`ss` report on the
//! testbed: completion time, retransmissions, timeouts.

use netsim::time::{SimDuration, SimTime};
use netsim::units::Rate;

/// Why a sender gave up on its transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// Consecutive retransmission timeouts exhausted the retry budget
    /// (`TcpSenderConfig::max_rto_retries`, the `tcp_retries2` analogue):
    /// the path is effectively dead.
    RetriesExhausted,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::RetriesExhausted => write!(f, "RTO retry budget exhausted"),
        }
    }
}

/// Terminal state of a flow, surfaced through the flow report so
/// campaigns can distinguish "finished", "gave up cleanly", and "still
/// going when the run ended".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowOutcome {
    /// Every byte was cumulatively acknowledged.
    Completed,
    /// The sender aborted cleanly (no events left behind).
    Aborted(AbortReason),
    /// Neither completed nor aborted when the run ended.
    InProgress,
}

impl FlowOutcome {
    /// True for [`FlowOutcome::Completed`].
    pub fn is_completed(self) -> bool {
        matches!(self, FlowOutcome::Completed)
    }

    /// True for [`FlowOutcome::Aborted`].
    pub fn is_aborted(self) -> bool {
        matches!(self, FlowOutcome::Aborted(_))
    }
}

impl std::fmt::Display for FlowOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowOutcome::Completed => write!(f, "completed"),
            FlowOutcome::Aborted(r) => write!(f, "aborted ({r})"),
            FlowOutcome::InProgress => write!(f, "in progress"),
        }
    }
}

/// Sender-side lifetime counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SenderStats {
    /// Data segments transmitted, including retransmissions.
    pub segs_sent: u64,
    /// Retransmitted segments (the paper's Fig. 8 x-axis).
    pub retx_segs: u64,
    /// Retransmission timeouts fired.
    pub rto_count: u64,
    /// Tail-loss probes sent.
    pub tlp_probes: u64,
    /// Fast-recovery episodes entered.
    pub fast_recoveries: u64,
    /// Acknowledgements processed (drives CC compute energy).
    pub acks_processed: u64,
    /// Bytes cumulatively acknowledged.
    pub bytes_acked: u64,
    /// When the first segment was sent.
    pub started_at: Option<SimTime>,
    /// When the last byte was acknowledged.
    pub completed_at: Option<SimTime>,
    /// When the sender gave up, if it aborted.
    pub aborted_at: Option<SimTime>,
}

impl SenderStats {
    /// Flow completion time, if the transfer finished.
    pub fn fct(&self) -> Option<SimDuration> {
        match (self.started_at, self.completed_at) {
            (Some(s), Some(e)) => Some(e.saturating_since(s)),
            _ => None,
        }
    }

    /// Terminal state implied by the timestamps.
    pub fn outcome(&self) -> FlowOutcome {
        if self.completed_at.is_some() {
            FlowOutcome::Completed
        } else if self.aborted_at.is_some() {
            FlowOutcome::Aborted(AbortReason::RetriesExhausted)
        } else {
            FlowOutcome::InProgress
        }
    }

    /// Average goodput over the flow's lifetime, if it finished.
    pub fn goodput(&self) -> Option<Rate> {
        let fct = self.fct()?;
        if fct.is_zero() {
            return None;
        }
        Some(netsim::units::average_rate(self.bytes_acked, fct))
    }

    /// Retransmission ratio: retransmitted / all data segments sent.
    pub fn retx_ratio(&self) -> f64 {
        if self.segs_sent == 0 {
            return 0.0;
        }
        self.retx_segs as f64 / self.segs_sent as f64
    }
}

/// Receiver-side per-flow counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReceiverFlowStats {
    /// Data segments received (any order).
    pub data_segs: u64,
    /// Fully-duplicate segments (spurious retransmissions).
    pub dup_segs: u64,
    /// Out-of-order arrivals buffered.
    pub ooo_segs: u64,
    /// Acks emitted.
    pub acks_sent: u64,
    /// CE-marked segments seen.
    pub ce_segs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fct_requires_both_endpoints() {
        let mut s = SenderStats::default();
        assert!(s.fct().is_none());
        s.started_at = Some(SimTime::from_secs(1));
        assert!(s.fct().is_none());
        s.completed_at = Some(SimTime::from_secs(3));
        assert_eq!(s.fct(), Some(SimDuration::from_secs(2)));
    }

    #[test]
    fn goodput_is_bytes_over_fct() {
        let s = SenderStats {
            bytes_acked: 1_250_000_000,
            started_at: Some(SimTime::ZERO),
            completed_at: Some(SimTime::from_secs(1)),
            ..SenderStats::default()
        };
        assert!((s.goodput().unwrap().gbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn retx_ratio_handles_zero() {
        let s = SenderStats::default();
        assert_eq!(s.retx_ratio(), 0.0);
        let s = SenderStats {
            segs_sent: 100,
            retx_segs: 7,
            ..SenderStats::default()
        };
        assert!((s.retx_ratio() - 0.07).abs() < 1e-12);
    }
}
