//! The congestion-control interface.
//!
//! Mirrors the role of Linux's `tcp_congestion_ops`: the transport machinery
//! (scoreboard, RTO, SACK, pacing) is shared, and algorithms plug in
//! through [`CongestionControl`]. The `cca` crate implements the paper's
//! ten algorithms against this trait; [`FixedCwnd`] here is the minimal
//! implementation used by transport's own tests and by the paper's
//! constant-cwnd baseline module.

use netsim::time::{SimDuration, SimTime};
use netsim::units::Rate;

/// Everything an algorithm may want to know about an acknowledgement.
#[derive(Clone, Copy, Debug)]
pub struct AckEvent {
    /// Current time.
    pub now: SimTime,
    /// Bytes newly acknowledged (cumulatively or via SACK) by this ack.
    pub newly_acked_bytes: u64,
    /// Fresh RTT sample, if one could be taken (Karn's rule filters
    /// retransmissions).
    pub rtt_sample: Option<SimDuration>,
    /// Smoothed RTT estimate.
    pub srtt: SimDuration,
    /// Minimum RTT observed on the connection.
    pub min_rtt: SimDuration,
    /// Bytes in flight *after* processing this ack.
    pub bytes_in_flight: u64,
    /// Sender-side delivery-rate sample (BBR-style), if measurable.
    pub delivery_rate: Option<Rate>,
    /// True if the rate sample was taken while application-limited.
    pub app_limited: bool,
    /// Bytes newly reported CE-marked by the receiver (DCTCP feedback).
    pub ce_marked_bytes: u64,
    /// Classic ECN-Echo flag on this ack.
    pub ecn_echo: bool,
    /// Cumulative bytes acknowledged on the connection so far.
    pub cum_acked: u64,
    /// Monotone round-trip counter (increments once per RTT of acks).
    pub round: u64,
    /// True while the sender is in fast-recovery.
    pub in_recovery: bool,
    /// In-band telemetry echoed by the receiver: the most-utilized hop's
    /// queue occupancy and utilization (HPCC's input). Unstamped when no
    /// INT-capable hop carried the data.
    pub int: netsim::packet::IntRecord,
    /// True if the congestion window actually limited transmission since
    /// the previous ack. When false the sender was application- or
    /// pacing-limited, and window-validation rules (RFC 2861) say the
    /// window must not grow — otherwise an idle or throttled flow inflates
    /// cwnd without ever testing the path.
    pub cwnd_limited: bool,
}

/// A congestion (loss) notification: at most one per round trip, raised
/// when entering fast recovery.
#[derive(Clone, Copy, Debug)]
pub struct CongestionEvent {
    /// Current time.
    pub now: SimTime,
    /// Bytes in flight when the loss was detected.
    pub bytes_in_flight: u64,
    /// Smoothed RTT estimate at the time of loss.
    pub srtt: SimDuration,
}

/// A pluggable congestion-control algorithm. All window quantities are in
/// **bytes**.
pub trait CongestionControl: Send {
    /// Kernel-style algorithm name (`"cubic"`, `"bbr"`, ...).
    fn name(&self) -> &'static str;

    /// Initial congestion window (default: 10 segments, RFC 6928).
    fn initial_cwnd(&self, mss: u32) -> u64 {
        10 * mss as u64
    }

    /// Process an acknowledgement.
    fn on_ack(&mut self, ev: &AckEvent);

    /// A loss-triggered congestion event (entering fast recovery).
    fn on_congestion_event(&mut self, ev: &CongestionEvent);

    /// A retransmission timeout fired: collapse to loss-recovery state.
    fn on_rto(&mut self, now: SimTime, mss: u32);

    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold in bytes (`u64::MAX` if unset).
    fn ssthresh(&self) -> u64 {
        u64::MAX
    }

    /// Pacing rate, if the algorithm paces (BBR). `None` means ack-clocked
    /// transmission limited only by cwnd.
    fn pacing_rate(&self) -> Option<Rate> {
        None
    }

    /// True if the algorithm wants ECT marking on its segments (DCTCP).
    fn wants_ecn(&self) -> bool {
        false
    }

    /// True if the algorithm paces its transmissions (BBR family). Paced
    /// senders avoid bursty interrupt/qdisc churn, which raises the host's
    /// sustainable packet rate (see `energy::calibration::PACING_PPS_BONUS`).
    fn uses_pacing(&self) -> bool {
        false
    }

    /// Relative per-ack computation cost of this algorithm, used by the
    /// energy model; 1.0 is the reference (CUBIC). The paper's §4.3
    /// attributes inter-CCA energy differences partly to "cwnd calculation
    /// arithmetic" and per-ack bookkeeping; this factor is each
    /// implementation's estimate of that work.
    fn compute_cost_factor(&self) -> f64 {
        1.0
    }
}

/// The paper's custom baseline: a constant, large congestion window and no
/// per-ack computation at all. §4.3: "a new kernel module that replaces
/// any CC mechanism with a large, constant cwnd value".
#[derive(Debug, Clone)]
pub struct FixedCwnd {
    cwnd_bytes: u64,
}

impl FixedCwnd {
    /// A fixed window of `cwnd_bytes`.
    pub fn new(cwnd_bytes: u64) -> Self {
        assert!(cwnd_bytes > 0);
        FixedCwnd { cwnd_bytes }
    }
}

impl CongestionControl for FixedCwnd {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn initial_cwnd(&self, _mss: u32) -> u64 {
        self.cwnd_bytes
    }

    fn on_ack(&mut self, _ev: &AckEvent) {}

    fn on_congestion_event(&mut self, _ev: &CongestionEvent) {}

    fn on_rto(&mut self, _now: SimTime, _mss: u32) {}

    fn cwnd(&self) -> u64 {
        self.cwnd_bytes
    }

    fn compute_cost_factor(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_cwnd_never_moves() {
        let mut cc = FixedCwnd::new(1_000_000);
        assert_eq!(cc.cwnd(), 1_000_000);
        assert_eq!(cc.initial_cwnd(1448), 1_000_000);
        cc.on_congestion_event(&CongestionEvent {
            now: SimTime::ZERO,
            bytes_in_flight: 500_000,
            srtt: SimDuration::from_micros(100),
        });
        cc.on_rto(SimTime::ZERO, 1448);
        assert_eq!(cc.cwnd(), 1_000_000);
        assert_eq!(cc.ssthresh(), u64::MAX);
        assert!(cc.pacing_rate().is_none());
        assert!(!cc.wants_ecn());
        assert_eq!(cc.compute_cost_factor(), 0.0);
    }

    //= rfc9002#section-7
    #[test]
    fn default_initial_window_is_ten_segments() {
        struct Dummy;
        impl CongestionControl for Dummy {
            fn name(&self) -> &'static str {
                "dummy"
            }
            fn on_ack(&mut self, _ev: &AckEvent) {}
            fn on_congestion_event(&mut self, _ev: &CongestionEvent) {}
            fn on_rto(&mut self, _now: SimTime, _mss: u32) {}
            fn cwnd(&self) -> u64 {
                0
            }
        }
        assert_eq!(Dummy.initial_cwnd(1448), 14_480);
        assert_eq!(Dummy.compute_cost_factor(), 1.0);
    }
}
