//! Sender-side segment scoreboard: SACK state, loss marking, and the
//! bookkeeping behind delivery-rate samples.
//!
//! Each transmitted segment is tracked from first send until cumulative
//! acknowledgement. A segment is in one of three states:
//!
//! * **Outstanding** — on the wire (or believed to be), counted in flight;
//! * **Sacked** — selectively acknowledged, delivered but not yet
//!   cumulatively acked;
//! * **Lost** — declared lost (RFC 6675-style SACK threshold or RTO),
//!   awaiting retransmission, not counted in flight.
//!
//! Loss rules (RFC 6675 + RFC 8985 RACK):
//!
//! * **Threshold**: a segment is lost once the receiver has SACKed at
//!   least `DUPTHRESH` segments' worth of bytes *above* it — the
//!   byte-based analogue of three duplicate acks;
//! * **Time (RACK)**: a segment is lost once some segment transmitted at
//!   least `reorder_window` *later* has been SACKed, regardless of how
//!   few bytes sit above it — this is what recovers short tails quickly
//!   when combined with the sender's tail-loss probe.
//!
//! Both rules require the SACKed evidence to have been *sent no earlier*
//! than the candidate segment; that time condition keeps retransmissions
//! from being re-declared lost by stale SACK information the instant they
//! are sent (without it a deep loss episode degenerates into a
//! retransmission storm).

use netsim::time::SimTime;
use std::collections::VecDeque;

/// Classic dup-ack threshold, in segments.
pub const DUPTHRESH: u64 = 3;

/// Segment delivery state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegState {
    /// Sent and presumed in flight.
    Outstanding,
    /// Selectively acknowledged.
    Sacked,
    /// Declared lost, awaiting retransmission.
    Lost,
}

/// One transmitted segment's record.
#[derive(Clone, Copy, Debug)]
pub struct SentSegment {
    /// First payload byte.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// Time of the most recent (re)transmission.
    pub sent_at: SimTime,
    /// How many times this segment has been retransmitted.
    pub retx_count: u32,
    /// Delivery state.
    pub state: SegState,
    /// Connection-level delivered-bytes counter captured at (re)send time,
    /// for BBR-style rate samples.
    pub delivered_at_send: u64,
    /// Whether the sender was application-limited at (re)send time.
    pub app_limited: bool,
}

impl SentSegment {
    /// One past the last byte.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.len as u64
    }
}

/// Anchor data for a delivery-rate sample, captured from the segment a
/// cumulative ack just covered.
#[derive(Clone, Copy, Debug)]
pub struct RateAnchor {
    /// When the anchoring segment was (last) sent.
    pub sent_at: SimTime,
    /// Delivered-bytes counter at that send.
    pub delivered_at_send: u64,
    /// Whether that send was application-limited.
    pub app_limited: bool,
}

/// What an ack did to the scoreboard.
#[derive(Clone, Copy, Debug, Default)]
pub struct AckOutcome {
    /// Bytes newly delivered by this ack: cumulative advancement over
    /// not-previously-sacked bytes, plus newly SACKed bytes.
    pub newly_delivered: u64,
    /// Bytes the cumulative ack advanced over.
    pub cum_advanced: u64,
    /// Bytes newly declared lost by the SACK threshold rule.
    pub newly_lost: u64,
    /// Rate-sample anchor, present when the cumulative ack advanced.
    pub rate_anchor: Option<RateAnchor>,
}

/// The scoreboard proper.
#[derive(Debug)]
pub struct Scoreboard {
    segs: VecDeque<SentSegment>,
    /// First unacknowledged byte.
    snd_una: u64,
    /// Highest SACKed byte end seen.
    high_sacked: u64,
    /// Bytes currently Outstanding.
    in_flight: u64,
    /// Seqs of segments to retransmit (may contain stale entries; state
    /// is re-checked on pop).
    retx_queue: VecDeque<u64>,
    /// Maximum segment size, for the byte-based dupthresh.
    mss: u32,
    /// Latest (re)transmission time among segments that have been SACKed:
    /// the RACK reference point. Only segments sent at or before it may be
    /// declared lost.
    newest_sacked_send: SimTime,
    /// Sequence below which no Outstanding segment exists, letting the
    /// per-ack loss scan skip the settled prefix (amortized O(1)).
    scan_floor: u64,
    /// Bytes currently in the Lost state, maintained across every state
    /// transition so [`Scoreboard::has_retransmit`] is O(1) instead of a
    /// scan of the retransmission queue (it sits on the sender's
    /// per-ack/per-timer hot path).
    lost_bytes: u64,
}

impl Scoreboard {
    /// An empty scoreboard for a flow starting at sequence 0.
    pub fn new(mss: u32) -> Self {
        assert!(mss > 0);
        Scoreboard {
            segs: VecDeque::new(),
            snd_una: 0,
            high_sacked: 0,
            in_flight: 0,
            retx_queue: VecDeque::new(),
            mss,
            newest_sacked_send: SimTime::ZERO,
            scan_floor: 0,
            lost_bytes: 0,
        }
    }

    /// First unacknowledged byte.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Bytes currently in flight (Outstanding).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// True if nothing is outstanding, lost, or sacked-pending.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Number of tracked segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Record a brand new segment transmission.
    pub fn on_send(&mut self, seq: u64, len: u32, now: SimTime, delivered: u64, app_limited: bool) {
        debug_assert!(len > 0);
        debug_assert!(
            self.segs.back().map_or(self.snd_una, |s| s.seq_end()) == seq,
            "segments must be sent in order"
        );
        self.segs.push_back(SentSegment {
            seq,
            len,
            sent_at: now,
            retx_count: 0,
            state: SegState::Outstanding,
            delivered_at_send: delivered,
            app_limited,
        });
        self.in_flight += len as u64;
    }

    fn index_of(&self, seq: u64) -> Option<usize> {
        self.segs.binary_search_by(|s| s.seq.cmp(&seq)).ok()
    }

    /// Pop the next segment due for retransmission, marking it
    /// Outstanding again. Returns `(seq, len, retx_count)`.
    pub fn take_retransmit(
        &mut self,
        now: SimTime,
        delivered: u64,
        app_limited: bool,
    ) -> Option<(u64, u32)> {
        while let Some(seq) = self.retx_queue.pop_front() {
            let Some(idx) = self.index_of(seq) else {
                continue; // already cumulatively acked
            };
            let seg = &mut self.segs[idx];
            if seg.state != SegState::Lost {
                continue; // stale entry (e.g. got sacked meanwhile)
            }
            seg.state = SegState::Outstanding;
            seg.retx_count += 1;
            seg.sent_at = now;
            seg.delivered_at_send = delivered;
            seg.app_limited = app_limited;
            let len = seg.len;
            self.in_flight += len as u64;
            self.lost_bytes -= len as u64;
            // The segment is live again below the settled prefix: reopen
            // the loss scan down to it.
            self.scan_floor = self.scan_floor.min(seq);
            return Some((seq, len));
        }
        None
    }

    /// True if a retransmission is pending.
    pub fn has_retransmit(&self) -> bool {
        self.lost_bytes > 0
    }

    /// Process an acknowledgement: cumulative ack plus SACK ranges.
    /// `reorder_window` is the RACK tolerance: SACKed evidence must have
    /// been sent at least this much after a segment before the time rule
    /// declares it lost (use ~`srtt/4`).
    pub fn on_ack(
        &mut self,
        cum_ack: u64,
        sacks: impl Iterator<Item = (u64, u64)>,
        reorder_window: netsim::time::SimDuration,
    ) -> AckOutcome {
        let mut out = AckOutcome::default();

        // 1. Cumulative advancement.
        if cum_ack > self.snd_una {
            out.cum_advanced = cum_ack - self.snd_una;
            while self.segs.front().is_some_and(|f| f.seq_end() <= cum_ack) {
                let Some(seg) = self.segs.pop_front() else {
                    break;
                };
                match seg.state {
                    SegState::Outstanding => {
                        self.in_flight -= seg.len as u64;
                        out.newly_delivered += seg.len as u64;
                    }
                    SegState::Lost => {
                        // Was declared lost but the original arrived after
                        // all (spurious loss marking).
                        out.newly_delivered += seg.len as u64;
                        self.lost_bytes -= seg.len as u64;
                    }
                    SegState::Sacked => {} // already counted delivered
                }
                out.rate_anchor = Some(RateAnchor {
                    sent_at: seg.sent_at,
                    delivered_at_send: seg.delivered_at_send,
                    app_limited: seg.app_limited,
                });
            }
            debug_assert!(
                self.segs.front().is_none_or(|s| s.seq >= cum_ack),
                "partial segment ack is not modeled"
            );
            self.snd_una = cum_ack;
        }

        // 2. SACK marking.
        for (start, end) in sacks {
            if end <= self.snd_una {
                continue;
            }
            self.high_sacked = self.high_sacked.max(end);
            // Find the first segment at or after `start`.
            let mut idx = self.segs.partition_point(|s| s.seq_end() <= start);
            while idx < self.segs.len() {
                let seg = &mut self.segs[idx];
                if seg.seq >= end {
                    break;
                }
                // Only fully covered segments flip to Sacked; the receiver
                // SACKs whole segments, so partial coverage means a block
                // boundary, not a partial segment.
                if seg.seq >= start && seg.seq_end() <= end {
                    match seg.state {
                        SegState::Outstanding => {
                            let sent_at = seg.sent_at;
                            seg.state = SegState::Sacked;
                            self.in_flight -= seg.len as u64;
                            out.newly_delivered += seg.len as u64;
                            self.newest_sacked_send = self.newest_sacked_send.max(sent_at);
                        }
                        SegState::Lost => {
                            // Arrived after all.
                            let sent_at = seg.sent_at;
                            let len = seg.len;
                            seg.state = SegState::Sacked;
                            out.newly_delivered += len as u64;
                            self.lost_bytes -= len as u64;
                            self.newest_sacked_send = self.newest_sacked_send.max(sent_at);
                        }
                        SegState::Sacked => {}
                    }
                }
                idx += 1;
            }
        }

        // 3. Loss detection. A segment qualifies when either
        //    (a) >= DUPTHRESH*mss bytes are SACKed above it, or
        //    (b) RACK: SACKed evidence was sent >= reorder_window later.
        //    In both cases the evidence must be no older than the
        //    segment's own (re)transmission. The scan starts at the
        //    settled prefix boundary and advances it, so repeated acks
        //    don't rescan decided segments.
        if self.high_sacked > self.snd_una {
            self.scan_floor = self.scan_floor.max(self.snd_una);
            let threshold = DUPTHRESH * self.mss as u64;
            let mut newly_lost = 0u64;
            let start = self.segs.partition_point(|s| s.seq < self.scan_floor);
            let mut prefix_settled = true;
            for i in start..self.segs.len() {
                let seg = &self.segs[i];
                if seg.seq_end() > self.high_sacked {
                    break; // segments are ordered; no SACKed data above
                }
                if seg.state == SegState::Outstanding {
                    let dup_rule = seg.seq_end() + threshold <= self.high_sacked
                        && seg.sent_at <= self.newest_sacked_send;
                    let rack_rule = seg
                        .sent_at
                        .checked_add(reorder_window)
                        .is_some_and(|t| t <= self.newest_sacked_send);
                    if dup_rule || rack_rule {
                        let seg = &mut self.segs[i];
                        seg.state = SegState::Lost;
                        newly_lost += seg.len as u64;
                        self.in_flight -= seg.len as u64;
                        self.lost_bytes += seg.len as u64;
                        self.retx_queue.push_back(seg.seq);
                    } else {
                        // A live (re)transmission we must revisit later.
                        prefix_settled = false;
                    }
                }
                if prefix_settled {
                    self.scan_floor = self.segs[i].seq_end();
                }
            }
            out.newly_lost = newly_lost;
        }

        out
    }

    /// Tail-loss probe support: re-send the highest Outstanding segment
    /// without changing its delivery state (it is still presumed in
    /// flight; this transmission merely solicits fresh SACK evidence).
    /// Returns `(seq, len)` if a probe target exists.
    pub fn probe_last(&mut self, now: SimTime) -> Option<(u64, u32)> {
        let seg = self
            .segs
            .iter_mut()
            .rev()
            .find(|s| s.state == SegState::Outstanding)?;
        seg.retx_count += 1;
        seg.sent_at = now;
        Some((seg.seq, seg.len))
    }

    /// RTO collapse: declare every non-SACKed tracked segment lost.
    /// Returns the number of bytes newly marked lost.
    pub fn mark_all_lost(&mut self) -> u64 {
        let mut newly_lost = 0;
        for seg in self.segs.iter_mut() {
            if seg.state == SegState::Outstanding {
                seg.state = SegState::Lost;
                newly_lost += seg.len as u64;
                self.in_flight -= seg.len as u64;
                self.lost_bytes += seg.len as u64;
                self.retx_queue.push_back(seg.seq);
            }
        }
        newly_lost
    }

    /// Iterate tracked segments (tests and diagnostics).
    pub fn segments(&self) -> impl Iterator<Item = &SentSegment> {
        self.segs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    /// Reorder window used by these tests: large enough that only the
    /// dup-threshold rule fires for sub-10 us send spacings.
    const REO: SimDuration = SimDuration::from_micros(50);

    const MSS: u32 = 1000;

    fn board_with(n: u64) -> Scoreboard {
        let mut b = Scoreboard::new(MSS);
        for i in 0..n {
            b.on_send(i * MSS as u64, MSS, SimTime::from_micros(i), 0, false);
        }
        b
    }

    #[test]
    fn send_tracks_flight() {
        let b = board_with(5);
        assert_eq!(b.in_flight(), 5000);
        assert_eq!(b.len(), 5);
        assert_eq!(b.snd_una(), 0);
    }

    #[test]
    fn cumulative_ack_pops_and_counts() {
        let mut b = board_with(5);
        let out = b.on_ack(3000, std::iter::empty(), REO);
        assert_eq!(out.cum_advanced, 3000);
        assert_eq!(out.newly_delivered, 3000);
        assert_eq!(b.in_flight(), 2000);
        assert_eq!(b.snd_una(), 3000);
        assert_eq!(b.len(), 2);
        let anchor = out.rate_anchor.expect("cum advance produces an anchor");
        assert_eq!(anchor.sent_at, SimTime::from_micros(2)); // seg #2 was last popped
    }

    #[test]
    fn duplicate_ack_changes_nothing() {
        let mut b = board_with(3);
        b.on_ack(2000, std::iter::empty(), REO);
        let out = b.on_ack(2000, std::iter::empty(), REO);
        assert_eq!(out.cum_advanced, 0);
        assert_eq!(out.newly_delivered, 0);
        assert!(out.rate_anchor.is_none());
    }

    #[test]
    fn sack_marks_and_counts_once() {
        let mut b = board_with(6);
        let out = b.on_ack(0, [(2000u64, 4000u64)].into_iter(), REO);
        assert_eq!(out.newly_delivered, 2000);
        // 2000 B sacked; segment 0 has exactly DUPTHRESH*mss sacked above
        // it and is declared lost, so flight = 6000 - 2000 - 1000.
        assert_eq!(out.newly_lost, 1000);
        assert_eq!(b.in_flight(), 3000);
        // Re-delivered SACK is idempotent.
        let out2 = b.on_ack(0, [(2000u64, 4000u64)].into_iter(), REO);
        assert_eq!(out2.newly_delivered, 0);
        assert_eq!(out2.newly_lost, 0);
        assert_eq!(b.in_flight(), 3000);
    }

    //= rfc9002#section-6-1
    #[test]
    fn loss_declared_after_dupthresh_worth_of_sack() {
        let mut b = board_with(8);
        // SACK segments 1..=3 (bytes 1000..4000): exactly 3*MSS above
        // segment 0, which must now be lost.
        let out = b.on_ack(0, [(1000u64, 4000u64)].into_iter(), REO);
        assert_eq!(out.newly_lost, 1000);
        assert_eq!(b.in_flight(), 8000 - 3000 - 1000);
        let states: Vec<_> = b.segments().map(|s| s.state).collect();
        assert_eq!(states[0], SegState::Lost);
        assert_eq!(states[1], SegState::Sacked);
    }

    #[test]
    fn insufficient_sack_does_not_declare_loss() {
        let mut b = board_with(8);
        let out = b.on_ack(0, [(1000u64, 3000u64)].into_iter(), REO);
        assert_eq!(out.newly_lost, 0);
        assert_eq!(b.segments().next().unwrap().state, SegState::Outstanding);
    }

    #[test]
    fn retransmit_cycle() {
        let mut b = board_with(8);
        b.on_ack(0, [(1000u64, 4000u64)].into_iter(), REO);
        assert!(b.has_retransmit());
        let (seq, len) = b
            .take_retransmit(SimTime::from_millis(5), 3000, false)
            .expect("retransmission pending");
        assert_eq!((seq, len), (0, 1000));
        assert!(!b.has_retransmit());
        // Retransmitted segment is back in flight with an updated clock.
        let seg = b.segments().next().unwrap();
        assert_eq!(seg.state, SegState::Outstanding);
        assert_eq!(seg.retx_count, 1);
        assert_eq!(seg.sent_at, SimTime::from_millis(5));
        // Its arrival is then cumulatively acked.
        let out = b.on_ack(4000, std::iter::empty(), REO);
        // Segment 0 newly delivered (1000); 1..3 were already sacked.
        assert_eq!(out.newly_delivered, 1000);
        assert_eq!(b.snd_una(), 4000);
    }

    #[test]
    fn stale_retx_queue_entries_are_skipped() {
        let mut b = board_with(8);
        b.on_ack(0, [(1000u64, 4000u64)].into_iter(), REO);
        // Segment 0 is queued for retx but then arrives (spurious loss):
        // cumulative ack covers it.
        b.on_ack(4000, std::iter::empty(), REO);
        assert!(b.take_retransmit(SimTime::ZERO, 0, false).is_none());
    }

    #[test]
    fn sacked_while_queued_is_skipped() {
        let mut b = board_with(10);
        // Lose segment 0 via the threshold.
        b.on_ack(0, [(1000u64, 4000u64)].into_iter(), REO);
        // The "lost" segment gets SACKed before we retransmit (it was
        // merely reordered).
        let out = b.on_ack(0, [(0u64, 1000u64)].into_iter(), REO);
        assert_eq!(out.newly_delivered, 1000);
        assert!(b.take_retransmit(SimTime::ZERO, 0, false).is_none());
    }

    //= rfc9002#section-7-6
    #[test]
    fn rto_marks_everything_outstanding_lost() {
        let mut b = board_with(5);
        b.on_ack(0, [(1000u64, 2000u64)].into_iter(), REO);
        let lost = b.mark_all_lost();
        assert_eq!(lost, 4000); // all but the sacked segment
        assert_eq!(b.in_flight(), 0);
        let mut retx = Vec::new();
        while let Some((seq, _)) = b.take_retransmit(SimTime::ZERO, 0, false) {
            retx.push(seq);
        }
        assert_eq!(retx, vec![0, 2000, 3000, 4000]);
    }

    #[test]
    fn delivered_counts_cum_plus_sack_exactly_once_per_byte() {
        let mut b = board_with(10);
        let mut delivered = 0;
        delivered += b
            .on_ack(2000, [(4000u64, 6000u64)].into_iter(), REO)
            .newly_delivered;
        delivered += b.on_ack(8000, std::iter::empty(), REO).newly_delivered;
        delivered += b.on_ack(10_000, std::iter::empty(), REO).newly_delivered;
        assert_eq!(delivered, 10_000);
        assert!(b.is_empty());
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn rate_anchor_reflects_retransmission_time() {
        let mut b = board_with(5);
        b.on_ack(0, [(1000u64, 4000u64)].into_iter(), REO);
        b.take_retransmit(SimTime::from_millis(9), 3000, true)
            .unwrap();
        let out = b.on_ack(1000, std::iter::empty(), REO);
        let anchor = out.rate_anchor.unwrap();
        assert_eq!(anchor.sent_at, SimTime::from_millis(9));
        assert_eq!(anchor.delivered_at_send, 3000);
        assert!(anchor.app_limited);
    }
}
