//! The receive side: cumulative + selective acknowledgement generation,
//! delayed acks, and DCTCP's CE-aware ack state machine.
//!
//! One [`TcpReceiver`] agent serves every flow addressed to its host
//! (keyed by [`FlowId`]), like a kernel serving multiple sockets.

use crate::stats::ReceiverFlowStats;
use netsim::agent::{Agent, Ctx};
use netsim::flowtab::{DenseIndex, FlowKey, FlowTable};
use netsim::ids::{FlowId, NodeId};
use netsim::packet::{AckInfo, Packet, PacketKind, SackBlocks};
use netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// When acknowledgements are generated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AckPolicy {
    /// RFC 1122 delayed acks: ack every `every`-th in-order segment, or
    /// after `timeout`, and immediately on out-of-order data.
    Delayed {
        /// Segments per ack.
        every: u32,
        /// Delayed-ack flush timeout.
        timeout: SimDuration,
    },
    /// Ack every data segment (quickack).
    Immediate,
    /// DCTCP's state machine (Alizadeh et al. §3.2): delayed acks, but an
    /// immediate ack whenever the observed CE codepoint *changes*, so the
    /// sender sees an exact marked-byte count.
    DctcpCeAware {
        /// Segments per ack while the CE state is steady.
        every: u32,
        /// Delayed-ack flush timeout.
        timeout: SimDuration,
    },
}

impl AckPolicy {
    /// The kernel-default policy: ack every second segment, 500 µs flush.
    pub fn delayed_default() -> Self {
        AckPolicy::Delayed {
            every: 2,
            timeout: SimDuration::from_micros(500),
        }
    }

    /// DCTCP's policy with default parameters.
    pub fn dctcp_default() -> Self {
        AckPolicy::DctcpCeAware {
            every: 2,
            timeout: SimDuration::from_micros(500),
        }
    }
}

/// Per-flow receive state.
#[derive(Debug)]
struct RxFlow {
    peer: NodeId,
    rcv_nxt: u64,
    /// Out-of-order byte ranges, keyed by start.
    ooo: BTreeMap<u64, u64>,
    /// Most recently arrived out-of-order range (first SACK block).
    last_block: Option<(u64, u64)>,
    /// In-order segments not yet acked.
    pending_segs: u32,
    /// Echo timestamp + retx flag of the most recent data segment.
    echo: (SimTime, bool),
    /// In-band telemetry of the most recent data segment.
    int_echo: netsim::packet::IntRecord,
    /// Cumulative CE-marked payload bytes.
    ce_bytes: u64,
    /// CE codepoint of the previous segment (DCTCP state machine).
    last_ce: bool,
    /// Whether CE was observed since the last ack (classic ECE).
    ece_pending: bool,
    /// Delayed-ack timer generation (stale-timer detection).
    timer_gen: u64,
    delack_armed: bool,
    stats: ReceiverFlowStats,
}

impl RxFlow {
    fn new(peer: NodeId) -> Self {
        RxFlow {
            peer,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            last_block: None,
            pending_segs: 0,
            echo: (SimTime::ZERO, false),
            int_echo: netsim::packet::IntRecord::default(),
            ce_bytes: 0,
            last_ce: false,
            ece_pending: false,
            timer_gen: 0,
            delack_armed: false,
            stats: ReceiverFlowStats::default(),
        }
    }

    /// Insert an out-of-order range, merging neighbours.
    fn insert_ooo(&mut self, mut start: u64, mut end: u64) {
        // Merge with any overlapping or adjacent predecessor.
        if let Some((&ps, &pe)) = self.ooo.range(..=start).next_back() {
            if pe >= start {
                start = ps;
                end = end.max(pe);
                self.ooo.remove(&ps);
            }
        }
        // Merge successors.
        while let Some((&ns, &ne)) = self.ooo.range(start..).next() {
            if ns > end {
                break;
            }
            end = end.max(ne);
            self.ooo.remove(&ns);
        }
        self.ooo.insert(start, end);
    }

    /// Build the SACK option: the block containing the latest arrival
    /// first (RFC 2018 §4), then the lowest remaining blocks.
    fn sack_blocks(&self) -> SackBlocks {
        let mut blocks = SackBlocks::EMPTY;
        let mut first: Option<(u64, u64)> = None;
        if let Some((ls, _)) = self.last_block {
            if let Some((&s, &e)) = self.ooo.range(..=ls).next_back() {
                blocks.push(s, e);
                first = Some((s, e));
            }
        }
        for (&s, &e) in self.ooo.iter() {
            if blocks.len() >= netsim::packet::MAX_SACK_BLOCKS {
                break;
            }
            if first == Some((s, e)) {
                continue;
            }
            blocks.push(s, e);
        }
        blocks
    }
}

/// The receiver agent.
///
/// Per-flow state lives in a flat [`FlowTable`] reached through a
/// [`DenseIndex`] keyed by raw flow id: at population scale one receiver
/// serves hundreds of flows, and the per-data-segment lookup is two
/// indexed loads instead of a tree walk. Point lookups only — nothing
/// ever iterates the table — so storage order is unobservable.
pub struct TcpReceiver {
    policy: AckPolicy,
    flows: FlowTable<RxFlow>,
    by_flow: DenseIndex,
}

impl TcpReceiver {
    /// A receiver with the given ack policy (shared by all flows).
    pub fn new(policy: AckPolicy) -> Self {
        TcpReceiver {
            policy,
            flows: FlowTable::new(),
            by_flow: DenseIndex::new(),
        }
    }

    fn flow_key(&self, flow: FlowId) -> Option<FlowKey> {
        self.by_flow.get(flow.index() as u32)
    }

    /// In-order bytes received for a flow.
    pub fn bytes_received(&self, flow: FlowId) -> u64 {
        self.flow_key(flow)
            .and_then(|k| self.flows.get(k))
            .map(|f| f.rcv_nxt)
            .unwrap_or(0)
    }

    /// Per-flow receive statistics.
    pub fn flow_stats(&self, flow: FlowId) -> ReceiverFlowStats {
        self.flow_key(flow)
            .and_then(|k| self.flows.get(k))
            .map(|f| f.stats)
            .unwrap_or_default()
    }

    fn send_ack(flow_id: FlowId, flow: &mut RxFlow, ctx: &mut Ctx<'_>) {
        let info = AckInfo {
            cum_ack: flow.rcv_nxt,
            sacks: flow.sack_blocks(),
            ece: flow.ece_pending,
            ce_bytes: flow.ce_bytes,
            delivered_bytes: flow.rcv_nxt,
            ts_echo: flow.echo.0,
            echo_is_retx: flow.echo.1,
            segs_acked: flow.pending_segs.max(1),
            int_echo: flow.int_echo,
        };
        ctx.send(Packet::ack(flow_id, ctx.node(), flow.peer, info));
        flow.pending_segs = 0;
        flow.ece_pending = false;
        flow.delack_armed = false;
        flow.timer_gen += 1; // invalidate any armed delack timer
        flow.stats.acks_sent += 1;
    }

    fn on_data(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let raw = pkt.flow.index() as u32;
        let key = match self.by_flow.get(raw) {
            Some(k) => k,
            None => {
                let k = self.flows.insert(RxFlow::new(pkt.src));
                self.by_flow.set(raw, k);
                k
            }
        };
        let Some(flow) = self.flows.get_mut(key) else {
            return; // index and table disagree: treat as unknown flow
        };
        flow.stats.data_segs += 1;
        flow.echo = (pkt.sent_at, pkt.is_retx);
        flow.int_echo = pkt.int;

        let ce = pkt.ecn.is_ce();
        if ce {
            flow.ce_bytes += pkt.payload_bytes as u64;
            flow.ece_pending = true;
            flow.stats.ce_segs += 1;
        }
        // DCTCP: a CE-state flip forces an immediate ack so the sender's
        // marked-byte accounting stays exact.
        let ce_flip = matches!(self.policy, AckPolicy::DctcpCeAware { .. }) && ce != flow.last_ce;
        flow.last_ce = ce;

        let seq = pkt.seq;
        let end = pkt.seq_end();
        let mut out_of_order = false;

        if end <= flow.rcv_nxt {
            // Entirely old data (a spurious retransmission): dup-ack it.
            flow.stats.dup_segs += 1;
            Self::send_ack(pkt.flow, flow, ctx);
            return;
        } else if seq <= flow.rcv_nxt {
            // In-order (possibly partially old): advance.
            flow.rcv_nxt = end;
            // Drain any now-contiguous out-of-order ranges.
            while let Some((&s, &e)) = flow.ooo.iter().next() {
                if s > flow.rcv_nxt {
                    break;
                }
                flow.rcv_nxt = flow.rcv_nxt.max(e);
                flow.ooo.remove(&s);
            }
            if flow.last_block.is_some_and(|(ls, _)| ls < flow.rcv_nxt) {
                flow.last_block = None;
            }
            flow.pending_segs += 1;
        } else {
            // A gap: buffer and SACK immediately.
            flow.insert_ooo(seq, end);
            flow.last_block = Some((seq, end));
            flow.stats.ooo_segs += 1;
            out_of_order = true;
            flow.pending_segs += 1;
        }

        let immediate = out_of_order
            || ce_flip
            || match self.policy {
                AckPolicy::Immediate => true,
                AckPolicy::Delayed { every, .. } | AckPolicy::DctcpCeAware { every, .. } => {
                    flow.pending_segs >= every
                }
            };

        if immediate {
            Self::send_ack(pkt.flow, flow, ctx);
        } else if !flow.delack_armed {
            let timeout = match self.policy {
                AckPolicy::Immediate => SimDuration::ZERO,
                AckPolicy::Delayed { timeout, .. } | AckPolicy::DctcpCeAware { timeout, .. } => {
                    timeout
                }
            };
            flow.delack_armed = true;
            flow.timer_gen += 1;
            let token = Self::timer_token(pkt.flow, flow.timer_gen);
            ctx.set_timer_after(timeout, token);
        }
    }

    fn timer_token(flow: FlowId, gen: u64) -> u64 {
        (flow.index() as u64) | (gen << 20)
    }

    fn decode_token(token: u64) -> (FlowId, u64) {
        (FlowId::from_raw((token & 0xF_FFFF) as u32), token >> 20)
    }
}

impl Agent for TcpReceiver {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        match pkt.kind {
            PacketKind::Data => self.on_data(pkt, ctx),
            // Receivers don't expect acks; ignore.
            PacketKind::Ack(_) => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let (flow_id, gen) = Self::decode_token(token);
        let Some(flow) = self
            .by_flow
            .get(flow_id.index() as u32)
            .and_then(|k| self.flows.get_mut(k))
        else {
            return;
        };
        if flow.timer_gen != gen || !flow.delack_armed {
            return; // stale timer
        }
        if flow.pending_segs > 0 {
            Self::send_ack(flow_id, flow, ctx);
        } else {
            flow.delack_armed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::Network;
    use netsim::link::LinkSpec;
    use netsim::packet::EcnCodepoint;
    use netsim::units::Rate;

    /// Harness: a data source host wired to a receiver host; the source
    /// agent records acks it gets back.
    struct Source {
        script: Vec<(SimDuration, Packet)>,
        acks: Vec<AckInfo>,
    }

    impl Agent for Source {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (i, (delay, _)) in self.script.iter().enumerate() {
                ctx.set_timer_after(*delay, i as u64);
            }
        }
        fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx<'_>) {
            if let PacketKind::Ack(info) = pkt.kind {
                self.acks.push(info);
            }
        }
        fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
            let pkt = self.script[token as usize].1;
            ctx.send(pkt);
        }
    }

    const FLOW: FlowId = FlowId::from_raw(1);

    fn seg(src: NodeId, dst: NodeId, seq: u64, len: u32, ecn: EcnCodepoint) -> Packet {
        Packet::data(FLOW, src, dst, seq, len, ecn)
    }

    fn run_script(
        policy: AckPolicy,
        script: impl Fn(NodeId, NodeId) -> Vec<(SimDuration, Packet)>,
    ) -> (Vec<AckInfo>, ReceiverFlowStats, u64) {
        let mut net = Network::new(9);
        let src = net.add_host();
        let dst = net.add_host();
        let fwd = net.add_link(
            src,
            dst,
            LinkSpec::droptail(
                Rate::from_gbps(100.0),
                SimDuration::from_nanos(10),
                10_000_000,
            ),
        );
        let back = net.add_link(
            dst,
            src,
            LinkSpec::droptail(
                Rate::from_gbps(100.0),
                SimDuration::from_nanos(10),
                10_000_000,
            ),
        );
        net.add_route(src, dst, fwd);
        net.add_route(dst, src, back);
        net.attach_agent(
            src,
            Box::new(Source {
                script: script(src, dst),
                acks: Vec::new(),
            }),
        );
        net.attach_agent(dst, Box::new(TcpReceiver::new(policy)));
        net.run();
        let stats = net.agent::<TcpReceiver>(dst).unwrap().flow_stats(FLOW);
        let received = net.agent::<TcpReceiver>(dst).unwrap().bytes_received(FLOW);
        let acks = net.agent::<Source>(src).unwrap().acks.clone();
        (acks, stats, received)
    }

    #[test]
    fn delayed_ack_coalesces_pairs() {
        let (acks, stats, received) = run_script(AckPolicy::delayed_default(), |s, d| {
            (0..4u64)
                .map(|i| {
                    (
                        SimDuration::from_micros(i * 10),
                        seg(s, d, i * 1000, 1000, EcnCodepoint::NotEct),
                    )
                })
                .collect()
        });
        assert_eq!(received, 4000);
        assert_eq!(stats.acks_sent, 2, "4 in-order segments -> 2 acks");
        assert_eq!(acks.last().unwrap().cum_ack, 4000);
        assert_eq!(acks.last().unwrap().segs_acked, 2);
    }

    #[test]
    fn lone_segment_is_flushed_by_delack_timer() {
        let (acks, ..) = run_script(AckPolicy::delayed_default(), |s, d| {
            vec![(SimDuration::ZERO, seg(s, d, 0, 1000, EcnCodepoint::NotEct))]
        });
        assert_eq!(acks.len(), 1, "delack timeout must flush the ack");
        assert_eq!(acks[0].cum_ack, 1000);
    }

    #[test]
    fn immediate_policy_acks_every_segment() {
        let (acks, ..) = run_script(AckPolicy::Immediate, |s, d| {
            (0..5u64)
                .map(|i| {
                    (
                        SimDuration::from_micros(i * 10),
                        seg(s, d, i * 1000, 1000, EcnCodepoint::NotEct),
                    )
                })
                .collect()
        });
        assert_eq!(acks.len(), 5);
    }

    #[test]
    fn gap_triggers_immediate_dupack_with_sack() {
        let (acks, stats, received) = run_script(AckPolicy::delayed_default(), |s, d| {
            vec![
                (SimDuration::ZERO, seg(s, d, 0, 1000, EcnCodepoint::NotEct)),
                // 1000..2000 lost
                (
                    SimDuration::from_micros(10),
                    seg(s, d, 2000, 1000, EcnCodepoint::NotEct),
                ),
                (
                    SimDuration::from_micros(20),
                    seg(s, d, 3000, 1000, EcnCodepoint::NotEct),
                ),
            ]
        });
        assert_eq!(received, 1000);
        assert_eq!(stats.ooo_segs, 2);
        // Each out-of-order arrival acks immediately.
        let with_sack: Vec<_> = acks.iter().filter(|a| !a.sacks.is_empty()).collect();
        assert!(with_sack.len() >= 2);
        let last = acks.last().unwrap();
        assert_eq!(last.cum_ack, 1000);
        let blocks: Vec<_> = last.sacks.iter().collect();
        assert_eq!(blocks[0], (2000, 4000), "merged SACK block");
    }

    #[test]
    fn retransmission_fills_gap_and_advances() {
        let (acks, _, received) = run_script(AckPolicy::delayed_default(), |s, d| {
            let mut retx = seg(s, d, 1000, 1000, EcnCodepoint::NotEct);
            retx.is_retx = true;
            vec![
                (SimDuration::ZERO, seg(s, d, 0, 1000, EcnCodepoint::NotEct)),
                (
                    SimDuration::from_micros(10),
                    seg(s, d, 2000, 1000, EcnCodepoint::NotEct),
                ),
                (SimDuration::from_micros(30), retx),
            ]
        });
        assert_eq!(received, 3000);
        let last = acks.last().unwrap();
        assert_eq!(last.cum_ack, 3000);
        assert!(last.sacks.is_empty(), "no ooo data left");
        assert!(last.echo_is_retx, "echo must flag the retransmission");
    }

    #[test]
    fn old_duplicate_is_dupacked() {
        let (acks, stats, _) = run_script(AckPolicy::delayed_default(), |s, d| {
            vec![
                (SimDuration::ZERO, seg(s, d, 0, 1000, EcnCodepoint::NotEct)),
                (
                    SimDuration::from_micros(10),
                    seg(s, d, 1000, 1000, EcnCodepoint::NotEct),
                ),
                // Duplicate of the first segment.
                (
                    SimDuration::from_micros(20),
                    seg(s, d, 0, 1000, EcnCodepoint::NotEct),
                ),
            ]
        });
        assert_eq!(stats.dup_segs, 1);
        assert_eq!(acks.last().unwrap().cum_ack, 2000);
    }

    #[test]
    fn ce_bytes_accumulate() {
        let (acks, stats, _) = run_script(AckPolicy::dctcp_default(), |s, d| {
            vec![
                (SimDuration::ZERO, seg(s, d, 0, 1000, EcnCodepoint::Ce)),
                (
                    SimDuration::from_micros(10),
                    seg(s, d, 1000, 1000, EcnCodepoint::Ce),
                ),
                (
                    SimDuration::from_micros(20),
                    seg(s, d, 2000, 1000, EcnCodepoint::Ect0),
                ),
            ]
        });
        assert_eq!(stats.ce_segs, 2);
        assert_eq!(acks.last().unwrap().ce_bytes, 2000);
    }

    #[test]
    fn dctcp_acks_immediately_on_ce_flip() {
        let (acks, ..) = run_script(AckPolicy::dctcp_default(), |s, d| {
            vec![
                // Not CE -> CE flip must force an ack on the second
                // segment even though `every` = 2 hasn't been reached by
                // steady state.
                (SimDuration::ZERO, seg(s, d, 0, 1000, EcnCodepoint::Ect0)),
                (
                    SimDuration::from_micros(1),
                    seg(s, d, 1000, 1000, EcnCodepoint::Ce),
                ),
                (
                    SimDuration::from_micros(2),
                    seg(s, d, 2000, 1000, EcnCodepoint::Ce),
                ),
                (
                    SimDuration::from_micros(3),
                    seg(s, d, 3000, 1000, EcnCodepoint::Ect0),
                ),
            ]
        });
        // Flip acks at segment 2 (NotCE->CE boundary also coalesces the
        // pending first segment) and at segment 4 (CE->NotCE), plus the
        // delack for segment 3... exact count: seg2 flip-ack, seg3 starts
        // a new pending run, seg4 flips and acks. >= 2 immediate acks.
        assert!(acks.len() >= 2, "got {} acks", acks.len());
        assert_eq!(acks.last().unwrap().cum_ack, 4000);
    }

    #[test]
    fn ece_flag_set_once_until_acked() {
        let (acks, ..) = run_script(AckPolicy::delayed_default(), |s, d| {
            vec![
                (SimDuration::ZERO, seg(s, d, 0, 1000, EcnCodepoint::Ce)),
                (
                    SimDuration::from_micros(10),
                    seg(s, d, 1000, 1000, EcnCodepoint::Ect0),
                ),
                (
                    SimDuration::from_micros(600),
                    seg(s, d, 2000, 1000, EcnCodepoint::Ect0),
                ),
                (
                    SimDuration::from_micros(610),
                    seg(s, d, 3000, 1000, EcnCodepoint::Ect0),
                ),
            ]
        });
        assert!(acks[0].ece, "first ack carries ECE");
        assert!(!acks.last().unwrap().ece, "ECE clears after being echoed");
    }

    #[test]
    fn sack_block_merging_across_many_gaps() {
        let (acks, ..) = run_script(AckPolicy::delayed_default(), |s, d| {
            // Arrivals: 2000, 4000, 3000 -> should merge into 2000..5000.
            vec![
                (
                    SimDuration::ZERO,
                    seg(s, d, 2000, 1000, EcnCodepoint::NotEct),
                ),
                (
                    SimDuration::from_micros(10),
                    seg(s, d, 4000, 1000, EcnCodepoint::NotEct),
                ),
                (
                    SimDuration::from_micros(20),
                    seg(s, d, 3000, 1000, EcnCodepoint::NotEct),
                ),
            ]
        });
        let last = acks.last().unwrap();
        let blocks: Vec<_> = last.sacks.iter().collect();
        assert_eq!(blocks, vec![(2000, 5000)]);
        assert_eq!(last.cum_ack, 0);
    }
}
