//! Multiplexing several flows onto one host.
//!
//! The paper's future-work list (§5) asks what happens to the unfairness
//! savings when multiple flows share *the same sender* — per-socket power
//! then depends on the aggregate, not on per-flow rates. [`MuxSender`]
//! hosts any number of [`TcpSender`] state machines behind a single agent
//! (one kernel, many sockets), dispatching packets by flow id and timers
//! by token namespace.
//!
//! At population scale (thousands of flows behind a few hosts) the mux
//! sits on the per-ack hot path, so the sub-senders live in a
//! [`FlowTable`] and packet dispatch goes through a [`DenseIndex`] from
//! flow id to table key: O(1) per ack where the old `Vec` scan was
//! O(flows). Batched deliveries ([`Agent::on_packets`]) walk the index
//! once per packet but pay the agent-dispatch setup only once.

use crate::sender::TcpSender;
use netsim::agent::{Agent, Ctx, TOKEN_BITS, TOKEN_MASK};
use netsim::flowtab::{DenseIndex, FlowKey, FlowTable};
use netsim::packet::Packet;

/// Several TCP senders sharing one host.
pub struct MuxSender {
    subs: FlowTable<TcpSender>,
    /// Construction-order handles, for positional access (`sub(i)`) and
    /// timer-namespace dispatch (namespace = index + 1).
    order: Vec<FlowKey>,
    /// Flow raw id -> table key: the O(1) per-packet dispatch path.
    by_flow: DenseIndex,
}

impl MuxSender {
    /// Multiplex the given senders (at most `u16::MAX - 1`).
    pub fn new(senders: Vec<TcpSender>) -> Self {
        assert!(!senders.is_empty(), "a mux needs at least one sender");
        assert!(senders.len() < u16::MAX as usize, "too many sub-senders");
        let mut subs = FlowTable::with_capacity(senders.len());
        let mut order = Vec::with_capacity(senders.len());
        let mut by_flow = DenseIndex::new();
        for sub in senders {
            let flow = sub.flow().index() as u32;
            let k = subs.insert(sub);
            let clash = by_flow.set(flow, k);
            assert!(clash.is_none(), "duplicate flow id f{flow} in one mux");
            order.push(k);
        }
        MuxSender {
            subs,
            order,
            by_flow,
        }
    }

    /// Access a sub-sender by construction index. Panics on an
    /// out-of-range index, exactly as the old `Vec` storage did.
    pub fn sub(&self, i: usize) -> &TcpSender {
        self.subs
            .get(self.order[i])
            // simlint::allow(panic-hygiene, reason = "construction-order keys are never removed, so this is reachable only via an out-of-range caller index — the same contract as Vec indexing")
            .expect("mux never removes sub-senders")
    }

    /// Attach an observability recorder to every sub-sender.
    pub fn set_recorder(&mut self, recorder: obs::SharedRecorder) {
        for (_, sub) in self.subs.iter_mut() {
            sub.set_recorder(recorder.clone());
        }
    }

    /// Number of multiplexed senders.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no sub-senders exist (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// True once every sub-flow has completed.
    pub fn all_complete(&self) -> bool {
        self.subs.iter().all(|(_, s)| s.is_complete())
    }

    /// Dispatch one callback to the sub-sender at construction index
    /// `idx`, inside its timer-token namespace.
    fn with_namespace<R>(
        &mut self,
        idx: usize,
        ctx: &mut Ctx<'_>,
        f: impl FnOnce(&mut TcpSender, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        let sub = self.subs.get_mut(self.order[idx])?;
        ctx.set_token_namespace((idx + 1) as u16);
        let r = f(sub, ctx);
        ctx.set_token_namespace(0);
        Some(r)
    }

    fn dispatch_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let Some(key) = self.by_flow.get(pkt.flow.index() as u32) else {
            return; // not ours
        };
        // Construction order is insertion order, and the mux never
        // removes, so the slot index IS the construction index — the
        // namespace tag comes straight off the key.
        let idx = key.slot();
        debug_assert_eq!(self.order[idx], key);
        let Some(sub) = self.subs.get_mut(key) else {
            return;
        };
        ctx.set_token_namespace((idx + 1) as u16);
        sub.on_packet(pkt, ctx);
        ctx.set_token_namespace(0);
    }
}

impl Agent for MuxSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.order.len() {
            self.with_namespace(i, ctx, |sub, ctx| sub.on_start(ctx));
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.dispatch_packet(pkt, ctx);
    }

    /// Batched dispatch: same per-packet routing as [`Self::on_packet`],
    /// in delivery order, with the agent-level setup paid once. Must stay
    /// bit-identical to N single dispatches (the engine's batching
    /// equivalence contract).
    fn on_packets(&mut self, pkts: &mut Vec<Packet>, ctx: &mut Ctx<'_>) {
        for pkt in pkts.drain(..) {
            self.dispatch_packet(pkt, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let ns = (token >> TOKEN_BITS) as usize;
        if ns == 0 || ns > self.order.len() {
            return; // not a sub-sender token
        }
        self.with_namespace(ns - 1, ctx, |sub, ctx| {
            sub.on_timer(token & TOKEN_MASK, ctx)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedCwnd;
    use crate::receiver::{AckPolicy, TcpReceiver};
    use crate::sender::TcpSenderConfig;
    use netsim::engine::Network;
    use netsim::ids::FlowId;
    use netsim::link::LinkSpec;
    use netsim::time::{SimDuration, SimTime};
    use netsim::units::Rate;

    fn mux_net(flows: usize, bytes: u64) -> (Network, netsim::ids::NodeId, netsim::ids::NodeId) {
        let mut net = Network::new(3);
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(
            a,
            b,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(25),
                1_000_000,
            ),
        );
        let ba = net.add_link(
            b,
            a,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(25),
                4_000_000,
            ),
        );
        net.add_route(a, b, ab);
        net.add_route(b, a, ba);
        let subs: Vec<TcpSender> = (0..flows)
            .map(|i| {
                TcpSender::new(
                    TcpSenderConfig::bulk(FlowId::from_raw(i as u32), b, 9000, bytes),
                    Box::new(FixedCwnd::new(200_000)),
                )
            })
            .collect();
        net.attach_agent(a, Box::new(MuxSender::new(subs)));
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        (net, a, b)
    }

    #[test]
    fn three_multiplexed_flows_all_complete() {
        let (mut net, a, b) = mux_net(3, 5_000_000);
        net.run_until(SimTime::from_secs(10));
        let mux = net.agent::<MuxSender>(a).unwrap();
        assert_eq!(mux.len(), 3);
        assert!(mux.all_complete(), "all sub-flows must finish");
        for i in 0..3 {
            assert_eq!(mux.sub(i).stats().bytes_acked, 5_000_000);
        }
        let recv = net.agent::<TcpReceiver>(b).unwrap();
        for i in 0..3 {
            assert_eq!(recv.bytes_received(FlowId::from_raw(i as u32)), 5_000_000);
        }
    }

    #[test]
    fn timers_route_to_the_right_subflow() {
        // Give the flows very different sizes so their timer lifetimes
        // differ; cross-delivery of a timer would stall or panic.
        let (mut net, a, _) = mux_net(2, 1_000_000);
        net.run_until(SimTime::from_secs(10));
        let mux = net.agent::<MuxSender>(a).unwrap();
        assert!(mux.all_complete());
        // Deterministic FCTs and distinct flows stayed independent.
        assert!(mux.sub(0).fct().is_some());
        assert!(mux.sub(1).fct().is_some());
    }

    #[test]
    fn mux_aggregate_matches_link_rate() {
        let (mut net, a, _) = mux_net(4, 25_000_000);
        net.run_until(SimTime::from_secs(10));
        let mux = net.agent::<MuxSender>(a).unwrap();
        assert!(mux.all_complete());
        let last = (0..4)
            .map(|i| mux.sub(i).stats().completed_at.unwrap())
            .max()
            .unwrap();
        // 100 MB over a 10 Gb/s link: >= 80 ms, <= 150 ms.
        let secs = last.as_secs_f64();
        assert!((0.08..0.15).contains(&secs), "aggregate window {secs}");
    }

    #[test]
    fn flow_id_dispatch_is_sparse_safe() {
        // Non-contiguous flow ids (the population generator numbers flows
        // globally, so one host's mux sees ids like 17, 3017, 6017).
        let mut net = Network::new(4);
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(
            a,
            b,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(25),
                1_000_000,
            ),
        );
        let ba = net.add_link(
            b,
            a,
            LinkSpec::droptail(
                Rate::from_gbps(10.0),
                SimDuration::from_micros(25),
                4_000_000,
            ),
        );
        net.add_route(a, b, ab);
        net.add_route(b, a, ba);
        let ids = [17u32, 3017, 6017];
        let subs: Vec<TcpSender> = ids
            .iter()
            .map(|&i| {
                TcpSender::new(
                    TcpSenderConfig::bulk(FlowId::from_raw(i), b, 9000, 500_000),
                    Box::new(FixedCwnd::new(100_000)),
                )
            })
            .collect();
        net.attach_agent(a, Box::new(MuxSender::new(subs)));
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(5));
        let mux = net.agent::<MuxSender>(a).unwrap();
        assert!(mux.all_complete());
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(mux.sub(i).flow(), FlowId::from_raw(id));
            assert_eq!(mux.sub(i).stats().bytes_acked, 500_000);
        }
    }
}
