//! The send side: window management, loss recovery, retransmission
//! timers, pacing, and the hookup to a pluggable congestion controller.
//!
//! One [`TcpSender`] agent drives one flow (the simulated analogue of one
//! `iperf3 -c` process pinned to one socket), transferring a fixed number
//! of bytes and recording the statistics the paper reports.

use crate::cc::{AckEvent, CongestionControl, CongestionEvent};
use crate::gate::SendGate;
use crate::rtt::RttEstimator;
use crate::scoreboard::Scoreboard;
use crate::stats::{FlowOutcome, SenderStats};
use netsim::agent::{Agent, Ctx};
use netsim::ids::{FlowId, NodeId};
use netsim::packet::{EcnCodepoint, Packet, PacketKind};
use netsim::time::{SimDuration, SimTime};
use netsim::units::Rate;
use obs::FlowEvent;

/// Static configuration of a sender.
#[derive(Clone, Debug)]
pub struct TcpSenderConfig {
    /// Flow identifier (must be unique per flow in the network).
    pub flow: FlowId,
    /// Destination host.
    pub dst: NodeId,
    /// Maximum segment payload in bytes (MTU minus 40 header bytes).
    pub mss: u32,
    /// Total application bytes to transfer.
    pub total_bytes: u64,
    /// Application throttle (iperf3 `-b`), if any.
    pub app_rate_limit: Option<Rate>,
    /// Host packet-processing ceiling: minimum gap between emitted
    /// packets. `ZERO` disables.
    pub min_pkt_gap: SimDuration,
    /// Minimum retransmission timeout (Linux default: 200 ms).
    pub min_rto: SimDuration,
    /// Maximum retransmission timeout.
    pub max_rto: SimDuration,
    /// Delay before the flow starts sending.
    pub start_delay: SimDuration,
    /// Enable the tail-loss probe (Linux default: on). Disabling it makes
    /// every tail loss wait out a full RTO — exposed for ablation.
    pub tlp: bool,
    /// Timed changes to the application rate limit: at each absolute
    /// instant the limit is replaced (`None` lifts it). Experiments use
    /// this to re-allocate bandwidth mid-run, e.g. un-throttling the
    /// surviving flow once its peer completes (Figure 1).
    pub rate_schedule: Vec<(SimTime, Option<Rate>)>,
    /// Give up after this many *consecutive* retransmission timeouts with
    /// no forward progress (the `tcp_retries2` analogue; Linux default
    /// 15 ≈ 15 minutes of backoff). An exhausted budget aborts the flow
    /// cleanly — timers cancelled, [`FlowOutcome::Aborted`] reported —
    /// instead of retrying a dead path forever.
    pub max_rto_retries: u32,
    /// Seed the RTT estimator with this value at start, standing in for
    /// the handshake RTT sample this model does not simulate. Without it,
    /// a flow whose entire first burst is lost has no sample, cannot arm
    /// a tail-loss probe, and stalls for the full 1 s initial RTO — a
    /// pathology real connections avoid because SYN/SYN-ACK always
    /// provides a sample.
    pub initial_rtt_hint: Option<SimDuration>,
}

impl TcpSenderConfig {
    /// A bulk transfer of `total_bytes` to `dst` with MTU-derived `mss`.
    pub fn bulk(flow: FlowId, dst: NodeId, mtu: u32, total_bytes: u64) -> Self {
        assert!(mtu > netsim::packet::HEADER_BYTES, "MTU must fit headers");
        TcpSenderConfig {
            flow,
            dst,
            mss: mtu - netsim::packet::HEADER_BYTES,
            total_bytes,
            app_rate_limit: None,
            min_pkt_gap: SimDuration::ZERO,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(120),
            start_delay: SimDuration::ZERO,
            tlp: true,
            max_rto_retries: 15,
            rate_schedule: Vec::new(),
            initial_rtt_hint: None,
        }
    }

    /// Throttle the application to `rate` (wire bytes per second).
    pub fn with_rate_limit(mut self, rate: Rate) -> Self {
        self.app_rate_limit = Some(rate);
        self
    }

    /// Set the host packet-processing ceiling.
    pub fn with_min_pkt_gap(mut self, gap: SimDuration) -> Self {
        self.min_pkt_gap = gap;
        self
    }

    /// Set the start delay.
    pub fn with_start_delay(mut self, delay: SimDuration) -> Self {
        self.start_delay = delay;
        self
    }

    /// Set RTO bounds.
    pub fn with_rto_bounds(mut self, min: SimDuration, max: SimDuration) -> Self {
        self.min_rto = min;
        self.max_rto = max;
        self
    }

    /// Disable the tail-loss probe (ablation).
    pub fn without_tlp(mut self) -> Self {
        self.tlp = false;
        self
    }

    /// Set the consecutive-RTO retry budget (`tcp_retries2` analogue).
    pub fn with_max_rto_retries(mut self, retries: u32) -> Self {
        self.max_rto_retries = retries;
        self
    }

    /// Schedule a rate-limit change at an absolute simulation time.
    pub fn with_rate_change(mut self, at: SimTime, rate: Option<Rate>) -> Self {
        self.rate_schedule.push((at, rate));
        self
    }

    /// Seed the RTT estimator (the handshake-sample stand-in).
    pub fn with_rtt_hint(mut self, rtt: SimDuration) -> Self {
        self.initial_rtt_hint = Some(rtt);
        self
    }
}

// Timer token layout: low 3 bits = kind, rest = generation.
const TOKEN_KIND_RTO: u64 = 0;
const TOKEN_KIND_PACE: u64 = 1;
const TOKEN_KIND_START: u64 = 2;
const TOKEN_KIND_TLP: u64 = 3;
const TOKEN_KIND_SCHED: u64 = 4;

fn token(kind: u64, gen: u64) -> u64 {
    kind | (gen << 3)
}

/// The sender agent.
pub struct TcpSender {
    cfg: TcpSenderConfig,
    cc: Box<dyn CongestionControl>,
    board: Scoreboard,
    rtt: RttEstimator,
    gate: SendGate,
    /// Next new byte to send.
    next_seq: u64,
    /// Cumulative delivered bytes (cum-acked + SACKed), for rate samples.
    delivered: u64,
    /// Last cumulative CE-byte count reported by the receiver.
    last_ce_bytes: u64,
    in_recovery: bool,
    recovery_point: u64,
    /// PRR-style packet conservation during fast recovery: bytes we are
    /// allowed to send (grows with deliveries) and bytes sent since
    /// entering recovery. Without this bound a still-too-large window
    /// keeps the pipe overfilled for the whole recovery episode and
    /// retransmissions are re-dropped every round trip.
    recovery_quota: u64,
    recovery_sent: u64,
    /// Round-trip counting: the round increments when `snd_una` passes
    /// `round_end`.
    round: u64,
    round_end: u64,
    // RTO machinery: a lazily re-armed single timer.
    rto_deadline: Option<SimTime>,
    rto_timer_at: Option<SimTime>,
    rto_gen: u64,
    // Tail-loss probe (RFC 8985 / Linux TLP): fires 2*srtt after the last
    // activity to solicit SACK evidence for a dropped tail, instead of
    // waiting out a full RTO.
    tlp_deadline: Option<SimTime>,
    tlp_timer_at: Option<SimTime>,
    tlp_gen: u64,
    /// One probe per silence episode; re-armed by the next ack.
    tlp_fired: bool,
    // Pace timer.
    pace_armed: bool,
    pace_gen: u64,
    started: bool,
    completed: bool,
    /// The flow gave up (retry budget exhausted); terminal like
    /// `completed`, but the transfer did not finish.
    aborted: bool,
    /// Consecutive RTO firings with no intervening delivery; compared
    /// against `cfg.max_rto_retries`.
    consecutive_rtos: u32,
    ecn: bool,
    /// Post-RTO loss window: after a timeout the kernel collapses the
    /// *effective* window to one segment and slow-starts it back up,
    /// regardless of what the CC module reports (`tcp_enter_loss`
    /// semantics). `None` once it catches up with the CC's window.
    loss_cap: Option<u64>,
    /// Whether the window actually blocked a transmission since the last
    /// ack (RFC 2861 window validation input for the CC).
    cwnd_limited: bool,
    /// Observability seam (see [`TcpSender::set_recorder`]); `None` keeps
    /// every hook at a single branch. Purely observational — the recorder
    /// never feeds back into transport decisions.
    recorder: Option<obs::SharedRecorder>,
    /// Last congestion window reported to the recorder, so the flight
    /// ring records cwnd *changes* rather than one entry per ack.
    last_cwnd_recorded: u64,
    stats: SenderStats,
}

impl TcpSender {
    /// Build a sender over a congestion controller.
    pub fn new(cfg: TcpSenderConfig, cc: Box<dyn CongestionControl>) -> Self {
        let mss = cfg.mss;
        let mut gate = SendGate::new();
        gate.set_app_rate(cfg.app_rate_limit);
        gate.set_min_gap(cfg.min_pkt_gap);
        let ecn = cc.wants_ecn();
        let mut rtt = RttEstimator::with_bounds(cfg.min_rto, cfg.max_rto);
        if let Some(hint) = cfg.initial_rtt_hint {
            rtt.on_sample(hint);
        }
        TcpSender {
            rtt,
            board: Scoreboard::new(mss),
            gate,
            cfg,
            cc,
            next_seq: 0,
            delivered: 0,
            last_ce_bytes: 0,
            in_recovery: false,
            recovery_point: 0,
            recovery_quota: 0,
            recovery_sent: 0,
            round: 0,
            round_end: 0,
            rto_deadline: None,
            rto_timer_at: None,
            rto_gen: 0,
            tlp_deadline: None,
            tlp_timer_at: None,
            tlp_gen: 0,
            tlp_fired: false,
            pace_armed: false,
            pace_gen: 0,
            started: false,
            completed: false,
            aborted: false,
            consecutive_rtos: 0,
            ecn,
            loss_cap: None,
            cwnd_limited: true,
            recorder: None,
            last_cwnd_recorded: 0,
            stats: SenderStats::default(),
        }
    }

    /// Attach an observability recorder; the sender reports cwnd moves,
    /// RTT samples, loss/recovery episodes, RTOs, ECN feedback, pacing
    /// stalls, and retransmissions into it.
    pub fn set_recorder(&mut self, recorder: obs::SharedRecorder) {
        self.recorder = Some(recorder);
    }

    /// Report a flow event to the recorder, if one is attached.
    #[inline]
    fn record(&self, at: SimTime, event: FlowEvent) {
        if let Some(rec) = &self.recorder {
            rec.borrow_mut()
                .flow_event(at.as_nanos(), self.cfg.flow.index() as u32, event);
        }
    }

    /// Report the congestion window if it moved since the last report.
    #[inline]
    fn record_cwnd(&mut self, at: SimTime) {
        if self.recorder.is_none() {
            return;
        }
        let cwnd = self.cc.cwnd();
        if cwnd != self.last_cwnd_recorded {
            self.last_cwnd_recorded = cwnd;
            self.record(at, FlowEvent::CwndChange { cwnd_bytes: cwnd });
        }
    }

    /// The flow this sender drives.
    pub fn flow(&self) -> FlowId {
        self.cfg.flow
    }

    /// The congestion controller's kernel-style name.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// The CC's relative per-ack compute cost (energy model input).
    pub fn compute_cost_factor(&self) -> f64 {
        self.cc.compute_cost_factor()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// True once every byte is cumulatively acknowledged.
    pub fn is_complete(&self) -> bool {
        self.completed
    }

    /// True if the sender gave up (retry budget exhausted).
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }

    /// Terminal state of the flow.
    pub fn outcome(&self) -> FlowOutcome {
        self.stats.outcome()
    }

    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<SimDuration> {
        self.stats.fct()
    }

    /// Current congestion window (bytes), for tests and traces.
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// Current smoothed RTT.
    pub fn srtt(&self) -> SimDuration {
        self.rtt.srtt()
    }

    /// Change the application rate limit mid-flow (experiments use this
    /// to re-allocate bandwidth).
    pub fn set_rate_limit(&mut self, rate: Option<Rate>) {
        self.gate.set_app_rate(rate);
    }

    fn app_limited(&self) -> bool {
        self.gate.app_rate().is_some()
            || self.cfg.total_bytes.saturating_sub(self.next_seq) < 4 * self.cfg.mss as u64
    }

    fn effective_cwnd(&self) -> u64 {
        let cc_cwnd = self.cc.cwnd();
        let capped = match self.loss_cap {
            Some(cap) => cc_cwnd.min(cap),
            None => cc_cwnd,
        };
        capped.max(self.cfg.mss as u64)
    }

    fn send_segment(&mut self, ctx: &mut Ctx<'_>, seq: u64, len: u32, is_retx: bool) {
        let ecn = if self.ecn {
            EcnCodepoint::Ect0
        } else {
            EcnCodepoint::NotEct
        };
        let mut pkt = Packet::data(self.cfg.flow, ctx.node(), self.cfg.dst, seq, len, ecn);
        pkt.is_retx = is_retx;
        let wire = pkt.wire_bytes as u64;
        ctx.send(pkt);
        self.gate.on_send(ctx.now(), wire, self.cc.pacing_rate());
        self.stats.segs_sent += 1;
        if self.stats.started_at.is_none() {
            self.stats.started_at = Some(ctx.now());
            self.record(ctx.now(), FlowEvent::Started);
        }
        if is_retx {
            self.stats.retx_segs += 1;
            self.record(ctx.now(), FlowEvent::Retransmit { seq });
        }
    }

    /// The transmission pump: send whatever window, gate, and data allow.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if !self.started || self.completed || self.aborted {
            return;
        }
        let now = ctx.now();
        loop {
            if !self.gate.ready(now) {
                self.arm_pace_timer(ctx);
                break;
            }
            let flight = self.board.in_flight();
            let cwnd = self.effective_cwnd();
            // During fast recovery, packet conservation (PRR's CRB):
            // transmissions are clocked by deliveries, so flight decays
            // toward the reduced window instead of re-overfilling the pipe.
            let quota_room = if self.in_recovery {
                self.recovery_quota.saturating_sub(self.recovery_sent)
            } else {
                u64::MAX
            };
            let window_open = |len: u64| (flight == 0 || flight + len <= cwnd) && len <= quota_room;

            // Retransmissions take priority.
            if window_open(self.cfg.mss as u64) {
                let app_limited = self.app_limited();
                if let Some((seq, len)) =
                    self.board.take_retransmit(now, self.delivered, app_limited)
                {
                    if self.in_recovery {
                        self.recovery_sent += len as u64;
                    }
                    self.send_segment(ctx, seq, len, true);
                    continue;
                }
            }

            // New data.
            let remaining = self.cfg.total_bytes.saturating_sub(self.next_seq);
            if remaining > 0 {
                let len = remaining.min(self.cfg.mss as u64) as u32;
                if window_open(len as u64) {
                    let app_limited = self.app_limited();
                    self.board
                        .on_send(self.next_seq, len, now, self.delivered, app_limited);
                    let seq = self.next_seq;
                    self.next_seq += len as u64;
                    if self.in_recovery {
                        self.recovery_sent += len as u64;
                    }
                    self.send_segment(ctx, seq, len, false);
                    continue;
                }
                // Data waits, the gate is open, but the window is closed:
                // the congestion window is the binding constraint.
                self.cwnd_limited = true;
            }
            break;
        }
        self.maintain_rto(ctx);
        self.maintain_tlp(ctx);
    }

    fn arm_pace_timer(&mut self, ctx: &mut Ctx<'_>) {
        if self.pace_armed {
            return;
        }
        self.pace_armed = true;
        self.pace_gen += 1;
        let at = self.gate.earliest(ctx.now());
        self.record(
            ctx.now(),
            FlowEvent::PacingStall {
                until_ns: at.as_nanos(),
            },
        );
        ctx.set_timer_at(at, token(TOKEN_KIND_PACE, self.pace_gen));
    }

    /// Keep exactly one outstanding RTO timer, lazily re-armed.
    fn maintain_rto(&mut self, ctx: &mut Ctx<'_>) {
        if self.completed || self.aborted {
            self.rto_deadline = None;
            return;
        }
        let outstanding = self.board.in_flight() > 0 || !self.board.is_empty();
        if !outstanding {
            self.rto_deadline = None;
            return;
        }
        let deadline = ctx.now() + self.rtt.rto();
        self.rto_deadline = Some(deadline);
        match self.rto_timer_at {
            // A timer at or before the desired deadline is already armed:
            // it will lazily re-arm itself forward when it fires.
            Some(at) if at <= deadline => {}
            // No timer, or the pending one is *later* than the new
            // deadline (the RTO estimate shrank, e.g. after the first RTT
            // samples replace the 1 s initial RTO): arm a fresh timer and
            // invalidate the old one via the generation counter.
            _ => {
                self.rto_timer_at = Some(deadline);
                self.rto_gen += 1;
                ctx.set_timer_at(deadline, token(TOKEN_KIND_RTO, self.rto_gen));
            }
        }
    }

    /// Probe timeout: `max(2*srtt, 5 ms)` — long enough that delayed acks
    /// and throttled inter-packet gaps never look like silence, short
    /// enough that tail recovery beats the 200 ms RTO by 40x.
    fn probe_timeout(&self) -> SimDuration {
        (self.rtt.srtt() * 2).max(SimDuration::from_millis(5))
    }

    /// Keep exactly one outstanding TLP timer, lazily re-armed.
    fn maintain_tlp(&mut self, ctx: &mut Ctx<'_>) {
        if !self.cfg.tlp
            || self.completed
            || self.aborted
            || self.tlp_fired
            || !self.rtt.has_sample()
            || self.board.in_flight() == 0
        {
            self.tlp_deadline = None;
            return;
        }
        let deadline = ctx.now() + self.probe_timeout();
        self.tlp_deadline = Some(deadline);
        match self.tlp_timer_at {
            Some(at) if at <= deadline => {}
            _ => {
                self.tlp_timer_at = Some(deadline);
                self.tlp_gen += 1;
                ctx.set_timer_at(deadline, token(TOKEN_KIND_TLP, self.tlp_gen));
            }
        }
    }

    fn on_tlp_fired(&mut self, ctx: &mut Ctx<'_>) {
        self.tlp_timer_at = None;
        let Some(deadline) = self.tlp_deadline else {
            return;
        };
        let now = ctx.now();
        if now < deadline {
            self.tlp_timer_at = Some(deadline);
            self.tlp_gen += 1;
            ctx.set_timer_at(deadline, token(TOKEN_KIND_TLP, self.tlp_gen));
            return;
        }
        self.tlp_deadline = None;
        if self.completed || self.board.in_flight() == 0 {
            return;
        }
        // Genuine silence: probe with the last outstanding segment.
        if let Some((seq, len)) = self.board.probe_last(now) {
            self.stats.tlp_probes += 1;
            self.send_segment(ctx, seq, len, true);
            self.tlp_fired = true;
        }
        self.maintain_rto(ctx);
    }

    fn on_rto_fired(&mut self, ctx: &mut Ctx<'_>) {
        self.rto_timer_at = None;
        let Some(deadline) = self.rto_deadline else {
            return; // nothing outstanding anymore
        };
        let now = ctx.now();
        if now < deadline {
            // The deadline moved forward since this timer was armed.
            self.rto_timer_at = Some(deadline);
            self.rto_gen += 1;
            ctx.set_timer_at(deadline, token(TOKEN_KIND_RTO, self.rto_gen));
            return;
        }
        // Genuine timeout.
        self.stats.rto_count += 1;
        self.consecutive_rtos += 1;
        self.record(
            now,
            FlowEvent::Rto {
                consecutive: self.consecutive_rtos,
            },
        );
        if self.consecutive_rtos > self.cfg.max_rto_retries {
            // Retry budget exhausted: the path is dead. Abort cleanly —
            // cancel both deadlines so any timers still in the event queue
            // no-op when they fire, and stop pumping. The event queue
            // drains instead of backing off forever.
            self.aborted = true;
            self.stats.aborted_at = Some(now);
            self.rto_deadline = None;
            self.tlp_deadline = None;
            self.record(now, FlowEvent::Aborted);
            return;
        }
        self.rtt.backoff();
        self.board.mark_all_lost();
        self.cc.on_rto(now, self.cfg.mss);
        self.record_cwnd(now);
        self.loss_cap = Some(self.cfg.mss as u64);
        self.in_recovery = false;
        self.recovery_point = self.next_seq;
        self.rto_deadline = None;
        self.pump(ctx);
    }

    fn on_ack_packet(&mut self, info: &netsim::packet::AckInfo, ctx: &mut Ctx<'_>) {
        if self.completed || self.aborted {
            return;
        }
        let now = ctx.now();
        self.stats.acks_processed += 1;
        self.tlp_fired = false; // fresh feedback opens a new probe episode

        // RTT sample (Karn's rule: skip echoes of retransmissions).
        let rtt_sample = if !info.echo_is_retx && self.stats.started_at.is_some() {
            let sample = now.saturating_since(info.ts_echo);
            if sample > SimDuration::ZERO {
                self.rtt.on_sample(sample);
                Some(sample)
            } else {
                None
            }
        } else {
            None
        };
        if let Some(sample) = rtt_sample {
            self.record(
                now,
                FlowEvent::RttSample {
                    rtt_ns: sample.as_nanos(),
                },
            );
        }

        // RACK reorder tolerance: a quarter RTT, floored at 20 us.
        let reorder_window = (self.rtt.srtt() / 4).max(SimDuration::from_micros(20));
        let outcome = self
            .board
            .on_ack(info.cum_ack, info.sacks.iter(), reorder_window);
        self.delivered += outcome.newly_delivered;
        self.stats.bytes_acked = self.board.snd_una();
        if outcome.newly_delivered > 0 {
            self.consecutive_rtos = 0; // forward progress resets the budget
        }

        // Slow-start the post-RTO loss window back up to the CC's window.
        if let Some(cap) = self.loss_cap {
            let grown = cap + outcome.newly_delivered;
            self.loss_cap = if grown >= self.cc.cwnd() {
                None
            } else {
                Some(grown)
            };
        }

        // Delivery-rate sample (BBR-style).
        let delivery_rate = outcome.rate_anchor.and_then(|anchor| {
            let elapsed = now.saturating_since(anchor.sent_at);
            if elapsed.is_zero() {
                return None;
            }
            let bytes = self.delivered.saturating_sub(anchor.delivered_at_send);
            Some(netsim::units::average_rate(bytes, elapsed))
        });
        let sample_app_limited = outcome.rate_anchor.map(|a| a.app_limited).unwrap_or(false);

        // Round-trip counter.
        if info.cum_ack >= self.round_end {
            self.round += 1;
            self.round_end = self.next_seq.max(info.cum_ack + 1);
        }

        // Deliveries feed the recovery send quota (packet conservation).
        if self.in_recovery {
            self.recovery_quota += outcome.newly_delivered;
        }

        // Loss-triggered congestion event, once per window.
        if outcome.newly_lost > 0 && !self.in_recovery {
            self.in_recovery = true;
            self.recovery_point = self.next_seq;
            self.recovery_quota = outcome.newly_delivered;
            self.recovery_sent = 0;
            self.stats.fast_recoveries += 1;
            self.record(
                now,
                FlowEvent::Loss {
                    bytes: outcome.newly_lost,
                },
            );
            self.record(now, FlowEvent::RecoveryEnter);
            self.cc.on_congestion_event(&CongestionEvent {
                now,
                bytes_in_flight: self.board.in_flight(),
                srtt: self.rtt.srtt(),
            });
        }
        if self.in_recovery && info.cum_ack >= self.recovery_point {
            self.in_recovery = false;
            self.record(now, FlowEvent::RecoveryExit);
        }

        // DCTCP feedback: newly CE-marked bytes.
        let ce_marked_bytes = info.ce_bytes.saturating_sub(self.last_ce_bytes);
        self.last_ce_bytes = info.ce_bytes;
        if ce_marked_bytes > 0 {
            self.record(
                now,
                FlowEvent::EcnMark {
                    bytes: ce_marked_bytes,
                },
            );
        }

        let cwnd_limited = std::mem::replace(&mut self.cwnd_limited, false);
        self.cc.on_ack(&AckEvent {
            now,
            newly_acked_bytes: outcome.newly_delivered,
            rtt_sample,
            srtt: self.rtt.srtt(),
            min_rtt: self.rtt.min_rtt(),
            bytes_in_flight: self.board.in_flight(),
            delivery_rate,
            app_limited: sample_app_limited,
            ce_marked_bytes,
            ecn_echo: info.ece,
            cum_acked: info.cum_ack,
            round: self.round,
            in_recovery: self.in_recovery,
            int: info.int_echo,
            cwnd_limited,
        });
        self.record_cwnd(now);

        // Completion check.
        if self.board.snd_una() >= self.cfg.total_bytes {
            self.completed = true;
            self.stats.completed_at = Some(now);
            self.rto_deadline = None;
            self.record(now, FlowEvent::Completed);
            return;
        }
        self.pump(ctx);
    }
}

impl Agent for TcpSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, &(at, _)) in self.cfg.rate_schedule.iter().enumerate() {
            ctx.set_timer_at(at.max(ctx.now()), token(TOKEN_KIND_SCHED, i as u64));
        }
        if self.cfg.total_bytes == 0 {
            self.completed = true;
            self.stats.started_at = Some(ctx.now());
            self.stats.completed_at = Some(ctx.now());
            return;
        }
        if self.cfg.start_delay.is_zero() {
            self.started = true;
            self.pump(ctx);
        } else {
            ctx.set_timer_after(self.cfg.start_delay, token(TOKEN_KIND_START, 0));
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if pkt.flow != self.cfg.flow {
            return; // not ours (multiple senders on one host unsupported)
        }
        if let PacketKind::Ack(info) = pkt.kind {
            self.on_ack_packet(&info, ctx);
        }
    }

    fn on_timer(&mut self, tok: u64, ctx: &mut Ctx<'_>) {
        let kind = tok & 0b111;
        let gen = tok >> 3;
        match kind {
            TOKEN_KIND_START => {
                self.started = true;
                self.pump(ctx);
            }
            TOKEN_KIND_PACE => {
                if gen == self.pace_gen && self.pace_armed {
                    self.pace_armed = false;
                    self.pump(ctx);
                }
            }
            TOKEN_KIND_RTO => {
                if gen == self.rto_gen {
                    self.on_rto_fired(ctx);
                }
            }
            TOKEN_KIND_TLP => {
                if gen == self.tlp_gen {
                    self.on_tlp_fired(ctx);
                }
            }
            TOKEN_KIND_SCHED => {
                let (_, rate) = self.cfg.rate_schedule[gen as usize];
                self.gate.set_app_rate(rate);
                self.pump(ctx);
            }
            // Unknown kinds would mean a timer token survived an encode
            // change; stale timers are ignored everywhere else, so ignore
            // here too rather than killing the campaign worker.
            _ => debug_assert!(false, "unknown timer token kind {kind}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedCwnd;
    use crate::receiver::{AckPolicy, TcpReceiver};
    use netsim::engine::Network;
    use netsim::link::LinkSpec;
    use netsim::units::{Rate, MB};

    const FLOW: FlowId = FlowId::from_raw(0);

    /// Two hosts, one bottleneck link each way.
    fn simple_net(rate_gbps: f64, buffer: u64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(77);
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(
            a,
            b,
            LinkSpec::droptail(
                Rate::from_gbps(rate_gbps),
                SimDuration::from_micros(25),
                buffer,
            ),
        );
        let ba = net.add_link(
            b,
            a,
            LinkSpec::droptail(
                Rate::from_gbps(rate_gbps),
                SimDuration::from_micros(25),
                4 * MB,
            ),
        );
        net.add_route(a, b, ab);
        net.add_route(b, a, ba);
        (net, a, b)
    }

    fn run_transfer(
        total: u64,
        cwnd: u64,
        rate_gbps: f64,
        buffer: u64,
        limit: Option<Rate>,
    ) -> (SenderStats, u64) {
        let (mut net, a, b) = simple_net(rate_gbps, buffer);
        let mut cfg = TcpSenderConfig::bulk(FLOW, b, 1500, total);
        if let Some(r) = limit {
            cfg = cfg.with_rate_limit(r);
        }
        let sender = TcpSender::new(cfg, Box::new(FixedCwnd::new(cwnd)));
        net.attach_agent(a, Box::new(sender));
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(30));
        let s = net.agent::<TcpSender>(a).unwrap();
        assert!(s.is_complete(), "transfer must finish: {:?}", s.stats());
        let received = net.agent::<TcpReceiver>(b).unwrap().bytes_received(FLOW);
        (s.stats(), received)
    }

    #[test]
    fn clean_transfer_completes_without_retransmissions() {
        let (stats, received) = run_transfer(1_000_000, 100_000, 10.0, 4 * MB, None);
        assert_eq!(received, 1_000_000);
        assert_eq!(stats.bytes_acked, 1_000_000);
        assert_eq!(stats.retx_segs, 0);
        assert_eq!(stats.rto_count, 0);
        // 1 MB in 1460-byte segments.
        assert_eq!(stats.segs_sent, 1_000_000_u64.div_ceil(1460));
    }

    #[test]
    fn window_limits_throughput() {
        // cwnd = 2 segments over a ~52 us RTT path: 2*1460 B per RTT.
        let (stats, _) = run_transfer(292_000, 2 * 1460, 10.0, 4 * MB, None);
        let fct = stats.fct().unwrap();
        // 100 round trips of ~52 us each; far slower than the ~0.25 ms an
        // unconstrained 10 Gb/s transfer would take.
        assert!(
            fct >= SimDuration::from_micros(4_500),
            "fct={fct} too fast for a 2-segment window"
        );
        assert!(
            fct <= SimDuration::from_millis(30),
            "fct={fct} unexpectedly slow"
        );
    }

    #[test]
    fn rate_limit_paces_the_flow() {
        // 1.2 MB at 12 Mbps ~ 0.8 s (wire bytes incl. headers).
        let (stats, _) = run_transfer(
            1_200_000,
            10 * MB,
            10.0,
            4 * MB,
            Some(Rate::from_mbps(12.0)),
        );
        let fct = stats.fct().unwrap().as_secs_f64();
        assert!((0.75..0.95).contains(&fct), "fct={fct}");
    }

    #[test]
    fn overflow_recovers_via_sack_fast_retransmit() {
        // Window moderately above the 30 KB buffer at 1 Gbps: guaranteed
        // drops, recoverable by SACK fast retransmit. (A window *vastly*
        // above the buffer livelocks on RTOs — the congestion collapse the
        // paper's baseline footnote warns about — so this test keeps the
        // overflow in the recoverable regime.)
        let (stats, received) = run_transfer(2_000_000, 80_000, 1.0, 30_000, None);
        assert_eq!(received, 2_000_000);
        assert!(stats.retx_segs > 0, "expected retransmissions");
        assert!(stats.fast_recoveries > 0, "expected SACK recovery");
        // Mid-flow losses must be handled by SACK recovery; only losses in
        // the very tail of the transfer (no later data to trigger SACKs,
        // and no tail-loss probe in this model) may fall back to the RTO.
        assert!(
            stats.rto_count <= 2,
            "too many RTOs for SACK recovery: {}",
            stats.rto_count
        );
    }

    #[test]
    fn complete_transfer_leaves_network_quiescent() {
        let (mut net, a, b) = simple_net(10.0, 4 * MB);
        let sender = TcpSender::new(
            TcpSenderConfig::bulk(FLOW, b, 9000, 500_000),
            Box::new(FixedCwnd::new(100_000)),
        );
        net.attach_agent(a, Box::new(sender));
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        let outcome = net.run_until(SimTime::from_secs(10));
        // The event queue must fully drain (no timer leaks).
        assert_eq!(outcome, netsim::engine::RunOutcome::Drained);
        assert!(net.agent::<TcpSender>(a).unwrap().is_complete());
    }

    #[test]
    fn start_delay_defers_first_send() {
        let (mut net, a, b) = simple_net(10.0, 4 * MB);
        let cfg = TcpSenderConfig::bulk(FLOW, b, 1500, 100_000)
            .with_start_delay(SimDuration::from_millis(50));
        net.attach_agent(
            a,
            Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(100_000)))),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(5));
        let s = net.agent::<TcpSender>(a).unwrap();
        assert!(s.is_complete());
        assert!(s.stats().started_at.unwrap() >= SimTime::from_millis(50));
    }

    #[test]
    fn zero_byte_transfer_is_trivially_complete() {
        let (mut net, a, b) = simple_net(10.0, 4 * MB);
        let cfg = TcpSenderConfig::bulk(FLOW, b, 1500, 0);
        net.attach_agent(
            a,
            Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(1000)))),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        assert_eq!(net.run(), netsim::engine::RunOutcome::Drained);
        assert!(net.agent::<TcpSender>(a).unwrap().is_complete());
        assert_eq!(
            net.agent::<TcpSender>(a).unwrap().fct(),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn min_pkt_gap_caps_sender_pps() {
        let (mut net, a, b) = simple_net(10.0, 4 * MB);
        // 100 segments with a 100 us per-packet gap: >= 9.9 ms.
        let cfg = TcpSenderConfig::bulk(FLOW, b, 1500, 146_000)
            .with_min_pkt_gap(SimDuration::from_micros(100));
        net.attach_agent(
            a,
            Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(10 * MB)))),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(5));
        let s = net.agent::<TcpSender>(a).unwrap();
        assert!(s.is_complete());
        assert!(s.fct().unwrap() >= SimDuration::from_millis(9));
    }

    #[test]
    fn srtt_reflects_path_rtt() {
        let (mut net, a, b) = simple_net(10.0, 4 * MB);
        let cfg = TcpSenderConfig::bulk(FLOW, b, 1500, 500_000);
        net.attach_agent(
            a,
            Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(30_000)))),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(5));
        let s = net.agent::<TcpSender>(a).unwrap();
        // Base RTT = 2 * 25 us prop + serialization; srtt should be in
        // the tens-to-hundreds of microseconds.
        let srtt = s.srtt();
        assert!(
            srtt >= SimDuration::from_micros(50) && srtt <= SimDuration::from_millis(2),
            "srtt={srtt}"
        );
    }

    #[test]
    fn scheduled_rate_changes_apply_mid_flow() {
        let (mut net, a, b) = simple_net(10.0, 4 * MB);
        // Start at 1 Gb/s; lift the cap at t = 50 ms. 25 MB at 1 Gb/s
        // would take ~200 ms; with the lift it should finish much sooner.
        let cfg = TcpSenderConfig::bulk(FLOW, b, 9000, 25_000_000)
            .with_rate_limit(Rate::from_gbps(1.0))
            .with_rate_change(SimTime::from_millis(50), None);
        net.attach_agent(
            a,
            Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(4 * MB)))),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(5));
        let s = net.agent::<TcpSender>(a).unwrap();
        assert!(s.is_complete());
        let fct = s.fct().unwrap().as_secs_f64();
        // ~50 ms at 1G (6.25 MB) + ~15 ms at 10G (18.75 MB) = ~65-80 ms.
        assert!((0.06..0.1).contains(&fct), "fct={fct}");
    }

    #[test]
    fn scheduled_rate_can_tighten_too() {
        let (mut net, a, b) = simple_net(10.0, 4 * MB);
        // Unthrottled, then capped to 0.5 Gb/s at t = 10 ms.
        let cfg = TcpSenderConfig::bulk(FLOW, b, 9000, 25_000_000)
            .with_rate_change(SimTime::from_millis(10), Some(Rate::from_gbps(0.5)));
        net.attach_agent(
            a,
            Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(4 * MB)))),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(5));
        let s = net.agent::<TcpSender>(a).unwrap();
        assert!(s.is_complete());
        // ~12.5 MB in the first 10 ms and a 4 MB window already in
        // flight escape the cap; the remaining ~8.5 MB crawl at
        // 0.5 Gb/s: well over 100 ms in total.
        assert!(s.fct().unwrap() > SimDuration::from_millis(100));
    }

    #[test]
    fn rto_fires_when_tlp_is_disabled() {
        // Forward buffer so tiny the bursts mostly drop; with the
        // tail-loss probe ablated, recovery must fall back to RTOs and
        // the transfer still completes.
        let (mut net, a, b) = simple_net(0.01, 3_100);
        let cfg = TcpSenderConfig::bulk(FLOW, b, 1500, 30_000)
            .with_rto_bounds(SimDuration::from_millis(10), SimDuration::from_secs(1))
            .without_tlp();
        net.attach_agent(
            a,
            Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(30_000)))),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(200));
        let s = net.agent::<TcpSender>(a).unwrap();
        assert!(s.is_complete(), "{:?}", s.stats());
        assert!(s.stats().rto_count > 0, "expected at least one RTO");
        assert_eq!(s.stats().tlp_probes, 0, "TLP was ablated");
    }

    #[test]
    fn dead_path_aborts_cleanly_after_retry_budget() {
        use crate::stats::{AbortReason, FlowOutcome};
        use netsim::fault::FaultSpec;

        let (mut net, a, b) = simple_net(10.0, 4 * MB);
        // Kill the forward direction entirely: no data ever arrives, no
        // ack ever comes back, every RTO is genuine.
        let fwd = netsim::ids::LinkId::from_raw(0);
        net.set_link_fault(fwd, FaultSpec::random_loss(1.0))
            .expect("valid fault spec");
        let cfg = TcpSenderConfig::bulk(FLOW, b, 1500, 1_000_000)
            .with_rto_bounds(SimDuration::from_millis(10), SimDuration::from_secs(1))
            .with_rtt_hint(SimDuration::from_micros(60))
            .with_max_rto_retries(3)
            .without_tlp();
        net.attach_agent(
            a,
            Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(30_000)))),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        // The abort must leave nothing behind: the queue fully drains well
        // before the time limit instead of backing off forever.
        let outcome = net.run_until(SimTime::from_secs(30));
        assert_eq!(outcome, netsim::engine::RunOutcome::Drained);
        let s = net.agent::<TcpSender>(a).unwrap();
        assert!(!s.is_complete());
        assert!(s.is_aborted());
        assert_eq!(
            s.outcome(),
            FlowOutcome::Aborted(AbortReason::RetriesExhausted)
        );
        let stats = s.stats();
        assert_eq!(stats.rto_count, 4, "3 retries + the firing that aborts");
        assert!(stats.aborted_at.is_some());
        assert_eq!(stats.completed_at, None);
        assert_eq!(stats.bytes_acked, 0);
    }

    #[test]
    fn lossy_path_resets_the_retry_budget_on_progress() {
        use netsim::fault::FaultSpec;

        // 30% random loss is brutal but survivable: every successful
        // delivery resets `consecutive_rtos`, so the flow grinds through
        // instead of aborting.
        let (mut net, a, b) = simple_net(10.0, 4 * MB);
        let fwd = netsim::ids::LinkId::from_raw(0);
        net.set_link_fault(fwd, FaultSpec::random_loss(0.3))
            .expect("valid fault spec");
        let cfg = TcpSenderConfig::bulk(FLOW, b, 1500, 100_000)
            .with_rto_bounds(SimDuration::from_millis(10), SimDuration::from_secs(1))
            .with_rtt_hint(SimDuration::from_micros(60))
            .with_max_rto_retries(3);
        net.attach_agent(
            a,
            Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(30_000)))),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(60));
        let s = net.agent::<TcpSender>(a).unwrap();
        assert!(s.is_complete(), "{:?}", s.stats());
        assert!(!s.is_aborted());
    }

    #[test]
    fn tlp_recovers_tail_losses_without_rto() {
        // Same lossy path with TLP enabled: probes solicit the SACK
        // evidence and the RTO never fires (or fires far less).
        let (mut net, a, b) = simple_net(0.01, 3_100);
        let cfg = TcpSenderConfig::bulk(FLOW, b, 1500, 30_000)
            .with_rto_bounds(SimDuration::from_millis(10), SimDuration::from_secs(1));
        net.attach_agent(
            a,
            Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(30_000)))),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(200));
        let s = net.agent::<TcpSender>(a).unwrap();
        assert!(s.is_complete(), "{:?}", s.stats());
        assert!(s.stats().tlp_probes > 0, "expected tail-loss probes");
    }
}
