//! Property-based tests of the scoreboard: under arbitrary sequences of
//! sends, SACKs, cumulative acks, retransmissions, and RTO collapses, the
//! accounting invariants must hold.

use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use transport::scoreboard::{Scoreboard, SegState};

const MSS: u32 = 1000;
const REO: SimDuration = SimDuration::from_micros(50);

#[derive(Clone, Debug)]
enum Op {
    /// Send the next `n` new segments.
    Send(u8),
    /// Cumulatively ack up to segment index (capped at what was sent).
    CumAck(u16),
    /// SACK a range of segment indices `[a, a+len)`.
    Sack(u16, u8),
    /// Take one retransmission if pending.
    Retx,
    /// RTO: mark everything lost.
    Rto,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..20).prop_map(Op::Send),
        (0u16..400).prop_map(Op::CumAck),
        ((0u16..400), (1u8..10)).prop_map(|(a, l)| Op::Sack(a, l)),
        Just(Op::Retx),
        Just(Op::Rto),
    ]
}

/// Replay ops against the scoreboard while tracking ground truth.
fn replay(ops: &[Op]) -> (Scoreboard, u64, u64) {
    let mut board = Scoreboard::new(MSS);
    let mut next_seq: u64 = 0;
    let mut cum: u64 = 0;
    let mut clock: u64 = 0;
    let mut delivered: u64 = 0;
    for op in ops {
        clock += 7;
        let now = SimTime::from_micros(clock);
        match op {
            Op::Send(n) => {
                for _ in 0..*n {
                    board.on_send(next_seq, MSS, now, delivered, false);
                    next_seq += MSS as u64;
                }
            }
            Op::CumAck(idx) => {
                let target = ((*idx as u64) * MSS as u64).min(next_seq);
                if target > cum {
                    cum = target;
                }
                let out = board.on_ack(cum, std::iter::empty(), REO);
                delivered += out.newly_delivered;
            }
            Op::Sack(a, len) => {
                let start = (*a as u64) * MSS as u64;
                let end = (start + (*len as u64) * MSS as u64).min(next_seq);
                if start >= end || end <= cum {
                    continue;
                }
                let out = board.on_ack(cum, [(start.max(cum), end)].into_iter(), REO);
                delivered += out.newly_delivered;
            }
            Op::Retx => {
                let _ = board.take_retransmit(now, delivered, false);
            }
            Op::Rto => {
                board.mark_all_lost();
            }
        }
    }
    (board, next_seq, cum)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Accounting invariants survive arbitrary operation sequences.
    #[test]
    fn scoreboard_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (board, next_seq, cum) = replay(&ops);

        // snd_una tracks the cumulative ack exactly.
        prop_assert_eq!(board.snd_una(), cum);

        // Tracked segments tile [snd_una, next_seq) contiguously.
        let mut expected = board.snd_una();
        let mut outstanding = 0u64;
        for seg in board.segments() {
            prop_assert_eq!(seg.seq, expected, "segments must be contiguous");
            expected = seg.seq_end();
            if seg.state == SegState::Outstanding {
                outstanding += seg.len as u64;
            }
        }
        prop_assert_eq!(expected, next_seq.max(board.snd_una()));

        // in_flight equals the sum over Outstanding segments.
        prop_assert_eq!(board.in_flight(), outstanding);
    }

    /// Acking everything empties the board, and every byte is counted
    /// delivered exactly once.
    #[test]
    fn full_ack_conserves_bytes(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (mut board, next_seq, cum) = replay(&ops);
        let mut delivered_tail = 0;
        if next_seq > cum {
            let out = board.on_ack(next_seq, std::iter::empty(), REO);
            delivered_tail = out.newly_delivered;
        }
        prop_assert!(board.is_empty());
        prop_assert_eq!(board.in_flight(), 0);
        prop_assert_eq!(board.snd_una(), next_seq.max(cum));
        // The final cumulative ack can deliver at most the untracked span.
        prop_assert!(delivered_tail <= next_seq - cum);
    }

    /// take_retransmit never yields a segment that isn't Lost, and
    /// re-arming it returns it to flight.
    #[test]
    fn retransmit_restores_flight(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let (mut board, _, _) = replay(&ops);
        let before = board.in_flight();
        if let Some((_, len)) = board.take_retransmit(SimTime::from_secs(10), 0, false) {
            prop_assert_eq!(board.in_flight(), before + len as u64);
        } else {
            prop_assert_eq!(board.in_flight(), before);
        }
    }
}
