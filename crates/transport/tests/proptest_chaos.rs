//! Chaos property tests: the transport stack against the fault-injection
//! layer.
//!
//! * Under any fault spec — including unsurvivable ones — a transfer
//!   either completes exactly or aborts cleanly. It never hangs, and it
//!   never completes with the wrong bytes.
//! * Duplication + reordering (no loss) never confuse the scoreboard:
//!   the transfer completes, the receiver byte count is exact, and
//!   spurious work stays bounded.

use netsim::prelude::*;
use proptest::prelude::*;
use transport::prelude::*;

const FLOW: FlowId = FlowId::from_raw(0);

/// Build a two-host network with a faulted forward link and run one bulk
/// transfer over it. Returns the network for inspection.
fn chaos_transfer(spec: FaultSpec, total: u64, seed: u64, max_retries: u32) -> Network {
    let mut net = Network::new(seed);
    let a = net.add_host();
    let b = net.add_host();
    let ab = net.add_link(
        a,
        b,
        LinkSpec::droptail(
            Rate::from_gbps(1.0),
            SimDuration::from_micros(25),
            10_000_000,
        ),
    );
    let ba = net.add_link(
        b,
        a,
        LinkSpec::droptail(
            Rate::from_gbps(1.0),
            SimDuration::from_micros(25),
            10_000_000,
        ),
    );
    net.add_route(a, b, ab);
    net.add_route(b, a, ba);
    net.set_link_fault(ab, spec).expect("valid fault spec");
    let cfg = TcpSenderConfig::bulk(FLOW, b, 1500, total)
        .with_rtt_hint(SimDuration::from_micros(100))
        .with_rto_bounds(SimDuration::from_millis(10), SimDuration::from_millis(200))
        .with_max_rto_retries(max_retries);
    net.attach_agent(
        a,
        Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(60_000)))),
    );
    net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
    // A stall watchdog instead of a wall-clock ceiling: if neither host
    // sees a delivery for this many events, the run is declared stuck.
    net.set_stall_budget(Some(2_000_000));
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Terminate or abort cleanly — the central chaos guarantee. Any
    /// random-loss rate up to 40% plus corruption either finishes the
    /// transfer byte-exactly or trips the RTO retry budget and surfaces
    /// `FlowOutcome::Aborted`. No third state, no hang.
    #[test]
    fn transfers_terminate_or_abort_cleanly(
        drop in 0.0f64..0.4,
        corrupt in 0.0f64..0.2,
        segs in 5u64..80,
        seed in 0u64..200,
    ) {
        let total = segs * 1460;
        let spec = FaultSpec::random_loss(drop).with_corruption(corrupt);
        let mut net = chaos_transfer(spec, total, seed, 6);
        let outcome = net.run_until(SimTime::from_secs(300));
        prop_assert!(
            outcome != RunOutcome::Stalled,
            "drop={drop:.3} corrupt={corrupt:.3}: the run stalled instead of terminating"
        );
        let s = net.agent::<TcpSender>(NodeId::from_raw(0)).unwrap();
        let recv = net.agent::<TcpReceiver>(NodeId::from_raw(1)).unwrap();
        match s.outcome() {
            FlowOutcome::Completed => {
                prop_assert_eq!(s.stats().bytes_acked, total);
                prop_assert_eq!(recv.bytes_received(FLOW), total);
            }
            FlowOutcome::Aborted(reason) => {
                // A clean abort: terminal timestamp recorded, partial
                // progress honestly below the goal.
                prop_assert_eq!(reason, AbortReason::RetriesExhausted);
                prop_assert!(s.stats().aborted_at.is_some());
                prop_assert!(s.stats().bytes_acked < total);
            }
            FlowOutcome::InProgress => {
                prop_assert!(
                    false,
                    "drop={drop:.3} corrupt={corrupt:.3}: flow neither completed \
                     nor aborted: {:?}",
                    s.stats()
                );
            }
        }
    }

    /// Duplication and reordering are lossless faults: the scoreboard
    /// must see through both. The transfer always completes, the
    /// receiver byte count is exact, and nothing is double-delivered to
    /// the application (bytes_received is cumulative in-order data).
    #[test]
    fn scoreboard_survives_duplication_and_reordering(
        dup in 0.0f64..0.3,
        reorder in 0.0f64..0.5,
        reorder_us in 1u64..500,
        segs in 5u64..120,
        seed in 0u64..200,
    ) {
        let total = segs * 1460;
        let spec = FaultSpec::random_loss(0.0)
            .with_duplication(dup)
            .with_reordering(reorder, SimDuration::from_micros(reorder_us));
        let mut net = chaos_transfer(spec, total, seed, 15);
        let outcome = net.run_until(SimTime::from_secs(300));
        prop_assert!(outcome != RunOutcome::Stalled, "lossless faults must not stall");
        let s = net.agent::<TcpSender>(NodeId::from_raw(0)).unwrap();
        prop_assert!(
            s.is_complete(),
            "dup={dup:.3} reorder={reorder:.3}: lossless faults must not kill \
             the transfer: {:?}",
            s.stats()
        );
        prop_assert_eq!(s.stats().bytes_acked, total);
        let recv = net.agent::<TcpReceiver>(NodeId::from_raw(1)).unwrap();
        prop_assert_eq!(recv.bytes_received(FLOW), total);
        // Nothing was lost, so every retransmission is spurious — the
        // scoreboard may fire a few on deep reordering, but a blow-up
        // means duplicate acks are being miscounted as loss signals.
        prop_assert!(
            s.stats().retx_segs <= segs,
            "spurious retransmit storm: {} retx for {} segs",
            s.stats().retx_segs,
            segs
        );
    }
}
