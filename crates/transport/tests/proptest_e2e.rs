//! End-to-end property tests of the transport stack:
//!
//! * the receiver reassembles any arrival permutation exactly;
//! * transfers complete under arbitrary periodic loss patterns.

use netsim::prelude::*;
use netsim::queue::{EnqueueOutcome, Qdisc, QueueStats};
use proptest::prelude::*;
use transport::prelude::*;

const FLOW: FlowId = FlowId::from_raw(0);

/// Agent that transmits a fixed set of segments in a given order.
struct Scrambler {
    dst: NodeId,
    order: Vec<u32>,
    seg_len: u32,
}
impl Agent for Scrambler {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (k, &i) in self.order.iter().enumerate() {
            // Space transmissions so arrival order == send order.
            ctx.set_timer_after(SimDuration::from_micros(10 * k as u64), i as u64);
        }
    }
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        ctx.send(Packet::data(
            FLOW,
            ctx.node(),
            self.dst,
            token * self.seg_len as u64,
            self.seg_len,
            EcnCodepoint::NotEct,
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever order segments arrive in — including duplicates — the
    /// receiver reassembles the exact byte stream.
    #[test]
    fn receiver_reassembles_any_permutation(
        n in 1usize..40,
        seed in 0u64..1000,
        dup in proptest::option::of(0u32..40),
    ) {
        // A deterministic shuffle of 0..n (+ optional duplicate).
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut rng = SimRng::new(seed);
        for i in (1..order.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        if let Some(d) = dup {
            order.push(d % n as u32);
        }

        let mut net = Network::new(seed);
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(
            a,
            b,
            LinkSpec::droptail(Rate::from_gbps(10.0), SimDuration::from_micros(5), 10_000_000),
        );
        let ba = net.add_link(
            b,
            a,
            LinkSpec::droptail(Rate::from_gbps(10.0), SimDuration::from_micros(5), 10_000_000),
        );
        net.add_route(a, b, ab);
        net.add_route(b, a, ba);
        net.attach_agent(
            a,
            Box::new(Scrambler {
                dst: b,
                order,
                seg_len: 1000,
            }),
        );
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run();
        let recv = net.agent::<TcpReceiver>(b).unwrap();
        prop_assert_eq!(recv.bytes_received(FLOW), n as u64 * 1000);
    }
}

/// A qdisc that deterministically drops every `k`-th offered data packet
/// (acks pass), layered over a drop-tail buffer — an adversarial but
/// reproducible loss process.
#[derive(Debug)]
struct PeriodicLoss {
    inner: DropTailQueue,
    k: u64,
    count: u64,
    stats_dropped: u64,
}

impl PeriodicLoss {
    fn new(k: u64) -> Self {
        PeriodicLoss {
            inner: DropTailQueue::new(10_000_000),
            k,
            count: 0,
            stats_dropped: 0,
        }
    }
}

impl Qdisc for PeriodicLoss {
    fn enqueue(&mut self, frame: FrameRef, pool: &mut FramePool, now: SimTime) -> EnqueueOutcome {
        if pool.get(frame).is_data() {
            self.count += 1;
            if self.count.is_multiple_of(self.k) {
                self.stats_dropped += 1;
                return EnqueueOutcome::Dropped;
            }
        }
        self.inner.enqueue(frame, pool, now)
    }
    fn dequeue(&mut self, now: SimTime) -> Option<FrameRef> {
        self.inner.dequeue(now)
    }
    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }
    fn len_pkts(&self) -> usize {
        self.inner.len_pkts()
    }
    fn stats(&self) -> QueueStats {
        let mut s = self.inner.stats();
        s.dropped_pkts += self.stats_dropped;
        s
    }
    fn name(&self) -> &'static str {
        "periodic-loss"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A transfer over a link that deterministically kills every k-th
    /// data packet still completes, for any period k >= 2 and any of the
    /// paper's multi-flow-safe algorithms' transport machinery (we use
    /// the fixed-window controller: the pure transport recovery path).
    #[test]
    fn transfers_survive_periodic_loss(
        k in 2u64..20,
        segs in 10u64..200,
    ) {
        let total = segs * 1460;
        let mut net = Network::new(k ^ segs);
        let a = net.add_host();
        let b = net.add_host();
        let ab = net.add_link(
            a,
            b,
            LinkSpec {
                rate: Rate::from_gbps(10.0),
                prop_delay: SimDuration::from_micros(25),
                qdisc: Box::new(PeriodicLoss::new(k)),
                min_pkt_gap: SimDuration::ZERO,
            },
        );
        let ba = net.add_link(
            b,
            a,
            LinkSpec::droptail(Rate::from_gbps(10.0), SimDuration::from_micros(25), 10_000_000),
        );
        net.add_route(a, b, ab);
        net.add_route(b, a, ba);
        let cfg = TcpSenderConfig::bulk(FLOW, b, 1500, total)
            .with_rtt_hint(SimDuration::from_micros(100))
            .with_rto_bounds(SimDuration::from_millis(20), SimDuration::from_secs(2));
        net.attach_agent(a, Box::new(TcpSender::new(cfg, Box::new(FixedCwnd::new(60_000)))));
        net.attach_agent(b, Box::new(TcpReceiver::new(AckPolicy::delayed_default())));
        net.run_until(SimTime::from_secs(120));
        let s = net.agent::<TcpSender>(a).unwrap();
        prop_assert!(
            s.is_complete(),
            "k={k} segs={segs}: transfer stuck at {:?}",
            s.stats()
        );
        let recv = net.agent::<TcpReceiver>(b).unwrap();
        prop_assert_eq!(recv.bytes_received(FLOW), total);
    }
}
