//! The instrumentation seam.
//!
//! Simulation crates call [`Recorder`] methods at interesting moments;
//! every method has a no-op default body, so an uninstrumented run pays
//! one `Option`/vtable check per site and nothing else — the golden
//! determinism fingerprint and the perf baseline see the exact same
//! event stream either way. [`ObsRecorder`] is the real implementation:
//! it fans each callback out to the metrics registry, the per-flow
//! flight recorder, and the Perfetto trace builder.
//!
//! The trait speaks plain integers (`u64` sim-nanoseconds, `u32` ids)
//! so `obs` stays below `netsim` in the dependency graph; callers adapt
//! their typed ids at the call site.

use crate::flight::{FlightRecorder, FlowEvent, DEFAULT_FLIGHT_CAPACITY};
use crate::metrics::{labels, Labels, MetricsRegistry, MetricsSnapshot};
use crate::perfetto::{TraceBuilder, TrackKind, DEFAULT_COUNTER_BIN_NS};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Observer of simulation moments. All methods default to no-ops.
pub trait Recorder {
    /// A typed per-flow event (cwnd move, loss, RTO, ...).
    fn flow_event(&mut self, at_ns: u64, flow: u32, event: FlowEvent) {
        let _ = (at_ns, flow, event);
    }

    /// Queue occupancy on a link changed (bytes queued after the change).
    fn queue_depth(&mut self, at_ns: u64, link: u32, bytes: u64) {
        let _ = (at_ns, link, bytes);
    }

    /// A packet was dropped at a link queue. `injected` distinguishes
    /// fault-injected drops from genuine overflow.
    fn queue_drop(&mut self, at_ns: u64, link: u32, flow: u32, injected: bool) {
        let _ = (at_ns, link, flow, injected);
    }

    /// A packet was ECN-marked at a link queue.
    fn queue_mark(&mut self, at_ns: u64, link: u32, flow: u32) {
        let _ = (at_ns, link, flow);
    }

    /// A link's utilization estimate at transmit time, in `[0, 1]`.
    fn link_utilization(&mut self, at_ns: u64, link: u32, fraction: f64) {
        let _ = (at_ns, link, fraction);
    }

    /// A host power sample (average Watts over the sample's bin).
    fn power_sample(&mut self, at_ns: u64, host: u32, watts: f64) {
        let _ = (at_ns, host, watts);
    }

    /// The engine dispatched a batch of `pkts` same-timestamp arrivals
    /// to one host agent in a single callback. Fired once per dispatch
    /// (a non-coalesced delivery reports `pkts = 1`), so the histogram
    /// of values is the delivery batch-size distribution.
    fn dispatch_batch(&mut self, at_ns: u64, node: u32, pkts: u32) {
        let _ = (at_ns, node, pkts);
    }

    /// Occupancy of a flow table changed: `live` entries out of
    /// `capacity` allocated slots. Fired at attach/detach time, not per
    /// event, so it is off every hot path.
    fn flow_table_occupancy(&mut self, at_ns: u64, live: u64, capacity: u64) {
        let _ = (at_ns, live, capacity);
    }
}

/// A recorder that records nothing. Useful for measuring the pure cost
/// of the instrumentation seam (see `perf_baseline`'s `obs_overhead`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// How instrumented callers share one recorder: the simulation is
/// single-threaded, so a plain `Rc<RefCell<..>>` carries it between
/// the engine, the transport agents, and the scenario driver.
pub type SharedRecorder = Rc<RefCell<dyn Recorder>>;

fn flow_labels(flow: u32) -> Labels {
    labels([("flow", format!("f{flow}"))])
}

fn link_labels(link: u32) -> Labels {
    labels([("link", format!("l{link}"))])
}

fn host_labels(host: u32) -> Labels {
    labels([("host", format!("n{host}"))])
}

/// The full observability pipeline: metrics + flight recorder + trace.
#[derive(Clone, Debug)]
pub struct ObsRecorder {
    metrics: MetricsRegistry,
    flight: FlightRecorder,
    trace: TraceBuilder,
    /// Open fast-recovery episodes: flow -> entry instant.
    open_recovery: BTreeMap<u32, u64>,
    /// Transfer starts: flow -> start instant.
    started_at: BTreeMap<u32, u64>,
}

impl Default for ObsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsRecorder {
    /// Recorder with default flight capacity and counter downsampling.
    pub fn new() -> Self {
        Self::with_config(DEFAULT_FLIGHT_CAPACITY, DEFAULT_COUNTER_BIN_NS)
    }

    /// Recorder with explicit per-flow ring capacity and counter
    /// downsampling bin (`0` disables downsampling).
    pub fn with_config(flight_capacity: usize, counter_bin_ns: u64) -> Self {
        ObsRecorder {
            metrics: MetricsRegistry::new(),
            flight: FlightRecorder::new(flight_capacity),
            trace: TraceBuilder::new(counter_bin_ns),
            open_recovery: BTreeMap::new(),
            started_at: BTreeMap::new(),
        }
    }

    /// Direct access to the registry, for wiring code that records
    /// run-level facts (pktlog overflow, final stats).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Direct access to the trace builder, for wiring code that feeds
    /// post-run series (per-flow throughput bins) or names tracks.
    pub fn trace_mut(&mut self) -> &mut TraceBuilder {
        &mut self.trace
    }

    /// Name the viewer track for a flow.
    pub fn name_flow(&mut self, flow: u32, name: &str) {
        self.trace.set_track_name(TrackKind::Flow, flow, name);
    }

    /// Name the viewer track for a host.
    pub fn name_host(&mut self, host: u32, name: &str) {
        self.trace.set_track_name(TrackKind::Host, host, name);
    }

    /// Name the viewer track for a link queue.
    pub fn name_queue(&mut self, link: u32, name: &str) {
        self.trace.set_track_name(TrackKind::Queue, link, name);
    }

    /// Close open episodes, flush counter tails, snapshot the registry
    /// at `end_ns`, and render the trace — the run is over.
    pub fn finalize(mut self, end_ns: u64) -> ObsReport {
        let open = std::mem::take(&mut self.open_recovery);
        for (flow, since) in open {
            self.trace.span(
                since,
                end_ns.saturating_sub(since),
                TrackKind::Flow,
                flow,
                "fast_recovery",
            );
        }
        let started = std::mem::take(&mut self.started_at);
        for (flow, since) in started {
            // Never saw a terminal event: the flow was still running.
            self.trace.span(
                since,
                end_ns.saturating_sub(since),
                TrackKind::Flow,
                flow,
                "transfer (unfinished)",
            );
        }
        let evicted = self.flight.total_overflowed();
        if evicted > 0 {
            self.metrics
                .counter_add("obs_flight_evicted_total", Labels::new(), evicted);
        }
        self.trace.flush_counters();
        ObsReport {
            metrics: self.metrics.snapshot(end_ns),
            flight: self.flight,
            trace_json: self.trace.json(),
        }
    }

    fn close_transfer(&mut self, at_ns: u64, flow: u32, name: &str) {
        if let Some(since) = self.started_at.remove(&flow) {
            self.trace.span(
                since,
                at_ns.saturating_sub(since),
                TrackKind::Flow,
                flow,
                name,
            );
        }
    }
}

impl Recorder for ObsRecorder {
    fn flow_event(&mut self, at_ns: u64, flow: u32, event: FlowEvent) {
        self.flight.record(flow, at_ns, event);
        match event {
            FlowEvent::CwndChange { cwnd_bytes } => {
                self.trace.counter(
                    at_ns,
                    TrackKind::Flow,
                    flow,
                    "cwnd_bytes",
                    cwnd_bytes as f64,
                );
            }
            FlowEvent::RttSample { rtt_ns } => {
                self.metrics
                    .observe("tcp_rtt_ns", flow_labels(flow), rtt_ns);
                self.trace
                    .counter(at_ns, TrackKind::Flow, flow, "rtt_ns", rtt_ns as f64);
            }
            FlowEvent::Loss { bytes } => {
                self.metrics
                    .counter_add("tcp_lost_bytes_total", flow_labels(flow), bytes);
                self.trace.instant(at_ns, TrackKind::Flow, flow, "loss");
            }
            FlowEvent::RecoveryEnter => {
                self.metrics
                    .counter_add("tcp_recoveries_total", flow_labels(flow), 1);
                self.open_recovery.entry(flow).or_insert(at_ns);
            }
            FlowEvent::RecoveryExit => {
                if let Some(since) = self.open_recovery.remove(&flow) {
                    self.trace.span(
                        since,
                        at_ns.saturating_sub(since),
                        TrackKind::Flow,
                        flow,
                        "fast_recovery",
                    );
                }
            }
            FlowEvent::Rto { .. } => {
                self.metrics
                    .counter_add("tcp_rto_total", flow_labels(flow), 1);
                self.trace.instant(at_ns, TrackKind::Flow, flow, "rto");
            }
            FlowEvent::EcnMark { bytes } => {
                self.metrics
                    .counter_add("tcp_ecn_marked_bytes_total", flow_labels(flow), bytes);
                self.trace.instant(at_ns, TrackKind::Flow, flow, "ecn_mark");
            }
            FlowEvent::PacingStall { .. } => {
                // Flight ring + counter only: pacing stalls are far too
                // frequent to be useful as trace instants.
                self.metrics
                    .counter_add("tcp_pacing_stalls_total", flow_labels(flow), 1);
            }
            FlowEvent::Retransmit { .. } => {
                self.metrics
                    .counter_add("tcp_retx_total", flow_labels(flow), 1);
                self.trace.instant(at_ns, TrackKind::Flow, flow, "retx");
            }
            FlowEvent::EnergySample { milliwatts } => {
                self.metrics
                    .observe("flow_power_mw", flow_labels(flow), milliwatts);
            }
            FlowEvent::Started => {
                self.metrics
                    .counter_add("flows_started_total", Labels::new(), 1);
                self.started_at.entry(flow).or_insert(at_ns);
            }
            FlowEvent::Completed => {
                self.metrics
                    .counter_add("flows_completed_total", Labels::new(), 1);
                self.close_transfer(at_ns, flow, "transfer");
            }
            FlowEvent::Aborted => {
                self.metrics
                    .counter_add("flows_aborted_total", Labels::new(), 1);
                self.trace.instant(at_ns, TrackKind::Flow, flow, "aborted");
                self.close_transfer(at_ns, flow, "transfer (aborted)");
            }
        }
    }

    fn queue_depth(&mut self, at_ns: u64, link: u32, bytes: u64) {
        self.metrics
            .observe("queue_depth_bytes", link_labels(link), bytes);
        self.trace
            .counter(at_ns, TrackKind::Queue, link, "queue_bytes", bytes as f64);
    }

    fn queue_drop(&mut self, at_ns: u64, link: u32, flow: u32, injected: bool) {
        let mut l = link_labels(link);
        l.insert("injected", if injected { "yes" } else { "no" }.to_string());
        self.metrics.counter_add("queue_drops_total", l, 1);
        let _ = flow;
        self.trace.instant(at_ns, TrackKind::Queue, link, "drop");
    }

    fn queue_mark(&mut self, at_ns: u64, link: u32, flow: u32) {
        let _ = flow;
        self.metrics
            .counter_add("queue_ce_marks_total", link_labels(link), 1);
        self.trace.instant(at_ns, TrackKind::Queue, link, "ce_mark");
    }

    fn link_utilization(&mut self, at_ns: u64, link: u32, fraction: f64) {
        self.trace
            .counter(at_ns, TrackKind::Queue, link, "utilization", fraction);
    }

    fn power_sample(&mut self, at_ns: u64, host: u32, watts: f64) {
        let mw = (watts * 1_000.0).round().max(0.0) as u64;
        self.metrics.observe("host_power_mw", host_labels(host), mw);
        self.trace
            .counter(at_ns, TrackKind::Host, host, "power_w", watts);
    }

    fn dispatch_batch(&mut self, at_ns: u64, node: u32, pkts: u32) {
        let _ = (at_ns, node);
        // One workspace-wide histogram: per-host label cardinality at
        // population scale (10k hosts) would swamp the registry for a
        // distribution that is interesting in aggregate.
        self.metrics
            .observe("dispatch_batch_pkts", Labels::new(), pkts as u64);
    }

    fn flow_table_occupancy(&mut self, at_ns: u64, live: u64, capacity: u64) {
        self.metrics.observe("flow_table_live", Labels::new(), live);
        self.trace.counter(
            at_ns,
            TrackKind::Host,
            0,
            "flow_table_occupancy",
            if capacity == 0 {
                0.0
            } else {
                live as f64 / capacity as f64
            },
        );
    }
}

/// Everything observability produced for one finished run.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// Metrics frozen at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Per-flow flight rings.
    pub flight: FlightRecorder,
    trace_json: String,
}

impl ObsReport {
    /// The rendered Chrome-trace/Perfetto JSON document.
    pub fn perfetto_json(&self) -> &str {
        &self.trace_json
    }

    /// The metrics snapshot in Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        self.metrics.prometheus_text()
    }

    /// One flow's flight ring, rendered.
    pub fn flight_dump_flow(&self, flow: u32) -> String {
        self.flight.dump_flow(flow)
    }

    /// Every flight ring, rendered.
    pub fn flight_dump(&self) -> String {
        self.flight.dump_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_accepts_everything() {
        let mut r = NoopRecorder;
        r.flow_event(1, 0, FlowEvent::Started);
        r.queue_depth(2, 0, 100);
        r.queue_drop(3, 0, 0, false);
        r.queue_mark(4, 0, 0);
        r.link_utilization(5, 0, 0.5);
        r.power_sample(6, 0, 21.5);
    }

    #[test]
    fn obs_recorder_routes_events_to_all_three_sinks() {
        let mut r = ObsRecorder::with_config(16, 0);
        r.name_flow(0, "flow f0");
        r.flow_event(0, 0, FlowEvent::Started);
        r.flow_event(10, 0, FlowEvent::CwndChange { cwnd_bytes: 14_480 });
        r.flow_event(20, 0, FlowEvent::RttSample { rtt_ns: 200_000 });
        r.flow_event(30, 0, FlowEvent::Rto { consecutive: 1 });
        r.flow_event(40, 0, FlowEvent::Completed);
        r.queue_drop(15, 2, 0, false);
        let report = r.finalize(50);
        assert_eq!(
            report.metrics.counter("tcp_rto_total", &flow_labels(0)),
            Some(1)
        );
        assert_eq!(report.metrics.counter_total("queue_drops_total"), 1);
        assert!(report
            .metrics
            .histogram("tcp_rtt_ns", &flow_labels(0))
            .is_some());
        let json = report.perfetto_json();
        assert!(json.contains("\"name\":\"rto\""));
        assert!(json.contains("\"name\":\"transfer\""));
        assert!(json.contains("cwnd_bytes"));
        assert!(report.flight_dump_flow(0).contains("rto #1"));
        assert!(report.prometheus_text().contains("flows_completed_total 1"));
    }

    #[test]
    fn recovery_episodes_become_spans() {
        let mut r = ObsRecorder::with_config(16, 0);
        r.flow_event(100, 3, FlowEvent::RecoveryEnter);
        r.flow_event(400, 3, FlowEvent::RecoveryExit);
        // A second episode left open at finalize closes at end.
        r.flow_event(500, 3, FlowEvent::RecoveryEnter);
        let report = r.finalize(900);
        let json = report.perfetto_json();
        assert!(json.contains("fast_recovery"));
        assert!(json.contains("\"dur\":0.300"));
        assert!(json.contains("\"dur\":0.400"));
    }
}
