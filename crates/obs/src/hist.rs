//! Log-linear histograms.
//!
//! The layout is the classic HDR-style compromise: values below
//! [`SUB_BUCKETS`] land in unit-width buckets, and every power-of-two
//! tier above that is split into [`SUB_BUCKETS`] linear sub-buckets, so
//! relative error is bounded by `1/SUB_BUCKETS` across the whole `u64`
//! range while the bucket count stays fixed and small. The layout is a
//! compile-time constant — every histogram in the workspace shares it,
//! which is what makes [`Histogram::merge`] a plain element-wise add.

/// log2 of the sub-bucket count per power-of-two tier.
pub const SUB_BITS: u32 = 4;

/// Linear sub-buckets per power-of-two tier (and the width of the
/// unit-bucket region at the bottom of the range).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total addressable buckets: the unit region plus `64 - SUB_BITS`
/// tiers of [`SUB_BUCKETS`] each.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Bucket index for a value. Total order: every value maps to exactly
/// one bucket and bucket ranges tile `0..=u64::MAX` without gaps.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    // Highest set bit; `value >= SUB_BUCKETS` so `tier >= SUB_BITS`.
    let tier = 63 - value.leading_zeros();
    let sub = ((value >> (tier - SUB_BITS)) - SUB_BUCKETS as u64) as usize;
    SUB_BUCKETS + (tier - SUB_BITS) as usize * SUB_BUCKETS + sub
}

/// Lowest value that lands in bucket `index`.
#[inline]
pub fn bucket_lo(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let tier = SUB_BITS + ((index - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (tier - SUB_BITS)
}

/// Highest value that lands in bucket `index` (inclusive).
#[inline]
pub fn bucket_hi(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let tier = SUB_BITS + ((index - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let width = 1u64 << (tier - SUB_BITS);
    bucket_lo(index) + (width - 1)
}

/// A fixed-layout log-linear histogram over `u64` values.
///
/// Recording is O(1); the bucket vector grows lazily to the highest
/// bucket touched so an idle histogram costs a few words. All state is
/// plain integers — cloning, comparing, and merging are exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    // A derived Default would start `min` at 0 instead of `u64::MAX`,
    // poisoning the first real minimum.
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Value at quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket containing it (so the estimate never undershoots by
    /// more than a bucket width). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target value, 1-based; q = 0 means the first.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_hi(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one (element-wise; layouts are
    /// identical by construction).
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Non-empty buckets as `(upper_bound_inclusive, count)` in
    /// ascending bound order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (bucket_hi(idx), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_behaves_like_new() {
        assert_eq!(Histogram::default(), Histogram::new());
        let mut h = Histogram::default();
        h.record(42);
        assert_eq!(h.min(), Some(42), "default min must not pin at zero");
    }

    #[test]
    fn unit_region_is_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            let idx = bucket_index(v);
            assert_eq!(idx, v as usize);
            assert_eq!(bucket_lo(idx), v);
            assert_eq!(bucket_hi(idx), v);
        }
    }

    #[test]
    fn buckets_tile_the_range_without_gaps() {
        // Every bucket's hi + 1 must be the next bucket's lo, up to the
        // final bucket (whose hi is u64::MAX).
        for idx in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_hi(idx) + 1, bucket_lo(idx + 1), "bucket {idx}");
        }
        assert_eq!(bucket_hi(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn boundaries_round_trip_through_the_index() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            1023,
            1024,
            1025,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(bucket_lo(idx) <= v, "lo({idx}) > {v}");
            assert!(bucket_hi(idx) >= v, "hi({idx}) < {v}");
            // Boundaries themselves map back to the same bucket.
            assert_eq!(bucket_index(bucket_lo(idx)), idx);
            assert_eq!(bucket_index(bucket_hi(idx)), idx);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Upper bound of a bucket overshoots its lower bound by at most
        // one sub-bucket width, i.e. a factor of 1/SUB_BUCKETS.
        for &v in &[100u64, 10_000, 123_456_789, 1 << 40] {
            let idx = bucket_index(v);
            let (lo, hi) = (bucket_lo(idx), bucket_hi(idx));
            assert!((hi - lo) as f64 <= lo as f64 / SUB_BUCKETS as f64 + 1.0);
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for v in [5u64, 10, 100, 1000] {
            h.record(v);
        }
        h.record_n(50, 3);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 5 + 10 + 100 + 1000 + 150);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Bucket-granular answers: within one sub-bucket of the truth.
        assert!((44..=56).contains(&p50), "p50 = {p50}");
        assert!((95..=100).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(0.0).unwrap(), 1);
        assert_eq!(h.quantile(1.0).unwrap(), 100);
    }

    #[test]
    fn merge_is_elementwise_and_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 20, 300] {
            a.record(v);
        }
        for v in [2u64, 20, 4000, u64::MAX] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.min(), Some(1));
        assert_eq!(merged.max(), Some(u64::MAX));
        // Merging the other way gives the identical histogram.
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(merged, flipped);
        // Merging an empty histogram is the identity.
        let mut id = a.clone();
        id.merge(&Histogram::new());
        assert_eq!(id, a);
    }
}
