//! Shared time-binned series math.
//!
//! One home for the byte-bins → throughput conversion that used to be
//! duplicated (with slightly different partial-bin behaviour) between
//! `netsim::trace` and the figure code. The subtlety: the last bin of a
//! series usually isn't a full bin — the flow finished partway through
//! it. Dividing its bytes by the full bin width silently under-reports
//! the closing throughput; these helpers take the series' end instant
//! and scale the final bin by the width it actually covered.

/// Convert per-bin byte counts into Gbit/s, bin by bin.
///
/// `bin_ns` is the bin width; `end_ns` is the instant the series ends
/// (e.g. the flow's last delivery). Every bin uses the full width
/// except the last, which uses `end_ns - last_bin_start` when that is
/// shorter — the partial final bin is scaled by the time it actually
/// covers instead of being truncated toward zero.
///
/// Bits per nanosecond is exactly Gbit/s, so the arithmetic is one
/// division per bin.
pub fn throughput_gbps(bins: &[u64], bin_ns: u64, end_ns: u64) -> Vec<f64> {
    if bin_ns == 0 {
        return vec![0.0; bins.len()];
    }
    let last = bins.len().saturating_sub(1);
    bins.iter()
        .enumerate()
        .map(|(i, &bytes)| {
            let width_ns = if i == last {
                let start = i as u64 * bin_ns;
                // Guard degenerate ends: never below 1 ns, never wider
                // than the bin itself.
                end_ns.saturating_sub(start).clamp(1, bin_ns)
            } else {
                bin_ns
            };
            (bytes * 8) as f64 / width_ns as f64
        })
        .collect()
}

/// Mid-bin time axis in seconds for `n` bins of width `bin_s`:
/// `[(0.5)·bin, (1.5)·bin, ...]`.
pub fn bin_centers_s(n: usize, bin_s: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 + 0.5) * bin_s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bins_divide_by_full_width() {
        // 125 MB per 1 s bin = 1 Gbit/s.
        let g = throughput_gbps(&[125_000_000, 125_000_000], 1_000_000_000, 2_000_000_000);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_final_bin_uses_covered_width() {
        // Second bin only covers 0.25 s: same bytes means 4x the rate.
        let g = throughput_gbps(&[125_000_000, 31_250_000], 1_000_000_000, 1_250_000_000);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 1.0).abs() < 1e-12, "partial bin must not truncate");
        // The naive full-width division would have said 0.25.
    }

    #[test]
    fn final_bin_width_never_exceeds_the_bin() {
        // end beyond the last bin edge clamps to the full width.
        let g = throughput_gbps(&[1_000], 1_000, 10_000);
        assert!((g[0] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert!(throughput_gbps(&[], 1_000, 0).is_empty());
        assert_eq!(throughput_gbps(&[5], 0, 0), vec![0.0]);
        // end at (or before) the last bin start: width floors at 1 ns.
        let g = throughput_gbps(&[1], 1_000, 0);
        assert!((g[0] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn centers_sit_mid_bin() {
        let c = bin_centers_s(3, 0.5);
        assert_eq!(c, vec![0.25, 0.75, 1.25]);
    }
}
