//! Chrome-trace / Perfetto JSON export.
//!
//! Emits the Trace Event Format (the JSON flavour both Perfetto and
//! `chrome://tracing` open directly): one *process* per simulated
//! entity — flow, host, or queue — named via `"M"` metadata events,
//! carrying `"C"` counter tracks (cwnd, queue depth, power), `"i"`
//! instants (loss, RTO, drop), and `"X"` duration spans (transfer,
//! recovery episodes).
//!
//! The bytes are reproducible by construction: events append in
//! deterministic simulation order, metadata sorts by pid, timestamps
//! are integer sim-nanoseconds rendered as fixed-point microseconds,
//! and the whole document is built by hand — no maps with random
//! iteration order, no float formatting that depends on locale.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What kind of simulated entity a track models. Each kind owns a
/// disjoint pid range so ids never collide across kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrackKind {
    /// A transport flow (pid `1_000 + id`).
    Flow,
    /// A host / node (pid `1_000_000 + id`).
    Host,
    /// A link queue (pid `2_000_000 + id`).
    Queue,
}

impl TrackKind {
    /// The pid a `(kind, id)` pair maps to.
    pub fn pid(self, id: u32) -> u32 {
        match self {
            TrackKind::Flow => 1_000 + id,
            TrackKind::Host => 1_000_000 + id,
            TrackKind::Queue => 2_000_000 + id,
        }
    }
}

/// One recorded trace event (pre-serialization).
#[derive(Clone, Debug)]
enum Ev {
    Counter {
        ts_ns: u64,
        pid: u32,
        name: &'static str,
        value: f64,
    },
    Instant {
        ts_ns: u64,
        pid: u32,
        name: &'static str,
    },
    Span {
        ts_ns: u64,
        dur_ns: u64,
        pid: u32,
        name: String,
    },
}

/// A counter sample buffered until its downsampling bin closes.
#[derive(Clone, Copy, Debug)]
struct Pending {
    bin: u64,
    ts_ns: u64,
    value: f64,
}

/// Default counter downsampling bin: one sample per track per 1 ms of
/// sim time. Keeps traces of multi-second runs in the tens of
/// kilobytes instead of tens of megabytes.
pub const DEFAULT_COUNTER_BIN_NS: u64 = 1_000_000;

/// Accumulates tracks and events; renders the JSON document once at the
/// end of a run.
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    track_names: BTreeMap<u32, String>,
    events: Vec<Ev>,
    pending: BTreeMap<(u32, &'static str), Pending>,
    counter_bin_ns: u64,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        Self::new(DEFAULT_COUNTER_BIN_NS)
    }
}

impl TraceBuilder {
    /// Builder with the given counter downsampling bin (ns). `0` means
    /// no downsampling: every sample becomes an event.
    pub fn new(counter_bin_ns: u64) -> Self {
        TraceBuilder {
            track_names: BTreeMap::new(),
            events: Vec::new(),
            pending: BTreeMap::new(),
            counter_bin_ns,
        }
    }

    /// Name the track for `(kind, id)`; shows as the process name in
    /// the viewer.
    pub fn set_track_name(&mut self, kind: TrackKind, id: u32, name: &str) {
        self.track_names.insert(kind.pid(id), name.to_string());
    }

    /// Record a counter sample, downsampled to the last value per bin.
    /// Samples must arrive in non-decreasing `ts_ns` order per track
    /// (simulation order guarantees this).
    pub fn counter(
        &mut self,
        ts_ns: u64,
        kind: TrackKind,
        id: u32,
        name: &'static str,
        value: f64,
    ) {
        let pid = kind.pid(id);
        if self.counter_bin_ns == 0 {
            self.events.push(Ev::Counter {
                ts_ns,
                pid,
                name,
                value,
            });
            return;
        }
        let bin = ts_ns / self.counter_bin_ns;
        match self.pending.get_mut(&(pid, name)) {
            Some(p) if p.bin == bin => {
                // Same bin: keep only the newest sample.
                p.ts_ns = ts_ns;
                p.value = value;
            }
            Some(p) => {
                let flushed = *p;
                *p = Pending { bin, ts_ns, value };
                self.events.push(Ev::Counter {
                    ts_ns: flushed.ts_ns,
                    pid,
                    name,
                    value: flushed.value,
                });
            }
            None => {
                self.pending
                    .insert((pid, name), Pending { bin, ts_ns, value });
            }
        }
    }

    /// Record an instant event on the track.
    pub fn instant(&mut self, ts_ns: u64, kind: TrackKind, id: u32, name: &'static str) {
        self.events.push(Ev::Instant {
            ts_ns,
            pid: kind.pid(id),
            name,
        });
    }

    /// Record a complete-duration (`"X"`) span on the track.
    pub fn span(&mut self, ts_ns: u64, dur_ns: u64, kind: TrackKind, id: u32, name: &str) {
        self.events.push(Ev::Span {
            ts_ns,
            dur_ns,
            pid: kind.pid(id),
            name: name.to_string(),
        });
    }

    /// Flush buffered counter samples (call once, at end of run; the
    /// tail sample of every track becomes its final event). Flushes in
    /// `(pid, name)` order, which is deterministic.
    pub fn flush_counters(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        for ((pid, name), p) in pending {
            self.events.push(Ev::Counter {
                ts_ns: p.ts_ns,
                pid,
                name,
                value: p.value,
            });
        }
    }

    /// Events recorded so far (metadata excluded).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the Trace Event Format document. Call after
    /// [`TraceBuilder::flush_counters`].
    pub fn json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 80);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for (pid, name) in &self.track_names {
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            );
        }
        for ev in &self.events {
            push_sep(&mut out, &mut first);
            match ev {
                Ev::Counter {
                    ts_ns,
                    pid,
                    name,
                    value,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"C\",\"pid\":{pid},\"ts\":{},\"name\":\"{}\",\"args\":{{\"value\":{}}}}}",
                        ts_us(*ts_ns),
                        escape_json(name),
                        fmt_f64(*value)
                    );
                }
                Ev::Instant { ts_ns, pid, name } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"s\":\"p\",\"name\":\"{}\"}}",
                        ts_us(*ts_ns),
                        escape_json(name)
                    );
                }
                Ev::Span {
                    ts_ns,
                    dur_ns,
                    pid,
                    name,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"dur\":{},\"name\":\"{}\"}}",
                        ts_us(*ts_ns),
                        ts_us(*dur_ns),
                        escape_json(name)
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Integer sim-nanoseconds as the microsecond timestamps the format
/// expects, rendered fixed-point (`123.456`) so the bytes never depend
/// on float formatting.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Deterministic JSON number for counter values: integral values print
/// as integers, everything else uses Rust's shortest-round-trip float
/// formatting (stable for bit-identical inputs).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escape a string for a JSON literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pids_are_disjoint_across_kinds() {
        assert_ne!(TrackKind::Flow.pid(0), TrackKind::Host.pid(0));
        assert_ne!(TrackKind::Host.pid(0), TrackKind::Queue.pid(0));
        assert_eq!(TrackKind::Flow.pid(3), 1_003);
    }

    #[test]
    fn json_shape_and_timestamps() {
        let mut tb = TraceBuilder::new(0);
        tb.set_track_name(TrackKind::Flow, 0, "flow f0 (cubic)");
        tb.counter(1_234_567, TrackKind::Flow, 0, "cwnd_bytes", 14_480.0);
        tb.instant(2_000_000, TrackKind::Flow, 0, "rto");
        tb.span(0, 5_000_000, TrackKind::Flow, 0, "transfer");
        tb.flush_counters();
        let json = tb.json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("flow f0 (cubic)"));
        // 1_234_567 ns == 1234.567 us.
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"args\":{\"value\":14480}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":5000.000"));
    }

    #[test]
    fn downsampling_keeps_last_sample_per_bin() {
        let mut tb = TraceBuilder::new(1_000);
        for (ts, v) in [(10, 1.0), (20, 2.0), (999, 3.0), (1_500, 4.0)] {
            tb.counter(ts, TrackKind::Queue, 2, "queue_bytes", v);
        }
        tb.flush_counters();
        let json = tb.json();
        // Bin 0 collapsed to its last sample (ts 999, value 3).
        assert!(!json.contains("\"value\":1}"));
        assert!(!json.contains("\"value\":2}"));
        assert!(json.contains("\"ts\":0.999"));
        assert!(json.contains("\"value\":3}"));
        assert!(json.contains("\"value\":4}"));
        assert_eq!(tb.len(), 2);
    }

    #[test]
    fn identical_inputs_render_identical_bytes() {
        let build = || {
            let mut tb = TraceBuilder::default();
            tb.set_track_name(TrackKind::Host, 1, "host n1");
            tb.counter(5_000, TrackKind::Host, 1, "power_w", 21.515);
            tb.instant(6_000, TrackKind::Host, 1, "drop");
            tb.flush_counters();
            tb.json()
        };
        assert_eq!(build(), build());
    }
}
