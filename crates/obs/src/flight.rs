//! Per-flow flight recorder.
//!
//! A bounded ring of typed events per flow — the black box that ships
//! with a crash. When a flow aborts (RTO retries exhausted) or a
//! campaign cell errors, the ring holds the last `capacity` things the
//! flow did: cwnd moves, losses, RTOs, ECN marks, pacing stalls, energy
//! samples. Overflow is explicit: the ring counts what it evicted
//! instead of silently wrapping.

use std::collections::BTreeMap;
use std::fmt;

/// One typed flow event. Timestamps live on [`FlightEntry`]; payloads
/// are plain integers so entries are `Copy`, comparable, and render
/// identically on every platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowEvent {
    /// The congestion window moved (value after the change).
    CwndChange {
        /// New congestion window in bytes.
        cwnd_bytes: u64,
    },
    /// A new RTT sample was taken.
    RttSample {
        /// The sample in nanoseconds.
        rtt_ns: u64,
    },
    /// Bytes newly declared lost (SACK/dupack inference).
    Loss {
        /// Newly-lost bytes at this instant.
        bytes: u64,
    },
    /// The sender entered fast recovery.
    RecoveryEnter,
    /// The sender left fast recovery.
    RecoveryExit,
    /// A retransmission timeout fired.
    Rto {
        /// Consecutive RTOs so far (1 = first).
        consecutive: u32,
    },
    /// ECN congestion-experienced feedback arrived.
    EcnMark {
        /// Bytes acked with CE marks at this instant.
        bytes: u64,
    },
    /// Pacing refused to send and armed a pace timer.
    PacingStall {
        /// Instant the pacer will wake, sim nanoseconds.
        until_ns: u64,
    },
    /// A segment was retransmitted.
    Retransmit {
        /// First sequence byte of the segment.
        seq: u64,
    },
    /// A host power sample attributed to this flow's sender.
    EnergySample {
        /// Average power over the sample bin, milliwatts.
        milliwatts: u64,
    },
    /// The flow started sending.
    Started,
    /// The flow completed its transfer.
    Completed,
    /// The flow gave up (e.g. RTO retries exhausted).
    Aborted,
}

impl fmt::Display for FlowEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowEvent::CwndChange { cwnd_bytes } => write!(f, "cwnd {cwnd_bytes} B"),
            FlowEvent::RttSample { rtt_ns } => write!(f, "rtt {rtt_ns} ns"),
            FlowEvent::Loss { bytes } => write!(f, "loss {bytes} B"),
            FlowEvent::RecoveryEnter => write!(f, "recovery enter"),
            FlowEvent::RecoveryExit => write!(f, "recovery exit"),
            FlowEvent::Rto { consecutive } => write!(f, "rto #{consecutive}"),
            FlowEvent::EcnMark { bytes } => write!(f, "ecn mark {bytes} B"),
            FlowEvent::PacingStall { until_ns } => write!(f, "pacing stall until {until_ns} ns"),
            FlowEvent::Retransmit { seq } => write!(f, "retx seq {seq}"),
            FlowEvent::EnergySample { milliwatts } => write!(f, "power {milliwatts} mW"),
            FlowEvent::Started => write!(f, "started"),
            FlowEvent::Completed => write!(f, "completed"),
            FlowEvent::Aborted => write!(f, "ABORTED"),
        }
    }
}

/// A timestamped ring entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    /// Sim-clock nanoseconds.
    pub at_ns: u64,
    /// What happened.
    pub event: FlowEvent,
}

/// One flow's bounded event ring.
#[derive(Clone, Debug)]
pub struct FlightRing {
    buf: Vec<FlightEntry>,
    capacity: usize,
    head: usize,
    seen: u64,
}

impl FlightRing {
    fn new(capacity: usize) -> Self {
        FlightRing {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            seen: 0,
        }
    }

    fn record(&mut self, entry: FlightEntry) {
        self.seen += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(entry);
            return;
        }
        // Ring is full: evict the oldest. `overflowed()` makes the
        // eviction visible instead of silent.
        self.buf[self.head] = entry;
        self.head = (self.head + 1) % self.capacity;
    }

    /// Entries in arrival order (oldest surviving first).
    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        let (wrapped, start) = self.buf.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events evicted because the ring was full.
    pub fn overflowed(&self) -> u64 {
        self.seen - self.buf.len() as u64
    }
}

/// Default per-flow ring capacity.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Flight rings for every observed flow.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    capacity: usize,
    rings: BTreeMap<u32, FlightRing>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Recorder whose rings hold `capacity` entries each.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            rings: BTreeMap::new(),
        }
    }

    /// Record an event on `flow`'s ring, creating the ring on first use.
    pub fn record(&mut self, flow: u32, at_ns: u64, event: FlowEvent) {
        self.rings
            .entry(flow)
            .or_insert_with(|| FlightRing::new(self.capacity))
            .record(FlightEntry { at_ns, event });
    }

    /// The ring for `flow`, if it ever recorded.
    pub fn ring(&self, flow: u32) -> Option<&FlightRing> {
        self.rings.get(&flow)
    }

    /// Flows with at least one event, ascending.
    pub fn flows(&self) -> impl Iterator<Item = u32> + '_ {
        self.rings.keys().copied()
    }

    /// Events evicted across all rings.
    pub fn total_overflowed(&self) -> u64 {
        self.rings.values().map(FlightRing::overflowed).sum()
    }

    /// Render one flow's ring as text, one event per line.
    pub fn dump_flow(&self, flow: u32) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let Some(ring) = self.rings.get(&flow) else {
            let _ = writeln!(out, "flow f{flow}: no events recorded");
            return out;
        };
        let _ = writeln!(
            out,
            "flow f{flow}: {} events held, {} seen, {} evicted",
            ring.len(),
            ring.seen(),
            ring.overflowed()
        );
        for e in ring.entries() {
            let _ = writeln!(out, "  {:>14} ns  {}", e.at_ns, e.event);
        }
        out
    }

    /// Render every ring, flows in ascending order.
    pub fn dump_all(&self) -> String {
        let mut out = String::new();
        for flow in self.flows() {
            out.push_str(&self.dump_flow(flow));
        }
        if out.is_empty() {
            out.push_str("flight recorder: no events recorded\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(7, i * 10, FlowEvent::CwndChange { cwnd_bytes: i });
        }
        let ring = fr.ring(7).unwrap();
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.seen(), 5);
        assert_eq!(ring.overflowed(), 2);
        let held: Vec<u64> = ring.entries().map(|e| e.at_ns).collect();
        assert_eq!(held, vec![20, 30, 40], "oldest surviving first");
        assert_eq!(fr.total_overflowed(), 2);
    }

    #[test]
    fn dump_mentions_evictions_and_events() {
        let mut fr = FlightRecorder::new(2);
        fr.record(0, 5, FlowEvent::Rto { consecutive: 1 });
        fr.record(0, 9, FlowEvent::Aborted);
        let text = fr.dump_flow(0);
        assert!(text.contains("flow f0: 2 events held, 2 seen, 0 evicted"));
        assert!(text.contains("rto #1"));
        assert!(text.contains("ABORTED"));
        assert!(fr.dump_flow(3).contains("no events recorded"));
    }
}
