//! Sim-time metrics registry.
//!
//! Counters, gauges, and log-linear histograms keyed by a static metric
//! name plus a small, ordered label set. Everything lives in `BTreeMap`s
//! so iteration (and therefore the rendered exposition text) is
//! deterministic, and timestamps are caller-supplied sim-clock
//! nanoseconds — the registry never looks at a wall clock.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An ordered label set. Keys are static (they name dimensions we
/// control); values are small formatted ids like `"f0"` or `"l2"`.
pub type Labels = BTreeMap<&'static str, String>;

/// Build a label set from `(key, value)` pairs.
pub fn labels<const N: usize>(pairs: [(&'static str, String); N]) -> Labels {
    pairs.into_iter().collect()
}

/// A metric identity: static name plus labels. Orders by name, then by
/// the label map's lexicographic order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus-style `snake_case`, `_total` suffix on
    /// counters by convention).
    pub name: &'static str,
    /// Label set; empty is fine.
    pub labels: Labels,
}

impl MetricKey {
    /// Key with no labels.
    pub fn plain(name: &'static str) -> Self {
        MetricKey {
            name,
            labels: Labels::new(),
        }
    }

    /// Key with labels.
    pub fn with_labels(name: &'static str, labels: Labels) -> Self {
        MetricKey { name, labels }
    }
}

/// The live registry instruments record into.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a monotonic counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &'static str, labels: Labels, delta: u64) {
        *self
            .counters
            .entry(MetricKey::with_labels(name, labels))
            .or_insert(0) += delta;
    }

    /// Set a gauge to `value`.
    pub fn gauge_set(&mut self, name: &'static str, labels: Labels, value: f64) {
        self.gauges
            .insert(MetricKey::with_labels(name, labels), value);
    }

    /// Record `value` into a histogram, creating it empty first.
    pub fn observe(&mut self, name: &'static str, labels: Labels, value: u64) {
        self.histograms
            .entry(MetricKey::with_labels(name, labels))
            .or_default()
            .record(value);
    }

    /// Current counter value, if the key exists.
    pub fn counter(&self, name: &'static str, labels: &Labels) -> Option<u64> {
        self.counters
            .get(&MetricKey::with_labels(name, labels.clone()))
            .copied()
    }

    /// Current gauge value, if the key exists.
    pub fn gauge(&self, name: &'static str, labels: &Labels) -> Option<f64> {
        self.gauges
            .get(&MetricKey::with_labels(name, labels.clone()))
            .copied()
    }

    /// Histogram under the key, if it exists.
    pub fn histogram(&self, name: &'static str, labels: &Labels) -> Option<&Histogram> {
        self.histograms
            .get(&MetricKey::with_labels(name, labels.clone()))
    }

    /// Freeze the registry at sim instant `at_ns`. The snapshot is a
    /// deep copy — the live registry keeps accumulating afterwards, so
    /// campaigns can snapshot at any sim instant mid-run.
    pub fn snapshot(&self, at_ns: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            at_ns,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// An immutable view of the registry at one sim instant.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Sim-clock nanoseconds the snapshot was taken at.
    pub at_ns: u64,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value, if present.
    pub fn counter(&self, name: &'static str, labels: &Labels) -> Option<u64> {
        self.counters
            .get(&MetricKey::with_labels(name, labels.clone()))
            .copied()
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &'static str, labels: &Labels) -> Option<f64> {
        self.gauges
            .get(&MetricKey::with_labels(name, labels.clone()))
            .copied()
    }

    /// Histogram, if present.
    pub fn histogram(&self, name: &'static str, labels: &Labels) -> Option<&Histogram> {
        self.histograms
            .get(&MetricKey::with_labels(name, labels.clone()))
    }

    /// Sum a counter across all label sets sharing `name`.
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket` lines only at occupied
    /// bucket boundaries (plus `+Inf`), which keeps artifacts small
    /// while staying valid exposition text. Output is byte-deterministic:
    /// all maps are ordered and floats use Rust's shortest-round-trip
    /// formatting of bit-identical values.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# obs snapshot at sim_ns {}", self.at_ns);

        let mut last_name = "";
        for (key, value) in &self.counters {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} counter", key.name);
                last_name = key.name;
            }
            let _ = writeln!(out, "{}{} {}", key.name, render_labels(&key.labels), value);
        }

        last_name = "";
        for (key, value) in &self.gauges {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} gauge", key.name);
                last_name = key.name;
            }
            let _ = writeln!(out, "{}{} {}", key.name, render_labels(&key.labels), value);
        }

        last_name = "";
        for (key, hist) in &self.histograms {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} histogram", key.name);
                last_name = key.name;
            }
            let mut cumulative = 0u64;
            for (hi, count) in hist.nonzero_buckets() {
                cumulative += count;
                let mut with_le = key.labels.clone();
                with_le.insert("le", hi.to_string());
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    key.name,
                    render_labels(&with_le),
                    cumulative
                );
            }
            let mut with_le = key.labels.clone();
            with_le.insert("le", "+Inf".to_string());
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                key.name,
                render_labels(&with_le),
                hist.count()
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                key.name,
                render_labels(&key.labels),
                hist.sum()
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                key.name,
                render_labels(&key.labels),
                hist.count()
            );
        }
        out
    }
}

/// `{k="v",k2="v2"}` or the empty string for no labels.
fn render_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_freezes() {
        let mut reg = MetricsRegistry::new();
        let l = labels([("flow", "f0".to_string())]);
        reg.counter_add("retx_total", l.clone(), 2);
        reg.counter_add("retx_total", l.clone(), 3);
        let snap = reg.snapshot(1_000);
        reg.counter_add("retx_total", l.clone(), 10);
        assert_eq!(snap.counter("retx_total", &l), Some(5));
        assert_eq!(reg.counter("retx_total", &l), Some(15));
        assert_eq!(snap.at_ns, 1_000);
    }

    #[test]
    fn exposition_is_deterministic_and_ordered() {
        let mut reg = MetricsRegistry::new();
        // Insert in reverse order; output must still be sorted.
        reg.counter_add("z_total", Labels::new(), 1);
        reg.counter_add("a_total", labels([("link", "l2".to_string())]), 7);
        reg.counter_add("a_total", labels([("link", "l1".to_string())]), 4);
        reg.gauge_set("depth_bytes", Labels::new(), 42.5);
        reg.observe("rtt_ns", Labels::new(), 100);
        reg.observe("rtt_ns", Labels::new(), 100_000);
        let snap = reg.snapshot(5);
        let text = snap.prometheus_text();
        let again = reg.snapshot(5).prometheus_text();
        assert_eq!(text, again);
        let a1 = text.find("a_total{link=\"l1\"} 4").expect("l1 line");
        let a2 = text.find("a_total{link=\"l2\"} 7").expect("l2 line");
        let z = text.find("z_total 1").expect("z line");
        assert!(a1 < a2 && a2 < z, "counters must be sorted");
        assert!(text.contains("# TYPE rtt_ns histogram"));
        assert!(text.contains("rtt_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("rtt_ns_count 2"));
        assert!(text.contains("rtt_ns_sum 100100"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        for v in [1u64, 1, 2, 500] {
            reg.observe("h", Labels::new(), v);
        }
        let text = reg.snapshot(0).prometheus_text();
        assert!(text.contains("h_bucket{le=\"1\"} 2"));
        assert!(text.contains("h_bucket{le=\"2\"} 3"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 4"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("c_total", labels([("name", "a\"b\\c".to_string())]), 1);
        let text = reg.snapshot(0).prometheus_text();
        assert!(text.contains(r#"c_total{name="a\"b\\c"} 1"#));
    }
}
