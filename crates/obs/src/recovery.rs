//! Time-to-recover math for fault experiments.
//!
//! When a scheduled fault (a link flap, a loss burst) clears, a healthy
//! transport should pull its throughput back inside the expected band.
//! The scenario expectation engine asks "how long did that take?" per
//! flow and folds the answers into a histogram exported through the
//! usual Prometheus/Perfetto paths. The measurement itself is pure
//! series math and lives here, next to [`crate::series`], so it can be
//! unit-tested against hand-built series and reused by any evaluator.
//!
//! Definition: given a binned throughput series, a fault-clear instant,
//! and a floor (the bottom of the expectation band), the recovery time
//! is the span from the clear instant to the end of the first bin — at
//! or after the first *full* bin following the clear — that meets the
//! floor and stays there for `sustain_bins` consecutive bins. The bin
//! containing the clear instant is skipped because it averages outage
//! and recovery together. `None` means the series ended without the
//! flow ever re-entering the band.

/// Histogram metric name the `RecoveryWithin` evaluator reports under.
pub const RECOVERY_TIME_MS_METRIC: &str = "scenario_recovery_time_ms";

/// Sim-nanoseconds from `clear_ns` until `series` re-enters the band.
///
/// * `series` — per-bin throughput (any unit; compared against
///   `floor` in the same unit), bins of width `bin_ns` starting at 0.
/// * `clear_ns` — the instant the fault cleared.
/// * `floor` — the bottom of the recovery band.
/// * `sustain_bins` — how many consecutive bins must hold the floor
///   before the first of them counts as the recovery point (0 is
///   treated as 1).
///
/// Returns `Some(end_of_first_sustained_bin - clear_ns)`, or `None` if
/// the series ends before any sustained re-entry.
pub fn time_to_recover(
    series: &[f64],
    bin_ns: u64,
    clear_ns: u64,
    floor: f64,
    sustain_bins: usize,
) -> Option<u64> {
    if bin_ns == 0 {
        return None;
    }
    let sustain = sustain_bins.max(1);
    // First bin that starts at or after the clear: the bin straddling
    // the clear instant mixes outage and recovery, so it never counts.
    let first = usize::try_from(clear_ns.div_ceil(bin_ns)).ok()?;
    if first >= series.len() {
        return None;
    }
    let mut run = 0usize;
    for (i, &v) in series.iter().enumerate().skip(first) {
        if v >= floor {
            run += 1;
            if run >= sustain {
                let start_of_run = i + 1 - sustain;
                let end_ns = (start_of_run as u64 + 1) * bin_ns;
                return Some(end_ns.saturating_sub(clear_ns));
            }
        } else {
            run = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIN: u64 = 1_000; // 1 us bins for readable arithmetic

    #[test]
    fn immediate_recovery_reports_one_bin() {
        // Clear at t=0, first bin already above the floor.
        let t = time_to_recover(&[5.0, 5.0, 5.0], BIN, 0, 1.0, 1);
        assert_eq!(t, Some(BIN));
    }

    #[test]
    fn recovery_measured_from_the_clear_instant() {
        // Clear mid-bin-1; bin 1 is skipped (it straddles the clear),
        // bin 2 is below the floor, bin 3 recovers. End of bin 3 is
        // 4000 ns, clear was 1500 ns.
        let series = [0.0, 0.3, 0.4, 2.0, 2.0];
        let t = time_to_recover(&series, BIN, 1_500, 1.0, 1);
        assert_eq!(t, Some(4_000 - 1_500));
    }

    #[test]
    fn straddling_bin_never_counts_even_if_above_floor() {
        // Bin 1 averages outage+burst and lands above the floor, but the
        // clear happened inside it: recovery is credited to bin 2.
        let series = [0.0, 3.0, 3.0];
        let t = time_to_recover(&series, BIN, 1_200, 1.0, 1);
        assert_eq!(t, Some(3_000 - 1_200));
    }

    #[test]
    fn sustain_requires_consecutive_bins() {
        // One good bin followed by a relapse doesn't count with
        // sustain=2; the sustained run starts at bin 4.
        let series = [0.0, 2.0, 0.1, 0.1, 2.0, 2.0];
        let t = time_to_recover(&series, BIN, 0, 1.0, 2);
        // Run [4,5] sustains; recovery point is the end of bin 4.
        assert_eq!(t, Some(5_000));
    }

    #[test]
    fn never_recovering_is_none() {
        assert_eq!(time_to_recover(&[0.0, 0.1, 0.2], BIN, 0, 1.0, 1), None);
        // Clear beyond the series end: nothing to measure.
        assert_eq!(time_to_recover(&[5.0, 5.0], BIN, 10_000, 1.0, 1), None);
        // Degenerate bin width.
        assert_eq!(time_to_recover(&[5.0], 0, 0, 1.0, 1), None);
        // Empty series.
        assert_eq!(time_to_recover(&[], BIN, 0, 1.0, 1), None);
    }

    #[test]
    fn boundary_value_meets_the_floor() {
        // Exactly at the floor counts as recovered (>=, not >).
        let t = time_to_recover(&[1.0], BIN, 0, 1.0, 1);
        assert_eq!(t, Some(BIN));
    }

    #[test]
    fn sustain_zero_behaves_like_one() {
        let a = time_to_recover(&[0.0, 2.0], BIN, 0, 1.0, 0);
        let b = time_to_recover(&[0.0, 2.0], BIN, 0, 1.0, 1);
        assert_eq!(a, b);
    }
}
