//! Deterministic observability for the simulation workspace.
//!
//! Three pillars, one crate:
//!
//! 1. **Sim-time metrics** ([`metrics`]): counters, gauges, and
//!    log-linear HDR-style histograms ([`hist`]) keyed by static names
//!    plus small ordered label sets, snapshot-able at any sim instant
//!    and rendered as Prometheus text for campaign artifacts.
//! 2. **Per-flow flight recorder** ([`flight`]): a bounded ring of
//!    typed events per flow — the black box dumped when a flow aborts
//!    or a campaign cell fails.
//! 3. **Trace export** ([`perfetto`]): Chrome-trace/Perfetto JSON with
//!    one track per flow/queue/host, loadable in `ui.perfetto.dev` or
//!    `chrome://tracing`.
//!
//! Instrumented crates talk to all three through the [`Recorder`] seam
//! ([`recorder`]), whose methods default to no-ops: a run without a
//! recorder attached executes the identical event stream and keeps the
//! golden determinism fingerprint bit-for-bit.
//!
//! Determinism rules this crate obeys (and `simlint` enforces):
//! timestamps are caller-supplied sim-clock nanoseconds — never a wall
//! clock; every map is a `BTreeMap`; exposition text and trace JSON are
//! emitted by hand in a fixed order, so identical runs produce
//! byte-identical artifacts. Like `simlint`, the crate is std-only and
//! sits below `netsim` in the dependency graph: ids and timestamps are
//! plain integers, adapted by callers.

#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod metrics;
pub mod perfetto;
pub mod recorder;
pub mod recovery;
pub mod series;

pub use flight::{FlightEntry, FlightRecorder, FlightRing, FlowEvent};
pub use hist::Histogram;
pub use metrics::{labels, Labels, MetricKey, MetricsRegistry, MetricsSnapshot};
pub use perfetto::{TraceBuilder, TrackKind};
pub use recorder::{NoopRecorder, ObsRecorder, ObsReport, Recorder, SharedRecorder};
