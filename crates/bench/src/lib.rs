//! # bench — figure regeneration and performance benchmarks
//!
//! * `src/bin/fig1.rs` … `fig8.rs`, `theorem1.rs`, `all.rs` — binaries
//!   that rerun each of the paper's figures and print the same
//!   rows/series the paper reports (`cargo run --release -p bench --bin
//!   fig1`). `GREENENVY_SCALE=paper|standard|quick|tiny` selects the
//!   workload size. Each binary also writes its typed result as JSON
//!   under `results/`.
//! * `src/bin/campaign.rs` — the durable CCA × MTU campaign runner:
//!   checkpoint journal, `--resume`, per-cell `--deadline`, paranoid
//!   invariant audits, and graceful SIGINT/SIGTERM shutdown.
//! * `src/bin/cca_table.rs` — the one-screen diagnostic table of every
//!   CCA's behaviour at a chosen transfer size and MTU.
//! * `benches/` — Criterion benches: one scaled-down run per figure plus
//!   micro-benchmarks of the simulator's hot paths and ablations of the
//!   design choices called out in `DESIGN.md`.

use greenenvy::campaign::persist;
use serde::Serialize;
use std::path::PathBuf;

/// Write an experiment result as pretty JSON under `results/`, returning
/// the path. The write is atomic (temp file + rename): a crash or a
/// concurrent reader never sees a torn artifact. Failures are reported
/// but non-fatal (the printed tables are the primary artefact).
pub fn save_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    save_json_in(&PathBuf::from("results"), name, value)
}

/// [`save_json`] with an explicit directory.
pub fn save_json_in<T: Serialize>(dir: &std::path::Path, name: &str, value: &T) -> Option<PathBuf> {
    let path = dir.join(format!("{name}.json"));
    match persist::save_json_atomic(&path, value) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: {e}");
            None
        }
    }
}

/// Announce the scale a binary is running at.
pub fn announce(figure: &str, scale: &greenenvy::Scale) {
    println!(
        "=== {figure} | scale: {} ({} bytes/transfer, {} reps) ===\n",
        scale.name, scale.transfer_bytes, scale.repetitions
    );
}

/// Load a cached campaign matrix for this scale from `results/`, or run
/// it and cache it. Figures 5-8 all project the same campaign (as in the
/// paper), so consecutive figure binaries reuse one run.
pub fn load_or_run_matrix(scale: greenenvy::Scale) -> greenenvy::matrix::Matrix {
    let path = PathBuf::from("results").join(format!("matrix_{}.json", scale.name));
    if let Ok(body) = std::fs::read_to_string(&path) {
        if let Ok(matrix) = serde_json::from_str::<greenenvy::matrix::Matrix>(&body) {
            if matrix_matches(&matrix, &scale) {
                println!("(reusing cached campaign {})\n", path.display());
                return matrix;
            }
        }
    }
    let matrix = greenenvy::matrix::run_matrix(scale);
    let _ = save_json(&format!("matrix_{}", scale.name), &matrix);
    matrix
}

/// Is a cached matrix safe to reuse for `scale`?
///
/// The seed list is part of the cache key: two scales can share transfer
/// size and repetition count yet run different seed schedules, and a
/// stale cache would silently change every figure downstream. Likewise a
/// *partial* matrix (from a cancelled or failing campaign) must never be
/// mistaken for the real thing, and neither may a file written under an
/// older result schema.
pub fn matrix_matches(matrix: &greenenvy::matrix::Matrix, scale: &greenenvy::Scale) -> bool {
    use cca::CcaKind;
    matrix.schema_version == greenenvy::matrix::MATRIX_SCHEMA_VERSION
        && matrix.transfer_bytes == scale.transfer_bytes
        && matrix.repetitions == scale.repetitions
        && matrix.seeds == scale.seeds()
        && matrix.is_complete()
        && matrix.cells.len() == CcaKind::ALL.len() * greenenvy::matrix::MTUS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_json_roundtrips() {
        let tmp = std::env::temp_dir().join("greenenvy-bench-test");
        let path =
            save_json_in(&tmp, "unit-test", &serde_json::json!({"x": 1})).expect("write succeeds");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"x\": 1"));
    }

    #[test]
    fn partial_or_stale_matrices_are_rejected_by_the_cache_key() {
        use greenenvy::matrix::{CellFailure, Matrix, MATRIX_SCHEMA_VERSION};
        let scale = greenenvy::Scale::quick();
        let complete = |cells: Vec<greenenvy::matrix::Cell>| Matrix {
            schema_version: MATRIX_SCHEMA_VERSION,
            transfer_bytes: scale.transfer_bytes,
            repetitions: scale.repetitions,
            seeds: scale.seeds(),
            cells,
            failed: Vec::new(),
        };
        // An empty cell list is "complete" (no failures) but not full.
        let empty = complete(Vec::new());
        assert!(
            !matrix_matches(&empty, &scale),
            "missing cells must not cache-hit"
        );
        let mut failed = complete(Vec::new());
        failed.failed.push(CellFailure {
            cca: "cubic".into(),
            mtu: 1500,
            error: "x".into(),
            retry_error: "y".into(),
            attempts: 2,
        });
        assert!(
            !matrix_matches(&failed, &scale),
            "partial matrix must not cache-hit"
        );
        let mut stale = complete(Vec::new());
        stale.schema_version = 0;
        assert!(
            !matrix_matches(&stale, &scale),
            "old schema must not cache-hit"
        );
    }

    #[test]
    fn tracked_standard_matrix_still_cache_hits() {
        // The checked-in artifact must keep deserializing under the
        // current schema and satisfying the cache key — otherwise every
        // figure binary silently re-runs the standard-scale campaign.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/matrix_standard.json");
        let body = std::fs::read_to_string(&path).expect("tracked matrix artifact exists");
        let matrix: greenenvy::matrix::Matrix =
            serde_json::from_str(&body).expect("tracked matrix deserializes");
        assert!(matrix_matches(&matrix, &greenenvy::Scale::standard()));
    }
}
