//! # bench — figure regeneration and performance benchmarks
//!
//! * `src/bin/fig1.rs` … `fig8.rs`, `theorem1.rs`, `all.rs` — binaries
//!   that rerun each of the paper's figures and print the same
//!   rows/series the paper reports (`cargo run --release -p bench --bin
//!   fig1`). `GREENENVY_SCALE=paper|standard|quick` selects the workload
//!   size. Each binary also writes its typed result as JSON under
//!   `results/`.
//! * `src/bin/cca_table.rs` — the one-screen diagnostic table of every
//!   CCA's behaviour at a chosen transfer size and MTU.
//! * `benches/` — Criterion benches: one scaled-down run per figure plus
//!   micro-benchmarks of the simulator's hot paths and ablations of the
//!   design choices called out in `DESIGN.md`.

use serde::Serialize;
use std::path::PathBuf;

/// Write an experiment result as pretty JSON under `results/`, returning
/// the path. Failures are reported but non-fatal (the printed tables are
/// the primary artefact).
pub fn save_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    save_json_in(&PathBuf::from("results"), name, value)
}

/// [`save_json`] with an explicit directory.
pub fn save_json_in<T: Serialize>(dir: &std::path::Path, name: &str, value: &T) -> Option<PathBuf> {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        },
        Err(e) => {
            eprintln!("warning: cannot serialize {name}: {e}");
            None
        }
    }
}

/// Announce the scale a binary is running at.
pub fn announce(figure: &str, scale: &greenenvy::Scale) {
    println!(
        "=== {figure} | scale: {} ({} bytes/transfer, {} reps) ===\n",
        scale.name, scale.transfer_bytes, scale.repetitions
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_json_roundtrips() {
        let tmp = std::env::temp_dir().join("greenenvy-bench-test");
        let path = save_json_in(&tmp, "unit-test", &serde_json::json!({"x": 1}))
            .expect("write succeeds");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"x\": 1"));
    }
}

/// Load a cached campaign matrix for this scale from `results/`, or run
/// it and cache it. Figures 5-8 all project the same campaign (as in the
/// paper), so consecutive figure binaries reuse one run.
pub fn load_or_run_matrix(scale: greenenvy::Scale) -> greenenvy::matrix::Matrix {
    let path = PathBuf::from("results").join(format!("matrix_{}.json", scale.name));
    if let Ok(body) = std::fs::read_to_string(&path) {
        if let Ok(matrix) = serde_json::from_str::<greenenvy::matrix::Matrix>(&body) {
            // The seed list is part of the cache key: two scales can share
            // transfer size and repetition count yet run different seed
            // schedules, and a stale cache would silently change every
            // figure downstream.
            if matrix.transfer_bytes == scale.transfer_bytes
                && matrix.repetitions == scale.repetitions
                && matrix.seeds == scale.seeds()
            {
                println!("(reusing cached campaign {})\n", path.display());
                return matrix;
            }
        }
    }
    let matrix = greenenvy::matrix::run_matrix(scale);
    let _ = save_json(&format!("matrix_{}", scale.name), &matrix);
    matrix
}
