//! Regenerate Figure 5 from the shared CCA x MTU campaign.
use greenenvy::{fig5, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("Figure 5", &scale);
    let matrix = bench::load_or_run_matrix(scale);
    let result = fig5::from_matrix(matrix);
    println!("{}", fig5::render(&result));
    if let Some(p) = bench::save_json("fig5", &result) {
        println!("json: {}", p.display());
    }
}
