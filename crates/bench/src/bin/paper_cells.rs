//! Validate scale-invariance: run selected CCAs at the paper's full 50 GB
//! and compare per-byte energy with the standard 5 GB campaign.
use cca::CcaKind;
use workload::prelude::*;

fn main() {
    let bytes: u64 = 50_000_000_000;
    for kind in [
        CcaKind::Cubic,
        CcaKind::Bbr,
        CcaKind::Bbr2,
        CcaKind::Baseline,
    ] {
        let s = Scenario::new(9000, vec![FlowSpec::bulk(kind, bytes)]);
        match workload::scenario::run(&s) {
            Ok(out) => {
                let r = &out.reports[0];
                println!(
                    "{:>10} 50GB: fct={:.2}s gput={:.3}G P={:.2}W E={:.1}J ({:.2} kJ) retx={}",
                    kind.name(),
                    r.fct.as_secs_f64(),
                    r.mean_goodput.gbps(),
                    out.average_sender_power_w(),
                    out.sender_energy_j,
                    out.sender_energy_j / 1000.0,
                    r.retransmits
                );
            }
            Err(e) => println!("{:>10} FAILED: {e}", kind.name()),
        }
    }
}
