//! Run the resilience scenario suite and emit its verdict matrix.
//!
//! ```text
//! scenarios [--out <file>] [--trace-out <dir>]
//! ```
//!
//! * `--out` — write the verdict JSON to this exact path (atomic).
//!   The verdict is a pure function of the suite's specs, so two runs
//!   at the same scale produce byte-identical files — `verify.sh
//!   --scenarios` diffs them.
//! * `--trace-out` — also persist the suite's observability exports
//!   (Prometheus text with the time-to-recover histogram, Perfetto
//!   trace with one span per scenario) into the given directory.
//!
//! Exits non-zero unless every scenario behaved: positive entries
//! passed all expectations, negative entries failed as designed.

use greenenvy::campaign::persist;
use greenenvy::exitcode;
use greenenvy::{resilience, Scale};
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_env();
    let mut out_path: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;

    let mut args = std::env::args();
    args.next(); // program name
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(exitcode::USAGE);
                }
            },
            "--trace-out" => match args.next() {
                Some(dir) => trace_out = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --trace-out needs a directory");
                    std::process::exit(exitcode::USAGE);
                }
            },
            _ => {
                eprintln!(
                    "error: unknown flag {arg:?}\nusage: scenarios [--out <file>] [--trace-out <dir>]"
                );
                std::process::exit(exitcode::USAGE);
            }
        }
    }

    bench::announce("Resilience suite", &scale);
    let out = match resilience::run(scale) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: resilience suite failed to run: {e}");
            std::process::exit(exitcode::FAILURE);
        }
    };
    println!("{}", resilience::render(&out.verdict));

    let verdict_json = out.verdict.to_json();
    let path = out_path
        .unwrap_or_else(|| PathBuf::from("results").join(format!("scenarios_{}.json", scale.name)));
    match persist::write_atomic(&path, verdict_json.as_bytes()) {
        Ok(()) => println!("json: {}", path.display()),
        Err(e) => eprintln!("warning: {e}"),
    }

    if let Some(dir) = trace_out {
        let prom = dir.join(format!("{}.prom", resilience::SUITE_NAME));
        let trace = dir.join(format!("{}.trace.json", resilience::SUITE_NAME));
        if let Err(e) = persist::write_atomic(&prom, out.prometheus.as_bytes()) {
            eprintln!("warning: {e}");
        }
        if let Err(e) = persist::write_atomic(&trace, out.trace_json.as_bytes()) {
            eprintln!("warning: {e}");
        }
        println!("obs: {} {}", prom.display(), trace.display());
    }

    if !out.verdict.all_behaved {
        eprintln!("error: suite misbehaved (see verdict above)");
        std::process::exit(exitcode::FAILURE);
    }
}
