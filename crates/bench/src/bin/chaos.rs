//! Regenerate the chaos experiment: the Figure-1 energy ordering under
//! injected random loss on the bottleneck.
use greenenvy::{chaos, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("Chaos", &scale);
    let result = match chaos::run(&chaos::Config::at_scale(scale)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: chaos sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", chaos::render(&result));
    if let Some(p) = bench::save_json("chaos", &result) {
        println!("json: {}", p.display());
    }
}
