//! Regenerate the chaos experiment: the Figure-1 energy ordering under
//! injected random loss on the bottleneck.
//!
//! ```text
//! chaos [--trace-out <dir>]
//! ```
//!
//! * `--trace-out` — persist per-run observability artifacts (Perfetto
//!   trace + Prometheus snapshot; flight-ring dumps on abort) into the
//!   given directory, one trio per `rate<i>_seed<s>_{fair,serial}` run.
//!
//! Exit status: 0 — sweep complete; 5 — degraded (measurements complete
//! but one or more trace artifacts failed to persist); 1 — the sweep
//! itself failed; 2 — usage error.
use greenenvy::exitcode;
use greenenvy::{chaos, Scale};
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_env();
    let mut cfg = chaos::Config::at_scale(scale);

    let mut args = std::env::args();
    args.next(); // program name
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => match args.next() {
                Some(dir) => cfg.trace_out = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --trace-out needs a directory");
                    std::process::exit(exitcode::USAGE);
                }
            },
            _ => {
                eprintln!("error: unknown flag {arg:?}\nusage: chaos [--trace-out <dir>]");
                std::process::exit(exitcode::USAGE);
            }
        }
    }

    bench::announce("Chaos", &scale);
    if let Some(dir) = &cfg.trace_out {
        println!("trace-out: {}\n", dir.display());
    }
    let result = match chaos::run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: chaos sweep failed: {e}");
            std::process::exit(exitcode::FAILURE);
        }
    };
    println!("{}", chaos::render(&result));
    if let Some(p) = bench::save_json("chaos", &result) {
        println!("json: {}", p.display());
    }
    if !result.persist_failures.is_empty() {
        eprintln!(
            "DEGRADED: {} trace artifact(s) failed to persist:",
            result.persist_failures.len()
        );
        for f in &result.persist_failures {
            eprintln!("  {f}");
        }
        std::process::exit(exitcode::DEGRADED);
    }
}
