//! Regenerate Figure 3: fair vs full-speed-then-idle throughput traces.
use greenenvy::{fig3, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("Figure 3", &scale);
    let result = fig3::run(&fig3::Config::at_scale(scale));
    println!("{}", fig3::render(&result));
    if let Some(p) = bench::save_json("fig3", &result) {
        println!("json: {}", p.display());
    }
}
