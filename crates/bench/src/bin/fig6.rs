//! Regenerate Figure 6 from the shared CCA x MTU campaign.
use greenenvy::{fig6, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("Figure 6", &scale);
    let matrix = bench::load_or_run_matrix(scale);
    let result = fig6::from_matrix(matrix);
    println!("{}", fig6::render(&result));
    if let Some(p) = bench::save_json("fig6", &result) {
        println!("json: {}", p.display());
    }
}
