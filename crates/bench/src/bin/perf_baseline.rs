//! Tracked simulator performance baseline.
//!
//! Runs a fixed scenario suite with wall-clock timing and writes
//! `BENCH_netsim.json` at the repo root: events/second through the event
//! engine, per-scenario wall seconds, and the scheduler's wheel-vs-heap
//! hit rate. Commit the refreshed file when engine performance changes so
//! regressions show up in review rather than in campaign runtimes.
//!
//! Usage: `cargo run --release -p bench --bin perf_baseline [-- --check]`
//!
//! With `--check`, nothing is written: the scenario suite is re-measured
//! and compared against the committed BENCH_netsim.json, and the process
//! exits non-zero if any tracked scenario's `events_per_sec` regressed
//! by more than [`CHECK_TOLERANCE`]. This is the `scripts/verify.sh
//! --perf` gate.
//!
//! With `--check-journal`, only the checkpoint-journal throughput probe
//! runs: the sharded writer pool must hold at least `1 -
//! CHECK_TOLERANCE` of both the freshly measured and the committed
//! single-journal baseline. This is the `scripts/verify.sh --supervise`
//! throughput gate.

use cca::CcaKind;
use greenenvy::exitcode;
use netsim::fault::FaultSpec;
use netsim::units::MB;
use serde::Serialize;
use std::time::Instant;
use workload::prelude::*;

/// Timing runs per scenario; the minimum is reported (least scheduler
/// noise from the host).
const RUNS: u32 = 3;

/// `--check` fails when a fresh `events_per_sec` lands below
/// `committed * (1 - CHECK_TOLERANCE)`. 15% absorbs host noise on a
/// shared box while still catching real engine regressions.
const CHECK_TOLERANCE: f64 = 0.15;

#[derive(Serialize)]
struct ScenarioPerf {
    name: String,
    /// Best-of-RUNS wall-clock seconds.
    wall_s: f64,
    /// Events through the engine in one run.
    events: u64,
    /// Events per wall second (events / wall_s).
    events_per_sec: f64,
    /// Simulated seconds covered by one run.
    sim_s: f64,
    /// Fraction of scheduler pushes served by the O(1) wheel path.
    wheel_hit_rate: f64,
    /// Scheduler pushes that landed in the wheel.
    wheel_pushes: u64,
    /// Scheduler pushes that overflowed to the far-future heap.
    heap_pushes: u64,
    /// Heap entries later migrated into the wheel.
    migrations: u64,
}

/// Cost of the fault-injection hooks when no faults fire: the same
/// scenario with and without a zero-rate `FaultSpec` on the bottleneck.
/// The spec keeps `FaultState` installed, so every serialized frame pays
/// the full hook path (fate draw included) without any fault biting.
#[derive(Serialize)]
struct ChaosOverhead {
    /// Reference scenario (no fault state on any link).
    plain_wall_s: f64,
    /// Same scenario with a zero-rate fault spec installed.
    faulted_wall_s: f64,
    /// (faulted - plain) / plain. The budget is 2%.
    overhead_frac: f64,
}

/// Cost of the paranoid-mode invariant audit on a clean run: the same
/// scenario with and without [`greenenvy::campaign::invariant::check`]
/// after it. The audit is pure arithmetic over counters the scenario
/// already collects, so it shares the chaos hooks' 2% budget.
#[derive(Serialize)]
struct ParanoidOverhead {
    /// Reference scenario, audit off.
    plain_wall_s: f64,
    /// Same scenario with the invariant audit after each run.
    paranoid_wall_s: f64,
    /// (paranoid - plain) / plain. The budget is 2%.
    overhead_frac: f64,
}

/// Cost of the observability hooks when no recorder consumes them: the
/// same scenario with and without a no-op [`obs::Recorder`] attached to
/// the engine and every sender. Every hook site pays the dynamic
/// dispatch without any recording work, bounding the tax a disabled
/// recorder levies on campaigns. Budget: 2%.
#[derive(Serialize)]
struct ObsOverhead {
    /// Reference scenario (no recorder anywhere).
    plain_wall_s: f64,
    /// Same scenario with a no-op recorder on every hook.
    noop_wall_s: f64,
    /// (noop - plain) / plain. The budget is 2%.
    overhead_frac: f64,
}

/// Throughput of the fsynced campaign checkpoint journal, single-file
/// vs sharded-per-worker. Sharding exists so checkpoint appends from a
/// wide worker pool don't serialize on one file lock + fsync queue; the
/// `--check-journal` gate holds the sharded path to at least the
/// single-journal baseline (within [`CHECK_TOLERANCE`]).
#[derive(Serialize)]
struct JournalThroughput {
    /// Cell records appended per measured run.
    records: usize,
    /// Worker shards in the sharded run.
    shards: usize,
    /// Records/second through one sequential fsynced writer.
    single_rec_per_s: f64,
    /// Records/second through `shards` concurrent fsynced writers.
    sharded_rec_per_s: f64,
    /// sharded / single.
    speedup: f64,
}

/// Cost and findings of a whole-workspace static-analysis pass, so the
/// perf trajectory tracks analysis cost alongside engine throughput.
/// Tracked twice: the token pass alone (`simlint`, 2 s budget) and the
/// full run with call-graph taint and registry rules
/// (`simlint_semantic`, 5 s budget).
#[derive(Serialize)]
struct LintPerf {
    /// Source files scanned.
    files: usize,
    /// Unsuppressed error-severity findings (the verify gate requires 0).
    findings: usize,
    /// Findings covered by an inline simlint::allow with a reason.
    suppressed: usize,
    /// Best-of-RUNS wall seconds for the whole-workspace lint.
    wall_s: f64,
    /// The budget `wall_s` is held to.
    budget_s: f64,
}

#[derive(Serialize)]
struct Baseline {
    /// What produced this file.
    tool: String,
    /// Scenario results, in suite order.
    scenarios: Vec<ScenarioPerf>,
    /// Total wall seconds across the suite (best-of-RUNS per scenario).
    total_wall_s: f64,
    /// Suite-wide events per wall second.
    total_events_per_sec: f64,
    /// Fault-hook cost on the fault-free hot path.
    chaos_overhead: ChaosOverhead,
    /// Invariant-audit cost on the clean hot path.
    paranoid_overhead: ParanoidOverhead,
    /// Observability-hook cost with a no-op recorder attached.
    obs_overhead: ObsOverhead,
    /// Checkpoint-journal throughput, single vs sharded.
    journal: JournalThroughput,
    /// Whole-workspace simlint token-pass cost and findings.
    simlint: LintPerf,
    /// Full simlint run: token pass plus item/call parse, call-graph
    /// build, nondeterminism taint, and the registry rules.
    simlint_semantic: LintPerf,
}

fn measure(name: &str, scenario: &Scenario) -> ScenarioPerf {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..RUNS {
        let start = Instant::now();
        let o = workload::scenario::run(scenario)
            .unwrap_or_else(|e| panic!("perf scenario {name}: {e}"));
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(o);
    }
    let out = out.expect("RUNS >= 1");
    let events = out.engine.events_processed;
    let perf = ScenarioPerf {
        name: name.to_string(),
        wall_s: best,
        events,
        events_per_sec: events as f64 / best,
        sim_s: out.sim_end.as_secs_f64(),
        wheel_hit_rate: out.engine.wheel_hit_rate(),
        wheel_pushes: out.engine.sched.wheel_pushes,
        heap_pushes: out.engine.sched.heap_pushes,
        migrations: out.engine.sched.migrations,
    };
    println!(
        "{:<38} {:>8.3} s wall  {:>11} events  {:>6.2} M events/s  wheel {:.1}%",
        perf.name,
        perf.wall_s,
        perf.events,
        perf.events_per_sec / 1e6,
        perf.wheel_hit_rate * 100.0
    );
    perf
}

/// Like [`measure`], for a population spec: the many-flow scale-out
/// path (rack-sharded engines, flat flow tables, batched dispatch).
fn measure_population(name: &str, spec: &PopulationSpec) -> ScenarioPerf {
    let mut best: Option<workload::population::PopulationOutcome> = None;
    for _ in 0..RUNS {
        let out = run_population(spec).unwrap_or_else(|e| panic!("perf population {name}: {e}"));
        if best.as_ref().is_none_or(|b| out.wall < b.wall) {
            best = Some(out);
        }
    }
    let out = best.expect("RUNS >= 1");
    let perf = ScenarioPerf {
        name: name.to_string(),
        wall_s: out.wall.as_secs_f64(),
        events: out.events_processed,
        events_per_sec: out.events_per_sec(),
        sim_s: out.sim_end.as_secs_f64(),
        wheel_hit_rate: out.wheel_hit_rate(),
        wheel_pushes: out.wheel_pushes,
        heap_pushes: out.heap_pushes,
        migrations: out.migrations,
    };
    println!(
        "{:<38} {:>8.3} s wall  {:>11} events  {:>6.2} M events/s  wheel {:.1}%",
        perf.name,
        perf.wall_s,
        perf.events,
        perf.events_per_sec / 1e6,
        perf.wheel_hit_rate * 100.0
    );
    perf
}

/// Best-of-N wall time for one scenario (results discarded). When
/// `paranoid` is set the invariant audit runs after each scenario, so
/// its cost lands inside the timed region.
fn best_wall(scenario: &Scenario, runs: u32, paranoid: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        let out =
            workload::scenario::run(scenario).unwrap_or_else(|e| panic!("overhead probe: {e}"));
        if paranoid {
            greenenvy::campaign::invariant::check(&out, scenario.mtu)
                .unwrap_or_else(|v| panic!("overhead probe: {v}"));
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn measure_chaos_overhead() -> ChaosOverhead {
    // The MTU-1500 scenario: the most frames per run in the suite, so
    // the per-frame hook cost is measured with the least wall-clock
    // noise (the MTU-9000 variant now finishes in ~3 ms, where a
    // scheduler hiccup reads as several percent).
    let plain = Scenario::new(1500, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)]);
    let faulted = plain.clone().with_fault(FaultSpec::random_loss(0.0));
    // Interleave the variants so host-frequency drift hits both equally.
    const OVERHEAD_RUNS: u32 = 12;
    let mut plain_wall = f64::INFINITY;
    let mut faulted_wall = f64::INFINITY;
    for _ in 0..OVERHEAD_RUNS {
        plain_wall = plain_wall.min(best_wall(&plain, 1, false));
        faulted_wall = faulted_wall.min(best_wall(&faulted, 1, false));
    }
    let overhead = ChaosOverhead {
        plain_wall_s: plain_wall,
        faulted_wall_s: faulted_wall,
        overhead_frac: (faulted_wall - plain_wall) / plain_wall,
    };
    println!(
        "\nchaos overhead (no-op fault spec on the hot path): \
         plain {:.4} s, faulted {:.4} s, {:+.2}% (budget 2%)",
        overhead.plain_wall_s,
        overhead.faulted_wall_s,
        overhead.overhead_frac * 100.0
    );
    overhead
}

fn measure_paranoid_overhead() -> ParanoidOverhead {
    // The MTU-1500 variant: the audit is a fixed per-cell cost, so it
    // is held to the budget on a cell whose wall time resembles a real
    // campaign cell, not the suite's fastest scenario.
    let scenario = Scenario::new(1500, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)]);
    // Interleave the variants so host-frequency drift hits both equally.
    const OVERHEAD_RUNS: u32 = 12;
    let mut plain_wall = f64::INFINITY;
    let mut paranoid_wall = f64::INFINITY;
    for _ in 0..OVERHEAD_RUNS {
        plain_wall = plain_wall.min(best_wall(&scenario, 1, false));
        paranoid_wall = paranoid_wall.min(best_wall(&scenario, 1, true));
    }
    let overhead = ParanoidOverhead {
        plain_wall_s: plain_wall,
        paranoid_wall_s: paranoid_wall,
        overhead_frac: (paranoid_wall - plain_wall) / plain_wall,
    };
    println!(
        "paranoid overhead (invariant audit on a clean run): \
         plain {:.4} s, paranoid {:.4} s, {:+.2}% (budget 2%)",
        overhead.plain_wall_s,
        overhead.paranoid_wall_s,
        overhead.overhead_frac * 100.0
    );
    overhead
}

fn measure_obs_overhead() -> ObsOverhead {
    // MTU 1500 for the same reason as the chaos probe: most frames,
    // least relative timing noise.
    let plain = Scenario::new(1500, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)]);
    let noop = plain.clone().with_noop_observer();
    // Interleave the variants so host-frequency drift hits both equally.
    const OVERHEAD_RUNS: u32 = 12;
    let mut plain_wall = f64::INFINITY;
    let mut noop_wall = f64::INFINITY;
    for _ in 0..OVERHEAD_RUNS {
        plain_wall = plain_wall.min(best_wall(&plain, 1, false));
        noop_wall = noop_wall.min(best_wall(&noop, 1, false));
    }
    let overhead = ObsOverhead {
        plain_wall_s: plain_wall,
        noop_wall_s: noop_wall,
        overhead_frac: (noop_wall - plain_wall) / plain_wall,
    };
    println!(
        "obs overhead (no-op recorder on every hook): \
         plain {:.4} s, noop {:.4} s, {:+.2}% (budget 2%)",
        overhead.plain_wall_s,
        overhead.noop_wall_s,
        overhead.overhead_frac * 100.0
    );
    overhead
}

/// One synthetic journal cell record; payload shaped like a real one.
fn journal_entries(n: usize) -> Vec<greenenvy::campaign::journal::Entry> {
    use analysis::stats::Summary;
    (0..n)
        .map(|i| {
            let xs = [i as f64, i as f64 * 0.5 + 1.0, i as f64 * 0.25 + 2.0];
            let s = Summary::of(&xs);
            greenenvy::campaign::journal::Entry::Cell(greenenvy::matrix::Cell {
                cca: format!("probe{i}"),
                mtu: 1500 + (i as u32 % 4) * 1500,
                energy_j: s,
                power_w: s,
                fct_s: s,
                retx: s,
                goodput_gbps: s,
            })
        })
        .collect()
}

/// Checkpoint-journal throughput: one fsynced writer taking every
/// record sequentially vs one writer per shard fed concurrently, the
/// way a supervised campaign's worker pool actually appends.
fn measure_journal_throughput() -> JournalThroughput {
    use greenenvy::campaign::journal::{self, Fingerprint, Writer};
    const RECORDS: usize = 2048;
    const SHARDS: usize = 4;
    let fp = Fingerprint::of(&greenenvy::Scale::quick());
    let tmp = std::env::temp_dir().join(format!("greenenvy-journal-perf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap_or_else(|e| panic!("journal probe scratch dir: {e}"));
    let entries = journal_entries(RECORDS);
    let chunk = RECORDS.div_ceil(SHARDS);

    let mut single_wall = f64::INFINITY;
    let mut sharded_wall = f64::INFINITY;
    for _ in 0..RUNS {
        let start = Instant::now();
        let mut w = Writer::create(&tmp.join("single.jsonl"), &fp, &[])
            .unwrap_or_else(|e| panic!("journal probe: {e}"));
        for e in &entries {
            w.append(e).unwrap_or_else(|e| panic!("journal probe: {e}"));
        }
        single_wall = single_wall.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let writers = journal::create_sharded(&tmp.join("sharded"), &fp, &[], SHARDS)
            .unwrap_or_else(|e| panic!("journal probe: {e}"));
        std::thread::scope(|s| {
            for (mut w, slice) in writers.into_iter().zip(entries.chunks(chunk)) {
                s.spawn(move || {
                    for e in slice {
                        w.append(e).unwrap_or_else(|e| panic!("journal probe: {e}"));
                    }
                });
            }
        });
        sharded_wall = sharded_wall.min(start.elapsed().as_secs_f64());
    }
    let _ = std::fs::remove_dir_all(&tmp);

    let jt = JournalThroughput {
        records: RECORDS,
        shards: SHARDS,
        single_rec_per_s: RECORDS as f64 / single_wall,
        sharded_rec_per_s: RECORDS as f64 / sharded_wall,
        speedup: single_wall / sharded_wall,
    };
    println!(
        "journal throughput ({} fsynced records): single {:.0} rec/s, \
         {}-shard {:.0} rec/s ({:.2}x)",
        jt.records, jt.single_rec_per_s, jt.shards, jt.sharded_rec_per_s, jt.speedup
    );
    jt
}

/// The `--check-journal` gate: the sharded journal path must not lose
/// throughput against the sequential single-file writer measured in the
/// same process, nor against the committed baseline (when one exists).
/// Returns the number of violations.
fn check_journal_against(path: &std::path::Path, fresh: &JournalThroughput) -> usize {
    let mut violations = 0;
    let fresh_floor = fresh.single_rec_per_s * (1.0 - CHECK_TOLERANCE);
    println!(
        "\n=== journal check (sharded must hold {}% of single) ===",
        (1.0 - CHECK_TOLERANCE) * 100.0
    );
    if fresh.sharded_rec_per_s < fresh_floor {
        violations += 1;
        eprintln!(
            "sharded {:.0} rec/s REGRESSED below fresh single {:.0} rec/s floor {:.0}",
            fresh.sharded_rec_per_s, fresh.single_rec_per_s, fresh_floor
        );
    } else {
        println!(
            "vs fresh single:    {:.0} >= {:.0} rec/s  ok",
            fresh.sharded_rec_per_s, fresh_floor
        );
    }
    let committed = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| serde_json::from_str::<serde_json::Value>(&t).ok())
        .and_then(|v| v["journal"]["single_rec_per_s"].as_f64());
    match committed {
        Some(base) => {
            let floor = base * (1.0 - CHECK_TOLERANCE);
            if fresh.sharded_rec_per_s < floor {
                violations += 1;
                eprintln!(
                    "sharded {:.0} rec/s REGRESSED below committed single {base:.0} floor {floor:.0}",
                    fresh.sharded_rec_per_s
                );
            } else {
                println!(
                    "vs committed single: {:.0} >= {:.0} rec/s  ok",
                    fresh.sharded_rec_per_s, floor
                );
            }
        }
        None => println!("(no journal entry in committed baseline — skipped)"),
    }
    violations
}

/// Time a whole-workspace lint pass (best of RUNS), report findings.
fn measure_lint(
    label: &str,
    budget_s: f64,
    repo_root: &std::path::Path,
    pass: fn(&std::path::Path) -> Result<simlint::Report, String>,
) -> LintPerf {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..RUNS {
        let start = Instant::now();
        let r = pass(repo_root).unwrap_or_else(|e| panic!("{label} pass: {e}"));
        best = best.min(start.elapsed().as_secs_f64());
        report = Some(r);
    }
    let report = report.expect("RUNS >= 1");
    let perf = LintPerf {
        files: report.files_scanned,
        findings: report.count_gating(),
        suppressed: report.count_suppressed(),
        wall_s: best,
        budget_s,
    };
    println!(
        "\n{label}: {} files, {} findings, {} suppressed, {:.4} s wall (budget {:.1} s)",
        perf.files, perf.findings, perf.suppressed, perf.wall_s, perf.budget_s
    );
    if perf.wall_s > perf.budget_s {
        eprintln!(
            "warning: {label} wall time {:.3} s exceeds the {:.1} s budget",
            perf.wall_s, perf.budget_s
        );
    }
    perf
}

/// Re-measure the scenario suite and compare against the committed
/// baseline. Returns the number of regressions beyond the tolerance.
fn check_against(path: &std::path::Path, fresh: &[ScenarioPerf]) -> usize {
    let committed: serde_json::Value = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display())),
        Err(e) => panic!("cannot read {}: {e}", path.display()),
    };
    let empty = Vec::new();
    let scenarios = committed["scenarios"].as_array().unwrap_or(&empty);
    let mut regressions = 0;
    println!(
        "\n=== perf check (fail below {}% of committed) ===",
        (1.0 - CHECK_TOLERANCE) * 100.0
    );
    for perf in fresh {
        let Some(base) = scenarios
            .iter()
            .find(|s| s["name"].as_str() == Some(perf.name.as_str()))
            .and_then(|s| s["events_per_sec"].as_f64())
        else {
            // A scenario the committed file predates: nothing to hold
            // it to yet; the next regeneration will start tracking it.
            println!("{:<38} (not in committed baseline — skipped)", perf.name);
            continue;
        };
        let floor = base * (1.0 - CHECK_TOLERANCE);
        let verdict = if perf.events_per_sec >= floor {
            "ok"
        } else {
            regressions += 1;
            "REGRESSED"
        };
        println!(
            "{:<38} committed {:>6.2} M  fresh {:>6.2} M  ({:+.1}%)  {}",
            perf.name,
            base / 1e6,
            perf.events_per_sec / 1e6,
            (perf.events_per_sec / base - 1.0) * 100.0,
            verdict
        );
    }
    regressions
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let check_journal = std::env::args().any(|a| a == "--check-journal");
    if check_journal {
        // Journal-only mode: the supervision drill's throughput gate.
        let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let fresh = measure_journal_throughput();
        let violations = check_journal_against(&repo_root.join("BENCH_netsim.json"), &fresh);
        if violations > 0 {
            eprintln!("journal check: {violations} violation(s)");
            std::process::exit(exitcode::FAILURE);
        }
        println!("journal check: sharded throughput within tolerance");
        return;
    }
    println!("=== simulator perf baseline ({RUNS} runs per scenario, best reported) ===\n");
    let suite = [
        (
            "bulk_cubic_50MB_mtu9000",
            Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)]),
        ),
        (
            "bulk_cubic_50MB_mtu1500",
            Scenario::new(1500, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)]),
        ),
        (
            "two_flow_cubic_reno_40MB_mtu3000",
            Scenario::new(
                3000,
                vec![
                    FlowSpec::bulk(CcaKind::Cubic, 40 * MB),
                    FlowSpec::bulk(CcaKind::Reno, 40 * MB),
                ],
            )
            .with_seed(7),
        ),
        (
            "bulk_dctcp_50MB_mtu9000",
            Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Dctcp, 50 * MB)]),
        ),
    ];

    let mut scenarios: Vec<ScenarioPerf> = suite
        .iter()
        .map(|(name, scenario)| measure(name, scenario))
        .collect();
    // The many-flow scale-out scenario: 11,000 concurrent flows through
    // the flat-flow-table + batched-dispatch path.
    scenarios.push(measure_population(
        "bulk_10k_flows",
        &PopulationSpec::bulk_10k_flows(),
    ));

    // Anchor at the repo root (two levels up from this crate) for the
    // lint pass, the tracked output file, and the --check reference.
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if check {
        let regressions = check_against(&repo_root.join("BENCH_netsim.json"), &scenarios);
        if regressions > 0 {
            eprintln!(
                "perf check: {regressions} scenario(s) regressed more than {:.0}%",
                CHECK_TOLERANCE * 100.0
            );
            std::process::exit(exitcode::FAILURE);
        }
        println!("perf check: all scenarios within tolerance");
        return;
    }

    let total_wall_s: f64 = scenarios.iter().map(|s| s.wall_s).sum();
    let total_events: u64 = scenarios.iter().map(|s| s.events).sum();
    let baseline = Baseline {
        tool: "cargo run --release -p bench --bin perf_baseline".to_string(),
        total_wall_s,
        total_events_per_sec: total_events as f64 / total_wall_s,
        scenarios,
        chaos_overhead: measure_chaos_overhead(),
        paranoid_overhead: measure_paranoid_overhead(),
        obs_overhead: measure_obs_overhead(),
        journal: measure_journal_throughput(),
        simlint: measure_lint(
            "simlint",
            2.0,
            &repo_root,
            simlint::lint_workspace_tokens_with_config_file,
        ),
        simlint_semantic: measure_lint(
            "simlint_semantic",
            5.0,
            &repo_root,
            simlint::lint_workspace_with_config_file,
        ),
    };
    println!(
        "\ntotal: {:.3} s wall, {:.2} M events/s",
        baseline.total_wall_s,
        baseline.total_events_per_sec / 1e6
    );

    // Not the cwd: the tracked file is refreshed wherever the bin runs from.
    let path = repo_root.join("BENCH_netsim.json");
    match greenenvy::campaign::persist::save_json_atomic(&path, &baseline) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exitcode::FAILURE);
        }
    }
}
