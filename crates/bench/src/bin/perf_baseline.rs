//! Tracked simulator performance baseline.
//!
//! Runs a fixed scenario suite with wall-clock timing and writes
//! `BENCH_netsim.json` at the repo root: events/second through the event
//! engine, per-scenario wall seconds, and the scheduler's wheel-vs-heap
//! hit rate. Commit the refreshed file when engine performance changes so
//! regressions show up in review rather than in campaign runtimes.
//!
//! Usage: `cargo run --release -p bench --bin perf_baseline`

use cca::CcaKind;
use netsim::units::MB;
use serde::Serialize;
use std::time::Instant;
use workload::prelude::*;

/// Timing runs per scenario; the minimum is reported (least scheduler
/// noise from the host).
const RUNS: u32 = 3;

#[derive(Serialize)]
struct ScenarioPerf {
    name: String,
    /// Best-of-RUNS wall-clock seconds.
    wall_s: f64,
    /// Events through the engine in one run.
    events: u64,
    /// Events per wall second (events / wall_s).
    events_per_sec: f64,
    /// Simulated seconds covered by one run.
    sim_s: f64,
    /// Fraction of scheduler pushes served by the O(1) wheel path.
    wheel_hit_rate: f64,
    /// Scheduler pushes that landed in the wheel.
    wheel_pushes: u64,
    /// Scheduler pushes that overflowed to the far-future heap.
    heap_pushes: u64,
    /// Heap entries later migrated into the wheel.
    migrations: u64,
}

#[derive(Serialize)]
struct Baseline {
    /// What produced this file.
    tool: String,
    /// Scenario results, in suite order.
    scenarios: Vec<ScenarioPerf>,
    /// Total wall seconds across the suite (best-of-RUNS per scenario).
    total_wall_s: f64,
    /// Suite-wide events per wall second.
    total_events_per_sec: f64,
}

fn measure(name: &str, scenario: &Scenario) -> ScenarioPerf {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..RUNS {
        let start = Instant::now();
        let o = workload::scenario::run(scenario)
            .unwrap_or_else(|e| panic!("perf scenario {name}: {e}"));
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(o);
    }
    let out = out.expect("RUNS >= 1");
    let events = out.engine.events_processed;
    let perf = ScenarioPerf {
        name: name.to_string(),
        wall_s: best,
        events,
        events_per_sec: events as f64 / best,
        sim_s: out.sim_end.as_secs_f64(),
        wheel_hit_rate: out.engine.wheel_hit_rate(),
        wheel_pushes: out.engine.sched.wheel_pushes,
        heap_pushes: out.engine.sched.heap_pushes,
        migrations: out.engine.sched.migrations,
    };
    println!(
        "{:<38} {:>8.3} s wall  {:>11} events  {:>6.2} M events/s  wheel {:.1}%",
        perf.name,
        perf.wall_s,
        perf.events,
        perf.events_per_sec / 1e6,
        perf.wheel_hit_rate * 100.0
    );
    perf
}

fn main() {
    println!("=== simulator perf baseline ({RUNS} runs per scenario, best reported) ===\n");
    let suite = [
        (
            "bulk_cubic_50MB_mtu9000",
            Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)]),
        ),
        (
            "bulk_cubic_50MB_mtu1500",
            Scenario::new(1500, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)]),
        ),
        (
            "two_flow_cubic_reno_40MB_mtu3000",
            Scenario::new(
                3000,
                vec![
                    FlowSpec::bulk(CcaKind::Cubic, 40 * MB),
                    FlowSpec::bulk(CcaKind::Reno, 40 * MB),
                ],
            )
            .with_seed(7),
        ),
        (
            "bulk_dctcp_50MB_mtu9000",
            Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Dctcp, 50 * MB)]),
        ),
    ];

    let scenarios: Vec<ScenarioPerf> = suite
        .iter()
        .map(|(name, scenario)| measure(name, scenario))
        .collect();

    let total_wall_s: f64 = scenarios.iter().map(|s| s.wall_s).sum();
    let total_events: u64 = scenarios.iter().map(|s| s.events).sum();
    let baseline = Baseline {
        tool: "cargo run --release -p bench --bin perf_baseline".to_string(),
        total_wall_s,
        total_events_per_sec: total_events as f64 / total_wall_s,
        scenarios,
    };
    println!(
        "\ntotal: {:.3} s wall, {:.2} M events/s",
        baseline.total_wall_s,
        baseline.total_events_per_sec / 1e6
    );

    // Anchor at the repo root (two levels up from this crate), not the
    // cwd, so the tracked file is refreshed wherever the bin runs from.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_netsim.json");
    match serde_json::to_string_pretty(&baseline) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: cannot serialize baseline: {e}"),
    }
}
