//! Regenerate Figure 8 from the shared CCA x MTU campaign.
use greenenvy::{fig8, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("Figure 8", &scale);
    let matrix = bench::load_or_run_matrix(scale);
    let result = fig8::from_matrix(matrix);
    println!("{}", fig8::render(&result));
    if let Some(p) = bench::save_json("fig8", &result) {
        println!("json: {}", p.display());
    }
}
