//! Assemble `results/REPORT.md` from whatever figure JSONs exist under
//! `results/` — a machine-regenerated companion to the hand-annotated
//! `EXPERIMENTS.md`.

use greenenvy::exitcode;
use std::fmt::Write as _;
use std::path::Path;

fn load(name: &str) -> Option<serde_json::Value> {
    let body = std::fs::read_to_string(Path::new("results").join(format!("{name}.json"))).ok()?;
    serde_json::from_str(&body).ok()
}

fn main() {
    let mut md = String::from(
        "# Regenerated results\n\n\
         Auto-assembled from `results/*.json`. Regenerate the inputs with\n\
         the `fig1`..`fig8`, `theorem1`, and `extensions` binaries; see\n\
         `EXPERIMENTS.md` for the paper-vs-measured discussion.\n\n",
    );

    if let Some(fig1) = load("fig1") {
        let _ = writeln!(md, "## Figure 1\n");
        let _ = writeln!(md, "| flow-1 share | savings over fair (%) |");
        let _ = writeln!(md, "|---|---|");
        if let Some(points) = fig1["points"].as_array() {
            for p in points {
                let _ = writeln!(
                    md,
                    "| {:.0}% | {:.2} ± {:.2} |",
                    p["fraction"].as_f64().unwrap_or(0.0) * 100.0,
                    p["savings_pct"]["mean"].as_f64().unwrap_or(0.0),
                    p["savings_pct"]["std"].as_f64().unwrap_or(0.0),
                );
            }
        }
        let _ = writeln!(
            md,
            "\npeak savings: {:.1}%\n",
            fig1["peak_savings_pct"].as_f64().unwrap_or(0.0)
        );
    }

    if let Some(fig2) = load("fig2") {
        let _ = writeln!(md, "## Figure 2\n");
        let _ = writeln!(md, "| target (Gb/s) | power (W) | mix (W) |");
        let _ = writeln!(md, "|---|---|---|");
        if let Some(points) = fig2["points"].as_array() {
            for p in points {
                let _ = writeln!(
                    md,
                    "| {:.1} | {:.2} | {:.2} |",
                    p["target_gbps"].as_f64().unwrap_or(0.0),
                    p["power_w"]["mean"].as_f64().unwrap_or(0.0),
                    p["mix_power_w"].as_f64().unwrap_or(0.0),
                );
            }
        }
        md.push('\n');
    }

    if let Some(fig4) = load("fig4") {
        let _ = writeln!(md, "## Figure 4\n");
        let _ = writeln!(md, "| load | savings (%) |");
        let _ = writeln!(md, "|---|---|");
        if let Some(rows) = fig4["rows"].as_array() {
            for r in rows {
                let _ = writeln!(
                    md,
                    "| {:.0}% | {:.2} |",
                    r["load"].as_f64().unwrap_or(0.0) * 100.0,
                    r["savings_pct"]["mean"].as_f64().unwrap_or(0.0),
                );
            }
        }
        md.push('\n');
    }

    for (name, title) in [("fig5", "Figure 5"), ("fig6", "Figure 6")] {
        if let Some(fig) = load(name) {
            let metric = if name == "fig5" {
                "energy_j"
            } else {
                "power_w"
            };
            let unit = if name == "fig5" { "J" } else { "W" };
            let _ = writeln!(md, "## {title}\n");
            let _ = writeln!(md, "| cca | mtu | {metric} ({unit}) |");
            let _ = writeln!(md, "|---|---|---|");
            if let Some(cells) = fig["matrix"]["cells"].as_array() {
                for c in cells {
                    let _ = writeln!(
                        md,
                        "| {} | {} | {:.2} |",
                        c["cca"].as_str().unwrap_or("?"),
                        c["mtu"].as_u64().unwrap_or(0),
                        c[metric]["mean"].as_f64().unwrap_or(0.0),
                    );
                }
            }
            md.push('\n');
        }
    }

    for name in [
        "fig7",
        "fig8",
        "theorem1",
        "ext_multiplexed",
        "ext_srpt",
        "ext_incast",
        "ext_modern",
        "ext_production",
    ] {
        if let Some(v) = load(name) {
            let _ = writeln!(md, "## {name}\n");
            let _ = writeln!(
                md,
                "```json\n{}\n```\n",
                serde_json::to_string_pretty(&summarize(&v)).unwrap_or_default()
            );
        }
    }

    // Atomic write (temp + rename), creating `results/` if missing; a
    // failure names the path and exits nonzero instead of panicking.
    let path = Path::new("results/REPORT.md");
    if let Err(e) = greenenvy::campaign::persist::write_atomic(path, md.as_bytes()) {
        eprintln!("error: {e}");
        std::process::exit(exitcode::FAILURE);
    }
    println!("wrote {} ({} bytes)", path.display(), md.len());
}

/// Keep reports readable: drop bulky embedded matrices from the summary.
fn summarize(v: &serde_json::Value) -> serde_json::Value {
    match v {
        serde_json::Value::Object(map) => {
            let filtered: serde_json::Map<String, serde_json::Value> = map
                .iter()
                .filter(|(k, _)| k.as_str() != "matrix" && k.as_str() != "points")
                .map(|(k, val)| (k.clone(), summarize(val)))
                .collect();
            serde_json::Value::Object(filtered)
        }
        serde_json::Value::Array(items) if items.len() > 12 => {
            serde_json::Value::String(format!("[{} items elided]", items.len()))
        }
        other => other.clone(),
    }
}
