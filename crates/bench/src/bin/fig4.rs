//! Regenerate Figure 4: power vs bitrate under background load, plus the
//! fate of the unfairness savings on loaded hosts.
use greenenvy::{fig4, savings, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("Figure 4", &scale);
    let result = fig4::run(&fig4::Config::at_scale(scale));
    println!("{}", fig4::render(&result));
    // The paper's §4.2 dollar extrapolation, fed with what we measured.
    let measured: Vec<(String, f64)> = result
        .rows
        .iter()
        .map(|r| {
            (
                format!("{:.0}% load", r.load * 100.0),
                (r.savings_pct.mean / 100.0).clamp(0.0, 1.0),
            )
        })
        .collect();
    println!("{}", savings::render(&measured));
    if let Some(p) = bench::save_json("fig4", &result) {
        println!("json: {}", p.display());
    }
}
