//! Regenerate Figure 2: power vs throughput for a CUBIC sender.
use greenenvy::{fig2, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("Figure 2", &scale);
    let result = fig2::run(&fig2::Config::at_scale(scale));
    println!("{}", fig2::render(&result));
    println!(
        "strictly concave (0.3 W tolerance): {}",
        result.is_concave(0.3)
    );
    if let Some(p) = bench::save_json("fig2", &result) {
        println!("json: {}", p.display());
    }
}
