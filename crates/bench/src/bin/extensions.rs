//! Run the §5 future-work extension experiments: flow multiplexing at one
//! sender, SRPT scheduling, and incast.
use greenenvy::{extensions, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("Extensions (paper §5)", &scale);

    let m = extensions::multiplexed::run(&extensions::multiplexed::Config::at_scale(scale));
    println!("{}", extensions::multiplexed::render(&m));
    bench::save_json("ext_multiplexed", &m);

    let s = extensions::srpt::run(&extensions::srpt::Config::at_scale(scale));
    println!("{}", extensions::srpt::render(&s));
    bench::save_json("ext_srpt", &s);

    let i = extensions::incast::run(&extensions::incast::Config::at_scale(scale));
    println!("{}", extensions::incast::render(&i));
    bench::save_json("ext_incast", &i);

    let b = extensions::modern::run(&extensions::modern::Config::at_scale(scale));
    println!("{}", extensions::modern::render(&b));
    bench::save_json("ext_modern", &b);

    let p = extensions::production::run(&extensions::production::Config::at_scale(scale));
    println!("{}", extensions::production::render(&p));
    bench::save_json("ext_production", &p);
}
