//! Diagnostic: one-screen behaviour table of every CCA.
//!
//! Usage: `cca_table [bytes] [mtu]` (defaults: 500 MB at MTU 9000).
use cca::CcaKind;
use workload::prelude::*;

fn main() {
    let bytes: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000_000);
    let mtu: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9000);
    let mut t = analysis::table::Table::new([
        "cca",
        "fct (s)",
        "goodput (Gbps)",
        "power (W)",
        "energy (J)",
        "retx",
        "rtos",
        "drops",
    ]);
    for kind in CcaKind::ALL {
        let s = Scenario::new(mtu, vec![FlowSpec::bulk(kind, bytes)]);
        match workload::scenario::run(&s) {
            Ok(out) => {
                let r = &out.reports[0];
                t.row([
                    kind.name().to_string(),
                    format!("{:.3}", r.fct.as_secs_f64()),
                    format!("{:.3}", r.mean_goodput.gbps()),
                    format!("{:.2}", out.average_sender_power_w()),
                    format!("{:.1}", out.sender_energy_j),
                    r.retransmits.to_string(),
                    r.rtos.to_string(),
                    out.dropped_pkts.to_string(),
                ]);
            }
            Err(e) => {
                t.row([
                    kind.name().to_string(),
                    format!("FAILED: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
            }
        }
    }
    println!("{bytes} bytes at MTU {mtu}\n{t}");
}
