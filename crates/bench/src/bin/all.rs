//! Regenerate every figure and table of the paper in one invocation.
//!
//! `GREENENVY_SCALE=paper|standard|quick cargo run --release -p bench --bin all`
use greenenvy::{fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, savings, theorem, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("All figures", &scale);

    let r1 = fig1::run(&fig1::Config::at_scale(scale));
    println!("{}", fig1::render(&r1));
    bench::save_json("fig1", &r1);

    let r2 = fig2::run(&fig2::Config::at_scale(scale));
    println!("{}", fig2::render(&r2));
    bench::save_json("fig2", &r2);

    let r3 = fig3::run(&fig3::Config::at_scale(scale));
    println!("{}", fig3::render(&r3));
    bench::save_json("fig3", &r3);

    let r4 = fig4::run(&fig4::Config::at_scale(scale));
    println!("{}", fig4::render(&r4));
    bench::save_json("fig4", &r4);
    let measured: Vec<(String, f64)> = r4
        .rows
        .iter()
        .map(|r| {
            (
                format!("{:.0}% load", r.load * 100.0),
                (r.savings_pct.mean / 100.0).clamp(0.0, 1.0),
            )
        })
        .collect();
    println!("{}", savings::render(&measured));

    // One campaign, four projections — exactly as in the paper.
    let matrix = bench::load_or_run_matrix(scale);
    let r5 = fig5::from_matrix(matrix.clone());
    println!("{}", fig5::render(&r5));
    bench::save_json("fig5", &r5);
    let r6 = fig6::from_matrix(matrix.clone());
    println!("{}", fig6::render(&r6));
    bench::save_json("fig6", &r6);
    let r7 = fig7::from_matrix(matrix.clone());
    println!("{}", fig7::render(&r7));
    bench::save_json("fig7", &r7);
    let r8 = fig8::from_matrix(matrix);
    println!("{}", fig8::render(&r8));
    bench::save_json("fig8", &r8);

    let rt = theorem::run(10_000);
    println!("{}", theorem::render(&rt));
    bench::save_json("theorem1", &rt);
}
