//! Regenerate Figure 7 from the shared CCA x MTU campaign.
use greenenvy::{fig7, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("Figure 7", &scale);
    let matrix = bench::load_or_run_matrix(scale);
    let result = fig7::from_matrix(matrix);
    println!("{}", fig7::render(&result));
    if let Some(p) = bench::save_json("fig7", &result) {
        println!("json: {}", p.display());
    }
}
