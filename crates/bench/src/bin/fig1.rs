//! Regenerate Figure 1: energy savings vs bandwidth allocated to flow #1.
use greenenvy::{fig1, Scale};

fn main() {
    let scale = Scale::from_env();
    bench::announce("Figure 1", &scale);
    let result = fig1::run(&fig1::Config::at_scale(scale));
    println!("{}", fig1::render(&result));
    if let Some(p) = bench::save_json("fig1", &result) {
        println!("json: {}", p.display());
    }
}
