//! Population-scale CCA-mix experiment: 10,000 CUBIC flows vs 1,000 BBR
//! flows (the content-provider mix ratio), run through the rack-sharded
//! population engine.
//!
//! The paper measures "unfair is greener" on a handful of flows; this
//! binary asks the deployment-scale version of the question: when the
//! two algorithm populations share racks, how is goodput split between
//! them (Jain index, per-CCA means) and what does the energy bill per
//! delivered gigabyte look like?
//!
//! `GREENENVY_SCALE=paper|standard|quick|tiny cargo run --release -p
//! bench --bin population` — paper/standard run the full 11,000-flow
//! `bulk_10k_flows` population; quick shrinks it 10x, tiny 100x. The
//! typed result lands in `results/population_mix_<scale>.json`.

use greenenvy::Scale;
use serde::Serialize;
use workload::prelude::*;

#[derive(Serialize)]
struct CcaRow {
    cca: String,
    flows: usize,
    completed: usize,
    mean_goodput_gbps: f64,
    mean_fct_s: f64,
    retransmits: u64,
}

#[derive(Serialize)]
struct PopulationMix {
    scale: String,
    total_flows: usize,
    racks: usize,
    events_processed: u64,
    events_per_sec: f64,
    sim_end_s: f64,
    jain_fairness: f64,
    /// CUBIC mean goodput over BBR mean goodput: the mix's imbalance in
    /// one number (1.0 = perfectly fair split).
    goodput_ratio_cubic_over_bbr: f64,
    sender_energy_j: f64,
    receiver_energy_j: f64,
    /// Total sender+receiver energy per delivered application gigabyte.
    joules_per_gb: f64,
    rows: Vec<CcaRow>,
}

fn spec_at(scale: &Scale) -> PopulationSpec {
    match scale.name {
        "tiny" => PopulationSpec::bulk_10k_flows_tiny(),
        // 10x down: same mix, same per-flow size, fewer racks.
        "quick" => PopulationSpec::new(1_100, PopulationSpec::bulk_10k_flows().mix)
            .with_grid(4, 10)
            .with_bytes_per_flow(1_000_000)
            .with_seed(6),
        _ => PopulationSpec::bulk_10k_flows(),
    }
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "=== population mix (10 CUBIC : 1 BBR) | scale: {} ===\n",
        scale.name
    );
    let spec = spec_at(&scale);
    let out = run_population(&spec).unwrap_or_else(|e| panic!("population run: {e}"));

    let mut rows = Vec::new();
    for (cca, mean_gbps) in out.goodput_by_cca() {
        let flows: Vec<_> = out.reports.iter().filter(|r| r.cca == cca).collect();
        let completed = flows.iter().filter(|r| r.outcome.is_completed()).count();
        let mean_fct_s =
            flows.iter().map(|r| r.fct.as_secs_f64()).sum::<f64>() / flows.len().max(1) as f64;
        rows.push(CcaRow {
            cca: format!("{cca:?}"),
            flows: flows.len(),
            completed,
            mean_goodput_gbps: mean_gbps,
            mean_fct_s,
            retransmits: flows.iter().map(|r| r.retransmits).sum(),
        });
    }
    let gbps = |name: &str| {
        rows.iter()
            .find(|r| r.cca == name)
            .map(|r| r.mean_goodput_gbps)
    };
    let ratio = match (gbps("Cubic"), gbps("Bbr")) {
        (Some(c), Some(b)) if b > 0.0 => c / b,
        _ => f64::NAN,
    };
    let delivered_gb: f64 = out
        .reports
        .iter()
        .map(|r| r.bytes_acked as f64)
        .sum::<f64>()
        / 1e9;
    let result = PopulationMix {
        scale: scale.name.to_string(),
        total_flows: spec.total_flows,
        racks: spec.racks,
        events_processed: out.events_processed,
        events_per_sec: out.events_per_sec(),
        sim_end_s: out.sim_end.as_secs_f64(),
        jain_fairness: out.jain_fairness(),
        goodput_ratio_cubic_over_bbr: ratio,
        sender_energy_j: out.sender_energy_j,
        receiver_energy_j: out.receiver_energy_j,
        joules_per_gb: if delivered_gb > 0.0 {
            (out.sender_energy_j + out.receiver_energy_j) / delivered_gb
        } else {
            f64::NAN
        },
        rows,
    };

    for row in &result.rows {
        println!(
            "{:<8} flows={:<6} completed={:<6} goodput={:.3} Gb/s  fct={:.3} s  retx={}",
            row.cca,
            row.flows,
            row.completed,
            row.mean_goodput_gbps,
            row.mean_fct_s,
            row.retransmits
        );
    }
    println!(
        "\njain={:.4}  cubic/bbr goodput ratio={:.3}  energy: tx {:.1} J rx {:.1} J  {:.2} J/GB",
        result.jain_fairness,
        result.goodput_ratio_cubic_over_bbr,
        result.sender_energy_j,
        result.receiver_energy_j,
        result.joules_per_gb
    );
    println!(
        "engine: {} events, {:.2} M events/s, sim {:.3} s",
        result.events_processed,
        result.events_per_sec / 1e6,
        result.sim_end_s
    );
    if let Some(path) = bench::save_json(&format!("population_mix_{}", scale.name), &result) {
        println!("wrote {}", path.display());
    }
}
