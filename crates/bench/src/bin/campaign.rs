//! Durable, supervised CCA × MTU campaign runner.
//!
//! Runs the Figures 5-8 measurement campaign with the durability layer
//! switched on: fsynced per-cell checkpoint journaling (single-file or
//! sharded per worker), supervised retry with exponential backoff,
//! poison-cell quarantine, graceful SIGINT/SIGTERM shutdown, and
//! optional per-cell deadlines and paranoid-mode physics audits.
//!
//! ```text
//! campaign [--resume] [--paranoid] [--deadline <secs>]
//!          [--threads <n>] [--journal <path> | --journal-dir <dir>]
//!          [--max-attempts <n>] [--backoff <n>]
//!          [--cells-out <path>] [--trace-out <dir>]
//! ```
//!
//! * `--resume` — reuse journaled cells; only missing/failed ones run.
//! * `--paranoid` — audit every repetition against the simulator's
//!   conservation laws (energy floor, frame accounting, byte bounds,
//!   monotone clocks).
//! * `--deadline` — wall-clock budget per cell, in seconds; a cell that
//!   blows it fails (and re-enters the retry schedule) instead of
//!   hanging the campaign.
//! * `--threads` — worker count (default: all cores).
//! * `--journal` — single-file journal path (default:
//!   `results/campaign_<scale>.jsonl`).
//! * `--journal-dir` — sharded journal directory (one fsynced JSONL per
//!   worker plus `quarantine.jsonl`); overrides `--journal`.
//! * `--max-attempts` — retry budget per cell per campaign life
//!   (default 2: the classic one-salted-retry).
//! * `--backoff` — exponential backoff base in claim counts (default 0:
//!   immediate re-eligibility).
//! * `--cells-out` — additionally write a cells-only projection of the
//!   matrix (schema, sizes, seeds, cells — no failure records) to this
//!   exact path; used by drills that compare runs whose *failure
//!   bookkeeping* legitimately differs (attempt counters reset per
//!   life) but whose measured cells must be byte-identical.
//! * `--trace-out` — persist per-repetition observability artifacts
//!   plus the supervisor's Prometheus snapshot into the directory.
//!
//! `GREENENVY_SCALE=paper|standard|quick|tiny` picks the workload.
//! `GREENENVY_POISON=<cca>@<mtu>` makes that cell panic on every
//! attempt — the supervision drill's fault injection.
//!
//! Exit status: 0 — complete matrix; 3 — finished with failed cells
//! (no quarantine record, e.g. journal-free run); 4 — finished with
//! quarantined poison cells (matrix partial but supervised: see
//! `quarantine.jsonl`); 5 — degraded (journal I/O died mid-run; results
//! are valid but no longer crash-durable); 130 — cancelled by a signal
//! (journal intact, resume to continue); 1 — campaign machinery failed
//! (e.g. journal cannot be created); 2 — usage error.

use greenenvy::campaign::{self, CampaignOptions};
use greenenvy::exitcode;
use greenenvy::matrix::{run_cell_with, Cell, CellPolicy};
use greenenvy::Scale;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--resume] [--paranoid] [--deadline <secs>] \
         [--threads <n>] [--journal <path> | --journal-dir <dir>] \
         [--max-attempts <n>] [--backoff <n>] [--cells-out <path>] \
         [--trace-out <dir>]"
    );
    std::process::exit(exitcode::USAGE);
}

fn parse_arg<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let Some(raw) = args.next() else {
        eprintln!("error: {flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid value {raw:?} for {flag}");
        usage();
    })
}

/// `GREENENVY_POISON=<cca>@<mtu>` — the injected always-panicking cell.
fn poison_from_env() -> Option<(cca::CcaKind, u32)> {
    let spec = std::env::var("GREENENVY_POISON").ok()?;
    let (name, mtu) = spec.split_once('@')?;
    let kind = cca::CcaKind::from_name(name)?;
    let mtu = mtu.parse().ok()?;
    Some((kind, mtu))
}

/// The matrix minus its failure bookkeeping: what two supervised runs
/// must agree on byte-for-byte even when their retry histories differ.
#[derive(Serialize)]
struct CellsProjection {
    schema_version: u32,
    transfer_bytes: u64,
    repetitions: usize,
    seeds: Vec<u64>,
    cells: Vec<Cell>,
}

fn main() {
    let scale = Scale::from_env();
    let mut opts = CampaignOptions {
        cancel: campaign::install_signal_handlers(),
        ..Default::default()
    };
    let mut journal: Option<PathBuf> = None;
    let mut cells_out: Option<PathBuf> = None;

    let mut args = std::env::args();
    args.next(); // program name
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--resume" => opts.resume = true,
            "--paranoid" => opts.paranoid = true,
            "--deadline" => {
                opts.deadline = Some(Duration::from_secs_f64(parse_arg(&mut args, "--deadline")))
            }
            "--threads" => opts.threads = parse_arg(&mut args, "--threads"),
            "--journal" => {
                journal = Some(PathBuf::from(parse_arg::<String>(&mut args, "--journal")))
            }
            "--journal-dir" => {
                opts.journal_dir = Some(PathBuf::from(parse_arg::<String>(
                    &mut args,
                    "--journal-dir",
                )))
            }
            "--max-attempts" => {
                opts.retry.max_attempts = parse_arg::<u32>(&mut args, "--max-attempts").max(1)
            }
            "--backoff" => opts.retry.backoff_base = parse_arg(&mut args, "--backoff"),
            "--cells-out" => {
                cells_out = Some(PathBuf::from(parse_arg::<String>(&mut args, "--cells-out")))
            }
            "--trace-out" => {
                opts.trace_out = Some(PathBuf::from(parse_arg::<String>(&mut args, "--trace-out")))
            }
            _ => {
                eprintln!("error: unknown flag {arg:?}");
                usage();
            }
        }
    }
    if opts.journal_dir.is_none() {
        opts.journal = Some(journal.unwrap_or_else(|| {
            PathBuf::from("results").join(format!("campaign_{}.jsonl", scale.name))
        }));
    }

    bench::announce("Durable campaign", &scale);
    println!(
        "journal: {} | resume: {} | paranoid: {} | deadline: {} | threads: {} | \
         retry: {} | trace-out: {}\n",
        opts.journal_dir
            .as_deref()
            .or(opts.journal.as_deref())
            .unwrap_or(std::path::Path::new("-"))
            .display(),
        opts.resume,
        opts.paranoid,
        opts.deadline
            .map_or("none".to_string(), |d| format!("{}s/cell", d.as_secs_f64())),
        opts.threads,
        opts.retry.spec(),
        opts.trace_out
            .as_deref()
            .map_or("off".to_string(), |p| p.display().to_string()),
    );

    let poison = poison_from_env();
    if let Some((cca, mtu)) = poison {
        println!(
            "poison: {} @ mtu {mtu} will panic on every attempt (GREENENVY_POISON)\n",
            cca.name()
        );
    }

    let cell_policy = CellPolicy {
        wall_deadline: opts.deadline,
        paranoid: opts.paranoid,
        trace_out: opts.trace_out.clone(),
    };
    let trace_out = opts.trace_out.clone();
    let report =
        match campaign::run_campaign_with_runner(scale, opts, move |cca, mtu, bytes, seeds| {
            if poison == Some((cca, mtu)) {
                panic!(
                    "injected poison cell {} @ mtu {mtu} (GREENENVY_POISON)",
                    cca.name()
                );
            }
            run_cell_with(cca, mtu, bytes, seeds, cell_policy.clone())
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(exitcode::FAILURE);
            }
        };

    // The matrix artifact is emitted even when partial: resumed runs
    // overwrite it, and the figure binaries' cache check refuses to
    // reuse an incomplete file.
    if let Some(p) = bench::save_json(&format!("matrix_{}", scale.name), &report.matrix) {
        println!("matrix: {}", p.display());
    }
    if let Some(path) = &cells_out {
        let projection = CellsProjection {
            schema_version: report.matrix.schema_version,
            transfer_bytes: report.matrix.transfer_bytes,
            repetitions: report.matrix.repetitions,
            seeds: report.matrix.seeds.clone(),
            cells: report.matrix.cells.clone(),
        };
        match campaign::save_json_atomic(path, &projection) {
            Ok(()) => println!("cells: {}", path.display()),
            Err(e) => eprintln!("warning: --cells-out failed: {e}"),
        }
    }
    if let Some(dir) = &trace_out {
        let prom = report.supervision.metrics.prometheus_text();
        let path = dir.join("campaign_supervisor.prom");
        if let Err(e) = campaign::write_atomic(&path, prom.as_bytes()) {
            eprintln!("warning: supervisor metrics persist failed: {e}");
        } else {
            println!("supervisor metrics: {}", path.display());
        }
    }
    println!(
        "cells: {} reused, {} executed, {} skipped, {} failed | retries: {} | quarantined: {}",
        report.reused,
        report.executed,
        report.skipped,
        report.matrix.failed.len(),
        report.supervision.retries,
        report.supervision.quarantined.len(),
    );
    for q in &report.supervision.quarantined {
        eprintln!(
            "quarantined: {} @ mtu {} after attempt {}: {}",
            q.cca,
            q.mtu,
            q.last_attempt(),
            q.attempts.last().map_or("", |a| a.error.as_str()),
        );
    }
    for f in &report.matrix.failed {
        eprintln!(
            "failed: {} @ mtu {} ({} attempts): {} / last: {}",
            f.cca, f.mtu, f.attempts, f.error, f.retry_error
        );
    }

    if let Some(reason) = &report.supervision.degraded {
        eprintln!(
            "DEGRADED: {reason}\nresults above are valid but NOT crash-durable — \
             re-run with a healthy journal before trusting --resume"
        );
        std::process::exit(exitcode::DEGRADED);
    }
    if report.cancelled {
        println!("cancelled — journal is intact; rerun with --resume to continue");
        std::process::exit(exitcode::INTERRUPTED);
    }
    if !report.matrix.is_complete() {
        if !report.supervision.quarantined.is_empty() {
            println!(
                "complete minus {} quarantined poison cell(s) — see quarantine.jsonl",
                report.supervision.quarantined.len()
            );
            std::process::exit(exitcode::QUARANTINED);
        }
        std::process::exit(exitcode::INCOMPLETE);
    }
}
