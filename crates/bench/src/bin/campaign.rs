//! Durable CCA × MTU campaign runner.
//!
//! Runs the Figures 5-8 measurement campaign with the durability layer
//! switched on: an fsynced per-cell checkpoint journal, graceful
//! SIGINT/SIGTERM shutdown (finish the in-flight cells, keep the
//! journal, emit a partial matrix), and optional per-cell deadlines and
//! paranoid-mode physics audits.
//!
//! ```text
//! campaign [--resume] [--paranoid] [--deadline <secs>]
//!          [--threads <n>] [--journal <path>] [--trace-out <dir>]
//! ```
//!
//! * `--resume` — reuse journaled cells; only missing/failed ones run.
//! * `--paranoid` — audit every repetition against the simulator's
//!   conservation laws (energy floor, frame accounting, byte bounds,
//!   monotone clocks).
//! * `--deadline` — wall-clock budget per cell, in seconds; a cell that
//!   blows it fails (and is retried) instead of hanging the campaign.
//! * `--threads` — worker count (default: all cores).
//! * `--journal` — journal path (default: `results/campaign_<scale>.jsonl`).
//! * `--trace-out` — persist per-repetition observability artifacts
//!   (Perfetto trace + Prometheus snapshot; flight-ring dumps on
//!   failure) into the given directory.
//!
//! `GREENENVY_SCALE=paper|standard|quick|tiny` picks the workload.
//!
//! Exit status: 0 — complete matrix; 3 — finished with failed cells;
//! 130 — cancelled by a signal (journal intact, resume to continue);
//! 1 — durability machinery failed (e.g. unwritable journal);
//! 2 — usage error.

use greenenvy::campaign::{self, CampaignOptions};
use greenenvy::Scale;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--resume] [--paranoid] [--deadline <secs>] \
         [--threads <n>] [--journal <path>] [--trace-out <dir>]"
    );
    std::process::exit(2);
}

fn parse_arg<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let Some(raw) = args.next() else {
        eprintln!("error: {flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid value {raw:?} for {flag}");
        usage();
    })
}

fn main() {
    let scale = Scale::from_env();
    let mut opts = CampaignOptions {
        cancel: campaign::install_signal_handlers(),
        ..Default::default()
    };
    let mut journal: Option<PathBuf> = None;

    let mut args = std::env::args();
    args.next(); // program name
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--resume" => opts.resume = true,
            "--paranoid" => opts.paranoid = true,
            "--deadline" => {
                opts.deadline = Some(Duration::from_secs_f64(parse_arg(&mut args, "--deadline")))
            }
            "--threads" => opts.threads = parse_arg(&mut args, "--threads"),
            "--journal" => {
                journal = Some(PathBuf::from(parse_arg::<String>(&mut args, "--journal")))
            }
            "--trace-out" => {
                opts.trace_out = Some(PathBuf::from(parse_arg::<String>(&mut args, "--trace-out")))
            }
            _ => {
                eprintln!("error: unknown flag {arg:?}");
                usage();
            }
        }
    }
    opts.journal = Some(journal.unwrap_or_else(|| {
        PathBuf::from("results").join(format!("campaign_{}.jsonl", scale.name))
    }));

    bench::announce("Durable campaign", &scale);
    println!(
        "journal: {} | resume: {} | paranoid: {} | deadline: {} | threads: {} | trace-out: {}\n",
        opts.journal
            .as_deref()
            .unwrap_or(std::path::Path::new("-"))
            .display(),
        opts.resume,
        opts.paranoid,
        opts.deadline
            .map_or("none".to_string(), |d| format!("{}s/cell", d.as_secs_f64())),
        opts.threads,
        opts.trace_out
            .as_deref()
            .map_or("off".to_string(), |p| p.display().to_string()),
    );

    let report = match campaign::run_campaign(scale, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    // The matrix artifact is emitted even when partial: resumed runs
    // overwrite it, and the figure binaries' cache check refuses to
    // reuse an incomplete file.
    if let Some(p) = bench::save_json(&format!("matrix_{}", scale.name), &report.matrix) {
        println!("matrix: {}", p.display());
    }
    println!(
        "cells: {} reused, {} executed, {} skipped, {} failed",
        report.reused,
        report.executed,
        report.skipped,
        report.matrix.failed.len()
    );
    for f in &report.matrix.failed {
        eprintln!(
            "failed: {} @ mtu {}: {} / retry: {}",
            f.cca, f.mtu, f.error, f.retry_error
        );
    }
    if report.cancelled {
        println!("cancelled — journal is intact; rerun with --resume to continue");
        std::process::exit(130);
    }
    if !report.matrix.is_complete() {
        std::process::exit(3);
    }
}
