//! Verify Theorem 1 numerically: fair allocations maximize power.
use greenenvy::theorem;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let result = theorem::run(trials);
    println!("{}", theorem::render(&result));
    assert_eq!(result.violations, 0, "Theorem 1 violated!");
    if let Some(p) = bench::save_json("theorem1", &result) {
        println!("json: {}", p.display());
    }
}
