//! One Criterion bench per paper figure/table: each runs a miniature but
//! complete instance of the experiment that regenerates that figure, so
//! `cargo bench` both exercises every experiment path end-to-end and
//! tracks the simulator's performance on them over time.
//!
//! (Use the `fig1`..`fig8` binaries for full-scale regeneration; these
//! benches shrink transfers so an iteration takes milliseconds.)

use cca::CcaKind;
use criterion::{criterion_group, criterion_main, Criterion};
use greenenvy::{fig1, fig2, fig3, matrix, theorem};
use netsim::time::SimDuration;
use netsim::units::MB;
use std::hint::black_box;
use workload::prelude::*;

fn bench_fig1_unfairness(c: &mut Criterion) {
    c.bench_function("fig1_unfairness_sweep", |b| {
        b.iter(|| {
            let cfg = fig1::Config {
                per_flow_bytes: 25 * MB,
                mtu: 9000,
                fractions: vec![0.75],
                seeds: vec![1],
                background: StressLoad::IDLE,
            };
            black_box(fig1::run(&cfg).peak_savings_pct)
        })
    });
}

fn bench_fig2_power_curve(c: &mut Criterion) {
    c.bench_function("fig2_power_curve", |b| {
        b.iter(|| {
            let cfg = fig2::Config {
                rates_gbps: vec![2.5, 5.0, 10.0],
                duration_s: 0.02,
                mtu: 9000,
                seeds: vec![1],
                background: StressLoad::IDLE,
            };
            black_box(fig2::run(&cfg).line_rate_w)
        })
    });
}

fn bench_fig3_traces(c: &mut Criterion) {
    c.bench_function("fig3_traces", |b| {
        b.iter(|| {
            let cfg = fig3::Config {
                per_flow_bytes: 25 * MB,
                mtu: 9000,
                bin: SimDuration::from_millis(2),
                seed: 1,
            };
            black_box(fig3::run(&cfg).unfair.energy_j)
        })
    });
}

fn bench_fig4_loaded_savings(c: &mut Criterion) {
    c.bench_function("fig4_loaded_savings", |b| {
        b.iter(|| {
            // One loaded fair-vs-serial comparison (the Fig-4 kernel).
            let cfg = fig1::Config {
                per_flow_bytes: 25 * MB,
                mtu: 9000,
                fractions: vec![],
                seeds: vec![1],
                background: StressLoad::fraction(0.25),
            };
            black_box(fig1::run(&cfg).peak_savings_pct)
        })
    });
}

fn bench_fig5_to_8_campaign_cell(c: &mut Criterion) {
    // Figures 5-8 all project the same campaign; the bench covers one
    // cell of each distinctive kind.
    let mut g = c.benchmark_group("fig5-8_campaign_cells");
    for (cca, mtu) in [
        (CcaKind::Cubic, 9000u32),
        (CcaKind::Cubic, 1500),
        (CcaKind::Bbr, 9000),
        (CcaKind::Baseline, 9000),
        (CcaKind::Dctcp, 9000),
        (CcaKind::Bbr2, 9000),
    ] {
        g.bench_function(format!("{}_mtu{}", cca.name(), mtu), |b| {
            b.iter(|| {
                black_box(
                    matrix::run_cell(cca, mtu, 25 * MB, &[1])
                        .unwrap()
                        .energy_j
                        .mean,
                )
            })
        });
    }
    g.finish();
}

fn bench_theorem1(c: &mut Criterion) {
    c.bench_function("theorem1_verification", |b| {
        b.iter(|| {
            let r = theorem::run(200);
            assert_eq!(r.violations, 0);
            black_box(r.rows.len())
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig1_unfairness,
        bench_fig2_power_curve,
        bench_fig3_traces,
        bench_fig4_loaded_savings,
        bench_fig5_to_8_campaign_cell,
        bench_theorem1,
}
criterion_main!(figures);
