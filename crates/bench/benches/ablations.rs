//! Ablation benches for the design choices `DESIGN.md` calls out: each
//! compares the system with a mechanism enabled vs disabled, reporting
//! the *simulated* outcome difference through Criterion's timing of the
//! full runs (the printed assertions are the scientific content; the
//! timings track the cost of each mechanism).

use cca::CcaKind;
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::prelude::*;
use std::hint::black_box;
use transport::prelude::*;
use workload::prelude::*;

/// Tail-loss probe ablation: without TLP, a lossy transfer pays RTO
/// stalls; with it, recovery is RTT-scale. Assert the effect once, then
/// benchmark both paths.
fn ablation_tlp(c: &mut Criterion) {
    fn run_once(tlp: bool) -> (f64, u64) {
        let mut net = Network::new(5);
        let cfg = DumbbellConfig {
            bottleneck_queue: BottleneckQueue::DropTail {
                capacity_bytes: 30_000,
            },
            ..DumbbellConfig::default()
        };
        let d = Dumbbell::build(&mut net, &cfg);
        let flow = FlowId::from_raw(0);
        // A short transfer whose entire window bursts at once into a
        // 30 KB buffer: the burst's tail — which is also the flow's tail —
        // is guaranteed to drop, with no later data to trigger SACKs.
        // That is precisely the loss TLP exists for.
        let mut scfg = TcpSenderConfig::bulk(flow, d.receiver, 9000, 100_000);
        if !tlp {
            scfg = scfg.without_tlp();
        }
        let cc = CcaKind::Baseline.build(&cca::CcaConfig::new(8960).with_baseline_cwnd(200_000));
        net.attach_agent(d.senders[0], Box::new(TcpSender::new(scfg, cc)));
        net.attach_agent(
            d.receiver,
            Box::new(TcpReceiver::new(AckPolicy::delayed_default())),
        );
        net.run_until(SimTime::from_secs(30));
        let s = net.agent::<TcpSender>(d.senders[0]).unwrap();
        assert!(s.is_complete());
        (s.fct().unwrap().as_secs_f64(), s.stats().rto_count)
    }

    let (fct_with, _) = run_once(true);
    let (fct_without, rtos_without) = run_once(false);
    println!(
        "[ablation:tlp] fct with TLP {fct_with:.3}s vs without {fct_without:.3}s \
         (rtos without: {rtos_without})"
    );
    assert!(
        fct_with < fct_without,
        "TLP must beat RTO-only tail recovery: {fct_with} vs {fct_without}"
    );
    assert!(rtos_without > 0, "the no-TLP run must pay RTOs");

    let mut g = c.benchmark_group("ablation_tlp");
    g.sample_size(10);
    g.bench_function("with_tlp", |b| b.iter(|| black_box(run_once(true))));
    g.bench_function("without_tlp", |b| b.iter(|| black_box(run_once(false))));
    g.finish();
}

/// Host pps-ceiling ablation: the cap is what separates the MTU-1500
/// cluster from the jumbo cluster (paper Fig. 7). With the cap, an
/// MTU-1500 sender cruises *below* the wire rate and never congests;
/// without it, the flow reaches the queue and pays sawtooth losses.
fn ablation_pps_cap(c: &mut Criterion) {
    fn run_once(capped: bool) -> (f64, u64) {
        let mut s = Scenario::new(1500, vec![FlowSpec::bulk(CcaKind::Cubic, 25 * MB)]);
        if !capped {
            s.host_pps_cap = None;
        }
        let out = workload::scenario::run(&s).unwrap();
        (
            out.reports[0].mean_goodput.gbps(),
            out.reports[0].retransmits,
        )
    }
    let (capped, retx_capped) = run_once(true);
    let (uncapped, retx_uncapped) = run_once(false);
    println!(
        "[ablation:pps_cap] MTU-1500 goodput capped {capped:.2} ({retx_capped} retx) \
         vs uncapped {uncapped:.2} ({retx_uncapped} retx)"
    );
    assert!(
        capped < 8.0,
        "the ceiling must keep the flow below the wire rate"
    );
    assert_eq!(retx_capped, 0, "a capped flow never congests the link");
    assert!(
        retx_uncapped > 0,
        "an uncapped MTU-1500 flow reaches the queue and loses"
    );

    let mut g = c.benchmark_group("ablation_pps_cap");
    g.sample_size(10);
    g.bench_function("capped", |b| b.iter(|| black_box(run_once(true).0)));
    g.bench_function("uncapped", |b| b.iter(|| black_box(run_once(false).0)));
    g.finish();
}

/// Bottleneck discipline ablation: DCTCP on its step-marking queue vs
/// forced onto a plain drop-tail (where it behaves like Reno-with-ECN
/// disabled and suffers losses).
fn ablation_ecn_queue(c: &mut Criterion) {
    fn run_once(ecn: bool) -> (u64, u64) {
        let mut net = Network::new(9);
        let queue = if ecn {
            BottleneckQueue::EcnThreshold {
                capacity_bytes: 1_000_000,
                mark_bytes: 100_000,
            }
        } else {
            BottleneckQueue::DropTail {
                capacity_bytes: 1_000_000,
            }
        };
        let cfg = DumbbellConfig {
            bottleneck_queue: queue,
            ..DumbbellConfig::default()
        };
        let d = Dumbbell::build(&mut net, &cfg);
        let flow = FlowId::from_raw(0);
        let scfg = TcpSenderConfig::bulk(flow, d.receiver, 9000, 25 * MB);
        let cc = CcaKind::Dctcp.build(&cca::CcaConfig::new(8960));
        net.attach_agent(d.senders[0], Box::new(TcpSender::new(scfg, cc)));
        net.attach_agent(
            d.receiver,
            Box::new(TcpReceiver::new(AckPolicy::dctcp_default())),
        );
        net.run_until(SimTime::from_secs(30));
        let stats = net.network_stats();
        (stats.marked_pkts, stats.dropped_pkts)
    }
    let (marks_ecn, drops_ecn) = run_once(true);
    let (marks_dt, drops_dt) = run_once(false);
    println!(
        "[ablation:ecn_queue] ECN queue: {marks_ecn} marks/{drops_ecn} drops; \
         drop-tail: {marks_dt} marks/{drops_dt} drops"
    );
    assert!(marks_ecn > 0 && marks_dt == 0);

    let mut g = c.benchmark_group("ablation_ecn_queue");
    g.sample_size(10);
    g.bench_function("ecn_threshold", |b| b.iter(|| black_box(run_once(true))));
    g.bench_function("droptail", |b| b.iter(|| black_box(run_once(false))));
    g.finish();
}

/// Load-coupling ablation: with the coupling removed, the loaded-host
/// savings stay near the idle-host 16% instead of collapsing to ~1%.
fn ablation_load_coupling(c: &mut Criterion) {
    use energy::prelude::*;
    fn savings(coupled: bool, load: f64) -> f64 {
        let mut model = reference_host_model();
        if !coupled {
            model.coupling = LoadCoupling::NONE;
        }
        let ctx = HostContext {
            background_util: load,
            cc_cost_per_ack_j: cc_cost_per_ack_ref_j(),
        };
        let p5 = model.sender_power_at(5.0, 9000, 0.5, ctx);
        let p10 = model.sender_power_at(10.0, 9000, 0.5, ctx);
        let p0 = model.sender_power_at(0.0, 9000, 0.5, ctx);
        let fair = 2.0 * 2.0 * p5;
        let unfair = 2.0 * (p10 + p0);
        (fair - unfair) / fair
    }
    let coupled = savings(true, 0.25);
    let uncoupled = savings(false, 0.25);
    println!(
        "[ablation:coupling] savings at 25% load: coupled {:.2}% vs uncoupled {:.2}%",
        coupled * 100.0,
        uncoupled * 100.0
    );
    assert!(coupled < uncoupled / 3.0);

    let mut g = c.benchmark_group("ablation_load_coupling");
    g.bench_function("coupled", |b| b.iter(|| black_box(savings(true, 0.25))));
    g.bench_function("uncoupled", |b| b.iter(|| black_box(savings(false, 0.25))));
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets =
        ablation_tlp,
        ablation_pps_cap,
        ablation_ecn_queue,
        ablation_load_coupling,
}
criterion_main!(ablations);
