//! Micro-benchmarks of the simulator's hot paths: the event loop, the
//! queue disciplines, the SACK scoreboard, and per-ack CCA processing.

use cca::CcaKind;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::prelude::*;
use std::hint::black_box;
use transport::cc::AckEvent;
use transport::scoreboard::Scoreboard;
use workload::prelude::*;

/// End-to-end simulator throughput: one bulk CUBIC transfer, measured in
/// simulated payload bytes per wall second.
fn bench_simulator_throughput(c: &mut Criterion) {
    let bytes = 50_000_000u64;
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    g.bench_function("bulk_transfer_50MB", |b| {
        b.iter(|| {
            let out = workload::scenario::run(&Scenario::new(
                9000,
                vec![FlowSpec::bulk(CcaKind::Cubic, bytes)],
            ))
            .unwrap();
            black_box(out.sender_energy_j)
        })
    });
    // Worst-case packet rate: the same transfer pushes 6x the packets
    // through the event loop at the smallest MTU.
    g.bench_function("bulk_transfer_50MB_mtu1500", |b| {
        b.iter(|| {
            let out = workload::scenario::run(&Scenario::new(
                1500,
                vec![FlowSpec::bulk(CcaKind::Cubic, bytes)],
            ))
            .unwrap();
            black_box(out.sender_energy_j)
        })
    });
    g.finish();
}

/// The event scheduler in isolation: the hybrid wheel against the plain
/// binary heap it replaced, on the engine's characteristic near-future
/// push/pop stream (and a far-future timer mix for the overflow path).
fn bench_scheduler(c: &mut Criterion) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    const OPS: u64 = 4096;
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(OPS));

    // Near-future churn: every push lands within a few bucket widths of
    // `now`, as TxDone/Arrive events do. Keep ~64 pending.
    g.bench_function("wheel_push_pop_near", |b| {
        b.iter(|| {
            let mut s: netsim::sched::Scheduler<u64> = netsim::sched::Scheduler::new();
            let mut now = SimTime::ZERO;
            for i in 0..64u64 {
                s.push(now + SimDuration::from_nanos(800 + i * 37), i);
            }
            for i in 64..OPS {
                let (at, _) = s.pop().unwrap();
                now = at;
                s.push(now + SimDuration::from_nanos(800 + (i % 97) * 37), i);
            }
            black_box(s.len())
        })
    });
    g.bench_function("heap_push_pop_near", |b| {
        b.iter(|| {
            let mut h: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
            let mut now = SimTime::ZERO;
            for i in 0..64u64 {
                h.push(Reverse((now + SimDuration::from_nanos(800 + i * 37), i)));
            }
            for i in 64..OPS {
                let Reverse((at, _)) = h.pop().unwrap();
                now = at;
                h.push(Reverse((
                    now + SimDuration::from_nanos(800 + (i % 97) * 37),
                    i,
                )));
            }
            black_box(h.len())
        })
    });
    // Packet-sized payloads (a real engine Event embeds a 168-byte
    // Packet): every heap sift copies them up and down the tree, while
    // the wheel appends once and pops in place. Note: in this synthetic
    // loop (hot cache, ~64 pending) the heap still wins; the engine-level
    // A/B — same engine, scheduler swapped — shows the wheel delivering
    // the full end-to-end speedup once real event mixes, larger pending
    // sets, and cold caches are in play. Keep both views honest.
    type FatPayload = [u64; 21];
    g.bench_function("wheel_push_pop_fat", |b| {
        let payload: FatPayload = [7; 21];
        b.iter(|| {
            let mut s: netsim::sched::Scheduler<FatPayload> = netsim::sched::Scheduler::new();
            let mut now = SimTime::ZERO;
            for i in 0..64u64 {
                s.push(now + SimDuration::from_nanos(800 + i * 37), payload);
            }
            for i in 64..OPS {
                let (at, p) = s.pop().unwrap();
                now = at;
                black_box(p[0]);
                s.push(now + SimDuration::from_nanos(800 + (i % 97) * 37), payload);
            }
            black_box(s.len())
        })
    });
    g.bench_function("heap_push_pop_fat", |b| {
        let payload: FatPayload = [7; 21];
        b.iter(|| {
            let mut h: BinaryHeap<Reverse<(SimTime, u64, FatPayload)>> = BinaryHeap::new();
            let mut now = SimTime::ZERO;
            for i in 0..64u64 {
                h.push(Reverse((
                    now + SimDuration::from_nanos(800 + i * 37),
                    i,
                    payload,
                )));
            }
            for i in 64..OPS {
                let Reverse((at, _, p)) = h.pop().unwrap();
                now = at;
                black_box(p[0]);
                h.push(Reverse((
                    now + SimDuration::from_nanos(800 + (i % 97) * 37),
                    i,
                    payload,
                )));
            }
            black_box(h.len())
        })
    });
    // One RTO-scale timer per 16 data events: exercises the overflow
    // heap and wheel migration.
    g.bench_function("wheel_push_pop_mixed", |b| {
        b.iter(|| {
            let mut s: netsim::sched::Scheduler<u64> = netsim::sched::Scheduler::new();
            let mut now = SimTime::ZERO;
            for i in 0..64u64 {
                s.push(now + SimDuration::from_nanos(800 + i * 37), i);
            }
            for i in 64..OPS {
                let (at, _) = s.pop().unwrap();
                now = at;
                let dt = if i % 16 == 0 {
                    SimDuration::from_millis(200)
                } else {
                    SimDuration::from_nanos(800 + (i % 97) * 37)
                };
                s.push(now + dt, i);
            }
            black_box(s.len())
        })
    });
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues");
    let pkt = Packet::data(
        FlowId::from_raw(0),
        NodeId::from_raw(0),
        NodeId::from_raw(1),
        0,
        1460,
        EcnCodepoint::Ect0,
    );
    g.bench_function("droptail_enq_deq", |b| {
        let mut q = DropTailQueue::new(1_000_000);
        let mut pool = FramePool::new();
        b.iter(|| {
            let frame = pool.alloc(black_box(pkt));
            if q.enqueue(frame, &mut pool, SimTime::ZERO) == EnqueueOutcome::Dropped {
                pool.release(frame);
            }
            black_box(q.dequeue(SimTime::ZERO).map(|r| pool.take(r)))
        })
    });
    g.bench_function("ecn_threshold_enq_deq", |b| {
        let mut q = EcnThresholdQueue::new(1_000_000, 30_000);
        let mut pool = FramePool::new();
        b.iter(|| {
            let frame = pool.alloc(black_box(pkt));
            if q.enqueue(frame, &mut pool, SimTime::ZERO) == EnqueueOutcome::Dropped {
                pool.release(frame);
            }
            black_box(q.dequeue(SimTime::ZERO).map(|r| pool.take(r)))
        })
    });
    g.bench_function("red_enq_deq", |b| {
        let mut q = RedQueue::new(1_000_000, 100_000, 500_000, 0.1, 7);
        let mut pool = FramePool::new();
        b.iter(|| {
            let frame = pool.alloc(black_box(pkt));
            if q.enqueue(frame, &mut pool, SimTime::ZERO) == EnqueueOutcome::Dropped {
                pool.release(frame);
            }
            black_box(q.dequeue(SimTime::ZERO).map(|r| pool.take(r)))
        })
    });
    g.finish();
}

fn bench_scoreboard(c: &mut Criterion) {
    c.bench_function("scoreboard_send_ack_cycle", |b| {
        b.iter(|| {
            let mut board = Scoreboard::new(1448);
            let mut seq = 0u64;
            for i in 0..64 {
                board.on_send(seq, 1448, SimTime::from_micros(i), 0, false);
                seq += 1448;
            }
            // Cumulative ack half, SACK a band, ack the rest.
            board.on_ack(seq / 2, std::iter::empty(), SimDuration::from_micros(25));
            board.on_ack(
                seq / 2,
                [(seq / 2 + 4344, seq)].into_iter(),
                SimDuration::from_micros(25),
            );
            let out = board.on_ack(seq, std::iter::empty(), SimDuration::from_micros(25));
            black_box(out.newly_delivered)
        })
    });
}

fn bench_cca_ack_processing(c: &mut Criterion) {
    let mut g = c.benchmark_group("cca_on_ack");
    for kind in CcaKind::ALL {
        g.bench_function(kind.name(), |b| {
            let mut cc = kind.build(&cca::CcaConfig::new(1448));
            let ev = AckEvent {
                now: SimTime::from_millis(3),
                newly_acked_bytes: 2896,
                rtt_sample: Some(SimDuration::from_micros(120)),
                srtt: SimDuration::from_micros(110),
                min_rtt: SimDuration::from_micros(100),
                bytes_in_flight: 100_000,
                delivery_rate: Some(Rate::from_gbps(9.0)),
                app_limited: false,
                ce_marked_bytes: 0,
                ecn_echo: false,
                cum_acked: 1_000_000,
                round: 5,
                in_recovery: false,
                int: netsim::packet::IntRecord {
                    queue_bytes: 20_000,
                    util_x1000: 900,
                    link_mbps: 10_000,
                },
                cwnd_limited: true,
            };
            b.iter(|| {
                cc.on_ack(black_box(&ev));
                black_box(cc.cwnd())
            })
        });
    }
    g.finish();
}

criterion_group!(
    micro,
    bench_simulator_throughput,
    bench_scheduler,
    bench_queues,
    bench_scoreboard,
    bench_cca_ack_processing
);
criterion_main!(micro);
