//! The parking-lot runner: one long flow against per-hop cross traffic.
//!
//! [`netsim::topology::ParkingLot`] builds the classic chain — switches
//! `S0..=Sh`, one "through" flow spanning every bottleneck, one local
//! flow straddling each hop — but until now nothing in the workspace
//! ran transports over it. This runner mirrors the dumbbell runner's
//! conventions (one sender host per flow, per-socket energy accounting,
//! optional throughput traces, fault injection on the **first** chain
//! link — the one every through-path packet crosses) and reports the
//! same [`Measured`] summary the expectations engine consumes.
//!
//! Flow order: flow 0 is the through flow; flow `1 + i` is the local
//! flow over hop `i`.

use crate::expect::Measured;
use cca::{CcaConfig, CcaKind};
use energy::calibration;
use energy::host::HostContext;
use energy::meter::EnergyMeter;
use netsim::engine::{Network, RunOutcome};
use netsim::fault::FaultSpec;
use netsim::ids::FlowId;
use netsim::packet::HEADER_BYTES;
use netsim::time::{SimDuration, SimTime};
use netsim::topology::{BottleneckQueue, ParkingLot, ParkingLotConfig};
use netsim::units::Rate;
use transport::receiver::TcpReceiver;
use transport::sender::{TcpSender, TcpSenderConfig};
use workload::iperf::{FlowReport, FlowSpec};
use workload::scenario::{ScenarioError, BASELINE_CWND_FACTOR};

/// Everything the parking-lot runner needs for one run.
#[derive(Clone, Debug)]
pub struct ParkingRun {
    /// Bottleneck hops (and local flows). Flow specs must number
    /// `hops + 1`: the through flow first, then one local flow per hop.
    pub hops: usize,
    /// MTU in bytes.
    pub mtu: u32,
    /// Chain and edge link rate in Gb/s.
    pub link_gbps: f64,
    /// One-way propagation delay per hop.
    pub hop_delay: SimDuration,
    /// Bottleneck buffer per chain link, in bytes.
    pub buffer_bytes: u64,
    /// The flows: `[through, local_0, ..., local_{hops-1}]`.
    pub flows: Vec<FlowSpec>,
    /// Master RNG seed.
    pub seed: u64,
    /// Per-flow throughput tracing bin (`None` = no traces).
    pub trace_bin: Option<SimDuration>,
    /// Fault installed on the first chain link (`None` = clean wire).
    pub fault: Option<FaultSpec>,
    /// Consecutive-RTO retry budget override.
    pub max_rto_retries: Option<u32>,
}

/// Engine stall watchdog budget, matching the dumbbell runner's.
const STALL_BUDGET_EVENTS: u64 = 2_000_000;

impl ParkingRun {
    fn time_limit(&self) -> SimTime {
        let total: u64 = self.flows.iter().map(|f| f.bytes).sum();
        let ideal = total as f64 * 8.0 / (self.link_gbps * 1e9);
        SimTime::from_secs_f64(20.0 * ideal + 30.0)
    }

    /// Build, run, and measure. The through flow's path capacity (one
    /// chain link's rate) is the capacity expectations divide by.
    pub fn run(&self) -> Result<Measured, ScenarioError> {
        debug_assert_eq!(self.flows.len(), self.hops + 1, "through + one per hop");
        let mss = self.mtu - HEADER_BYTES;
        let mut net = Network::new(self.seed);
        net.enable_activity(SimDuration::from_millis(1));
        if let Some(bin) = self.trace_bin {
            net.enable_flow_trace(bin);
        }
        let cfg = ParkingLotConfig {
            hops: self.hops,
            link_rate: Rate::from_gbps(self.link_gbps),
            edge_rate: Rate::from_gbps(self.link_gbps),
            hop_delay: self.hop_delay,
            bottleneck_queue: BottleneckQueue::DropTail {
                capacity_bytes: self.buffer_bytes,
            },
            edge_buffer_bytes: 4_000_000,
        };
        let lot = ParkingLot::build(&mut net, &cfg);
        if let Some(spec) = &self.fault {
            net.set_link_fault(lot.bottlenecks[0], spec.clone())
                .map_err(ScenarioError::Fault)?;
        }
        net.set_stall_budget(Some(STALL_BUDGET_EVENTS));

        // Constant-cwnd baseline sizing against the longest path: the
        // through flow crosses every hop.
        let rtt = self.hop_delay.as_secs_f64() * 2.0 * (self.hops + 1) as f64;
        let bdp = (self.link_gbps * 1e9 / 8.0 * rtt) as u64;
        let baseline_cwnd = ((bdp + self.buffer_bytes) as f64 * BASELINE_CWND_FACTOR) as u64;
        let cca_cfg = CcaConfig::new(mss).with_baseline_cwnd(baseline_cwnd);

        // Sender host i drives flow i; the through pair spans the chain,
        // local pair i straddles hop i.
        let sender_hosts: Vec<netsim::ids::NodeId> = std::iter::once(lot.through_sender)
            .chain(lot.local_senders.iter().copied())
            .collect();
        let receiver_hosts: Vec<netsim::ids::NodeId> = std::iter::once(lot.through_receiver)
            .chain(lot.local_receivers.iter().copied())
            .collect();
        for (i, spec) in self.flows.iter().enumerate() {
            let flow = FlowId::from_raw(i as u32);
            // Seed the RTT estimator with each flow's own base RTT.
            let path_hops = if i == 0 { self.hops + 1 } else { 2 } as u64;
            let base_rtt = self.hop_delay.saturating_mul(2 * path_hops);
            let mut cfg = TcpSenderConfig::bulk(flow, receiver_hosts[i], self.mtu, spec.bytes)
                .with_rtt_hint(base_rtt)
                .with_start_delay(spec.start_delay);
            if let Some(retries) = self.max_rto_retries {
                cfg = cfg.with_max_rto_retries(retries);
            }
            if let Some(rate) = spec.rate_limit {
                cfg = cfg.with_rate_limit(rate);
            }
            for &(at, rate) in &spec.rate_schedule {
                cfg = cfg.with_rate_change(at, rate);
            }
            let cc = spec.cca.build(&cca_cfg);
            net.attach_agent(sender_hosts[i], Box::new(TcpSender::new(cfg, cc)));
        }
        let policy = if self.flows.iter().any(|f| f.cca == CcaKind::Dctcp) {
            CcaKind::Dctcp.ack_policy()
        } else {
            CcaKind::Cubic.ack_policy()
        };
        for &r in &receiver_hosts {
            net.attach_agent(r, Box::new(TcpReceiver::new(policy)));
        }

        let limit = self.time_limit();
        match net.run_until(limit) {
            RunOutcome::Stalled => return Err(ScenarioError::Stalled { at: net.now() }),
            RunOutcome::Drained
            | RunOutcome::Stopped
            | RunOutcome::TimeLimit
            | RunOutcome::DeadlineExceeded => {}
        }

        // Reports, in flow order (terminal state required, like the
        // dumbbell runner).
        let mut reports = Vec::with_capacity(self.flows.len());
        for (i, spec) in self.flows.iter().enumerate() {
            let flow = FlowId::from_raw(i as u32);
            let sender = net
                .agent::<TcpSender>(sender_hosts[i])
                .expect("sender agent present");
            let stats = sender.stats();
            let terminal_at = match (stats.completed_at, stats.aborted_at) {
                (Some(done), _) => done,
                (None, Some(gave_up)) => gave_up,
                (None, None) => return Err(ScenarioError::Incomplete { flow, limit }),
            };
            let started_at = stats
                .started_at
                .ok_or(ScenarioError::Incomplete { flow, limit })?;
            let fct = terminal_at.saturating_since(started_at);
            reports.push(FlowReport {
                flow,
                cca: spec.cca,
                outcome: stats.outcome(),
                bytes: spec.bytes,
                bytes_acked: stats.bytes_acked,
                started_at,
                completed_at: terminal_at,
                fct,
                mean_goodput: netsim::units::average_rate(stats.bytes_acked, fct),
                retransmits: stats.retx_segs,
                rtos: stats.rto_count,
                segs_sent: stats.segs_sent,
                acks_processed: stats.acks_processed,
                compute_cost_factor: sender.compute_cost_factor(),
            });
        }

        // Energy over [0, last terminal time], one sender host per flow
        // (the dumbbell runner's per-socket accounting).
        let window_end = reports
            .iter()
            .map(|r| r.completed_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        let window = window_end.saturating_since(SimTime::ZERO);
        let meter = EnergyMeter::new(calibration::reference_host_model());
        let ref_cost = calibration::cc_cost_per_ack_ref_j();
        let mut sender_energy_j = 0.0;
        if let Some(activity) = net.activity() {
            for (i, report) in reports.iter().enumerate() {
                let ctx = HostContext {
                    background_util: 0.0,
                    cc_cost_per_ack_j: ref_cost * report.compute_cost_factor,
                };
                sender_energy_j += meter
                    .measure_host(activity, sender_hosts[i], window, ctx)
                    .joules;
            }
        }

        let traces = net.flow_trace().map(|trace| {
            let series = (0..self.flows.len())
                .map(|i| trace.throughput_gbps(FlowId::from_raw(i as u32)))
                .collect();
            (trace.bin(), series)
        });
        let injected_drops = net.network_stats().injected_drops;
        let sim_end = net.now();
        Ok(Measured {
            reports,
            window,
            sender_energy_j,
            n_sender_hosts: self.flows.len(),
            capacity_gbps: self.link_gbps,
            traces,
            injected_drops,
            sim_end,
            fault_clear: None, // the builder fills this from its flap phase
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_hop(bytes: u64) -> ParkingRun {
        ParkingRun {
            hops: 3,
            mtu: 1500,
            link_gbps: 10.0,
            hop_delay: SimDuration::from_micros(25),
            buffer_bytes: 500_000,
            flows: vec![
                FlowSpec::bulk(CcaKind::Cubic, bytes),
                FlowSpec::bulk(CcaKind::Cubic, bytes),
                FlowSpec::bulk(CcaKind::Cubic, bytes),
                FlowSpec::bulk(CcaKind::Cubic, bytes),
            ],
            seed: 7,
            trace_bin: None,
            fault: None,
            max_rto_retries: None,
        }
    }

    #[test]
    fn through_flow_completes_against_cross_traffic() {
        let m = three_hop(2_000_000).run().expect("run completes");
        assert_eq!(m.reports.len(), 4);
        assert!(m.reports.iter().all(|r| r.outcome.is_completed()));
        assert!(m.sender_energy_j > 0.0);
        // The through flow crosses every contended hop; each local flow
        // contends at exactly one. The through flow cannot beat the
        // best local flow.
        let through = m.reports[0].mean_goodput.gbps();
        let best_local = m.reports[1..]
            .iter()
            .map(|r| r.mean_goodput.gbps())
            .fold(0.0, f64::max);
        assert!(
            through <= best_local + 1e-9,
            "through {through} vs best local {best_local}"
        );
    }

    #[test]
    fn runs_replay_bit_identically() {
        let a = three_hop(1_000_000).run().expect("first run");
        let b = three_hop(1_000_000).run().expect("second run");
        assert_eq!(a.sim_end, b.sim_end);
        assert_eq!(a.sender_energy_j.to_bits(), b.sender_energy_j.to_bits());
    }

    #[test]
    fn fault_on_the_first_hop_hits_the_through_flow() {
        let mut run = three_hop(1_000_000);
        run.fault = Some(FaultSpec::random_loss(0.02));
        let m = run.run().expect("survives 2% loss");
        assert!(m.injected_drops > 0);
        assert!(m.reports[0].retransmits > 0, "through flow crosses hop 0");
    }

    #[test]
    fn invalid_fault_surfaces_as_scenario_error() {
        let mut run = three_hop(100_000);
        run.fault = Some(FaultSpec::random_loss(2.0));
        match run.run() {
            Err(ScenarioError::Fault(_)) => {}
            other => panic!("expected Fault error, got {other:?}"),
        }
    }
}
