//! The expectations engine: typed post-run checks.
//!
//! An [`Expectation`] is a machine-checkable health property of a
//! finished run — "the bottleneck stayed ≥ 60% utilized", "no flow
//! aborted", "throughput re-entered its band within 500 ms of the
//! fault clearing". Each evaluates a runner-agnostic [`Measured`]
//! summary (plus an optional baseline run for comparative checks) into
//! an [`ExpectationReport`]: pass/fail, the measured value, the
//! target, and the margin. Reports are plain serde values, so a suite
//! verdict is a JSON artifact a CI gate can diff byte-for-byte.
//!
//! Evaluation is pure: same `Measured` in, same report out, no clock,
//! no RNG, no I/O. The proptests in `tests/` pin that evaluation is
//! deterministic and independent of expectation ordering.

use energy::calibration;
use netsim::time::{SimDuration, SimTime};
use obs::recovery::time_to_recover;
use serde::{Deserialize, Serialize};
use workload::iperf::FlowReport;

/// A runner-agnostic summary of one finished scenario: every number
/// the expectations engine consumes, extracted uniformly from the
/// dumbbell, parking-lot, and rack-grid runners.
#[derive(Clone, Debug)]
pub struct Measured {
    /// Per-flow reports, in flow order.
    pub reports: Vec<FlowReport>,
    /// Measurement window: start until the last flow's terminal state.
    pub window: SimDuration,
    /// Total sender-side energy over the window (J).
    pub sender_energy_j: f64,
    /// Number of sender hosts (for idle-padding in comparative checks).
    pub n_sender_hosts: usize,
    /// Aggregate bottleneck capacity in Gb/s (across racks for grids).
    pub capacity_gbps: f64,
    /// Per-flow throughput traces (bin width, Gb/s series per flow),
    /// when the scenario ran with tracing.
    pub traces: Option<(SimDuration, Vec<Vec<f64>>)>,
    /// Frames lost to the fault layer.
    pub injected_drops: u64,
    /// Simulated time when the run loop returned.
    pub sim_end: SimTime,
    /// When the scenario's scheduled fault cleared (flap up-edge), if
    /// one was scheduled. Recovery is measured from here.
    pub fault_clear: Option<SimTime>,
}

impl Measured {
    /// Total application bytes acknowledged across all flows.
    pub fn bytes_acked(&self) -> u64 {
        self.reports.iter().map(|r| r.bytes_acked).sum()
    }

    /// Aggregate goodput over the window as a fraction of capacity.
    pub fn utilization(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs <= 0.0 || self.capacity_gbps <= 0.0 {
            return 0.0;
        }
        (self.bytes_acked() as f64 * 8.0) / (secs * self.capacity_gbps * 1e9)
    }

    /// Jain's fairness index over per-flow mean goodputs.
    pub fn jain(&self) -> f64 {
        let rates: Vec<f64> = self.reports.iter().map(|r| r.mean_goodput.gbps()).collect();
        analysis::fairness::jain_index(&rates)
    }

    /// How many flows ended in an aborted state.
    pub fn aborted_flows(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| !r.outcome.is_completed())
            .count()
    }
}

/// Consecutive trace bins a flow must hold the band floor before it
/// counts as recovered — one bin can be a lucky burst.
const RECOVERY_SUSTAIN_BINS: usize = 2;

/// Per-flow time-to-recover in sim-nanoseconds, measured from the
/// fault-clear instant to sustained re-entry above `band_frac` of the
/// flow's fair share. `None` for the whole call when the run carried
/// no traces or no scheduled fault; `None` per flow when that flow
/// never re-entered the band. Shared between the `RecoveryWithin`
/// evaluator and the suite's histogram export.
pub fn recovery_times_ns(m: &Measured, band_frac: f64) -> Option<Vec<Option<u64>>> {
    let (bin, traces) = m.traces.as_ref()?;
    let clear = m.fault_clear?;
    let n = traces.len().max(1);
    let floor = band_frac * m.capacity_gbps / n as f64;
    Some(
        traces
            .iter()
            .map(|series| {
                time_to_recover(
                    series,
                    bin.as_nanos(),
                    clear.as_nanos(),
                    floor,
                    RECOVERY_SUSTAIN_BINS,
                )
            })
            .collect(),
    )
}

/// Window-equalized sender energies for a comparative check: both runs
/// padded to the longer window with completed hosts idling at base
/// power (idle package + fan at zero load), mirroring the Fig-1
/// methodology. Returns `(self_j, baseline_j)`.
pub fn equalized_energy_j(m: &Measured, baseline: &Measured) -> (f64, f64) {
    let base_w = calibration::P_IDLE_W + calibration::reference_fan().watts(0.0);
    let common = m.window.max(baseline.window).as_secs_f64();
    let pad = |x: &Measured| {
        x.sender_energy_j + (common - x.window.as_secs_f64()) * base_w * x.n_sender_hosts as f64
    };
    (pad(m), pad(baseline))
}

/// One typed post-run check.
#[derive(Clone, Debug, PartialEq)]
pub enum Expectation {
    /// Aggregate goodput must be at least `min_fraction` of bottleneck
    /// capacity over the measurement window.
    UtilizationFloor {
        /// Minimum utilization as a fraction of capacity in `[0, 1]`.
        min_fraction: f64,
    },
    /// Jain's fairness index over per-flow mean goodputs must land in
    /// `[min, max]`. (An *unfairness* scenario asserts a low band.)
    JainFairnessBand {
        /// Lower band edge.
        min: f64,
        /// Upper band edge.
        max: f64,
    },
    /// Sender energy per acknowledged gigabyte must not exceed the
    /// budget (scale-invariant, unlike raw joules).
    EnergyBudget {
        /// Maximum J per acknowledged GB.
        max_j_per_gb: f64,
    },
    /// Every flow must reach `Completed`; any abort fails.
    AbortFree,
    /// After the scheduled fault clears, every flow's throughput must
    /// re-enter `band_frac` of its fair share within `within`.
    /// Requires traces and a flap phase (the builder enforces both).
    RecoveryWithin {
        /// Band floor as a fraction of the per-flow fair share.
        band_frac: f64,
        /// Recovery deadline after the fault clears.
        within: SimDuration,
    },
    /// The paper's unfair-is-greener invariant: this run's
    /// window-equalized sender energy must undercut the baseline run's
    /// by at least `min_savings_pct` percent. Requires a baseline.
    SavingsOrdering {
        /// Minimum savings over the baseline, in percent.
        min_savings_pct: f64,
    },
}

/// The structured outcome of one expectation against one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpectationReport {
    /// Which check (stable machine name, e.g. `utilization_floor`).
    pub name: String,
    /// Human-readable account of what was measured against what.
    pub detail: String,
    /// Did the run satisfy the expectation?
    pub passed: bool,
    /// The measured value, in the expectation's natural unit.
    pub measured: f64,
    /// The target the measurement was compared against.
    pub target: f64,
    /// Signed distance from the target in the passing direction
    /// (positive = passing with room, negative = failing by this much).
    pub margin: f64,
}

impl Expectation {
    /// Stable machine name for verdicts and metrics labels.
    pub fn name(&self) -> &'static str {
        match self {
            Expectation::UtilizationFloor { .. } => "utilization_floor",
            Expectation::JainFairnessBand { .. } => "jain_fairness_band",
            Expectation::EnergyBudget { .. } => "energy_budget",
            Expectation::AbortFree => "abort_free",
            Expectation::RecoveryWithin { .. } => "recovery_within",
            Expectation::SavingsOrdering { .. } => "savings_ordering",
        }
    }

    /// Does this check compare against a baseline run?
    pub fn needs_baseline(&self) -> bool {
        matches!(self, Expectation::SavingsOrdering { .. })
    }

    /// Does this check need throughput traces and a scheduled fault?
    pub fn needs_recovery_instrumentation(&self) -> bool {
        matches!(self, Expectation::RecoveryWithin { .. })
    }

    /// Evaluate against a finished run. Pure: no clock, no RNG, no I/O.
    pub fn evaluate(&self, m: &Measured, baseline: Option<&Measured>) -> ExpectationReport {
        let name = self.name().to_string();
        match *self {
            Expectation::UtilizationFloor { min_fraction } => {
                let u = m.utilization();
                ExpectationReport {
                    name,
                    detail: format!(
                        "bottleneck utilization {:.1}% of {} Gb/s over {} (floor {:.1}%)",
                        u * 100.0,
                        m.capacity_gbps,
                        m.window,
                        min_fraction * 100.0
                    ),
                    passed: u >= min_fraction,
                    measured: u,
                    target: min_fraction,
                    margin: u - min_fraction,
                }
            }
            Expectation::JainFairnessBand { min, max } => {
                let j = m.jain();
                ExpectationReport {
                    name,
                    detail: format!(
                        "Jain index {:.4} over {} flows (band [{:.2}, {:.2}])",
                        j,
                        m.reports.len(),
                        min,
                        max
                    ),
                    passed: (min..=max).contains(&j),
                    measured: j,
                    target: min,
                    margin: (j - min).min(max - j),
                }
            }
            Expectation::EnergyBudget { max_j_per_gb } => {
                let gb = m.bytes_acked() as f64 / 1e9;
                if gb <= 0.0 {
                    return ExpectationReport {
                        name,
                        detail: "no bytes acknowledged: energy per GB is undefined".to_string(),
                        passed: false,
                        measured: 0.0,
                        target: max_j_per_gb,
                        margin: -max_j_per_gb,
                    };
                }
                let j_per_gb = m.sender_energy_j / gb;
                ExpectationReport {
                    name,
                    detail: format!(
                        "{j_per_gb:.1} J per acked GB ({:.1} J over {gb:.3} GB; budget {max_j_per_gb} J/GB)",
                        m.sender_energy_j
                    ),
                    passed: j_per_gb <= max_j_per_gb,
                    measured: j_per_gb,
                    target: max_j_per_gb,
                    margin: max_j_per_gb - j_per_gb,
                }
            }
            Expectation::AbortFree => {
                let aborted = m.aborted_flows();
                ExpectationReport {
                    name,
                    detail: format!("{aborted} of {} flows aborted", m.reports.len()),
                    passed: aborted == 0,
                    measured: aborted as f64,
                    target: 0.0,
                    margin: -(aborted as f64),
                }
            }
            Expectation::RecoveryWithin { band_frac, within } => {
                self.evaluate_recovery(name, m, band_frac, within)
            }
            Expectation::SavingsOrdering { min_savings_pct } => {
                let Some(base) = baseline else {
                    return ExpectationReport {
                        name,
                        detail: "savings_ordering needs a baseline run; none was attached"
                            .to_string(),
                        passed: false,
                        measured: 0.0,
                        target: min_savings_pct,
                        margin: -min_savings_pct,
                    };
                };
                let (e, base_e) = equalized_energy_j(m, base);
                let savings = if base_e > 0.0 {
                    100.0 * (base_e - e) / base_e
                } else {
                    0.0
                };
                ExpectationReport {
                    name,
                    detail: format!(
                        "{savings:.1}% savings over baseline ({e:.1} J vs {base_e:.1} J \
                         window-equalized; floor {min_savings_pct}%)"
                    ),
                    passed: savings >= min_savings_pct,
                    measured: savings,
                    target: min_savings_pct,
                    margin: savings - min_savings_pct,
                }
            }
        }
    }

    fn evaluate_recovery(
        &self,
        name: String,
        m: &Measured,
        band_frac: f64,
        within: SimDuration,
    ) -> ExpectationReport {
        let target = within.as_secs_f64();
        let Some(times) = recovery_times_ns(m, band_frac) else {
            return ExpectationReport {
                name,
                detail: "recovery_within needs throughput traces and a scheduled fault".to_string(),
                passed: false,
                measured: 0.0,
                target,
                margin: -target,
            };
        };
        // A flow that never re-entered the band is charged the whole
        // observed span from the clear to the end of the run — the
        // honest lower bound on its recovery time.
        let clear = m.fault_clear.unwrap_or(SimTime::ZERO);
        let observed_ns = m.sim_end.saturating_since(clear.min(m.sim_end)).as_nanos();
        let mut worst_ns = 0u64;
        let mut unrecovered = 0usize;
        for t in &times {
            match t {
                Some(ns) => worst_ns = worst_ns.max(*ns),
                None => {
                    unrecovered += 1;
                    worst_ns = worst_ns.max(observed_ns);
                }
            }
        }
        let measured = worst_ns as f64 / 1e9;
        let passed = unrecovered == 0 && worst_ns <= within.as_nanos();
        let detail = if unrecovered > 0 {
            format!(
                "{unrecovered} of {} flows never re-entered {:.0}% of fair share: \
                 {measured:.4}s observed after the fault cleared at {clear} \
                 without recovery (deadline {within})",
                times.len(),
                band_frac * 100.0
            )
        } else {
            format!(
                "slowest flow back inside {:.0}% of fair share {measured:.4}s \
                 after the fault cleared at {clear} (deadline {within})",
                band_frac * 100.0
            )
        };
        ExpectationReport {
            name,
            detail,
            passed,
            measured,
            target,
            margin: target - measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::CcaKind;
    use netsim::ids::FlowId;
    use netsim::units::average_rate;
    use transport::stats::{AbortReason, FlowOutcome};

    /// A hand-built flow report: `gbps` mean goodput over `secs`.
    fn report(flow: u32, gbps: f64, secs: f64, completed: bool) -> FlowReport {
        let fct = SimDuration::from_secs_f64(secs);
        let bytes = (gbps * 1e9 / 8.0 * secs) as u64;
        FlowReport {
            flow: FlowId::from_raw(flow),
            cca: CcaKind::Cubic,
            outcome: if completed {
                FlowOutcome::Completed
            } else {
                FlowOutcome::Aborted(AbortReason::RetriesExhausted)
            },
            bytes,
            bytes_acked: bytes,
            started_at: SimTime::ZERO,
            completed_at: SimTime::from_secs_f64(secs),
            fct,
            mean_goodput: average_rate(bytes, fct),
            retransmits: 0,
            rtos: 0,
            segs_sent: bytes / 1460,
            acks_processed: bytes / 2920,
            compute_cost_factor: 1.0,
        }
    }

    /// Two completed 4 Gb/s flows over 1 s on a 10 Gb/s bottleneck.
    fn two_flow_measured() -> Measured {
        Measured {
            reports: vec![report(0, 4.0, 1.0, true), report(1, 4.0, 1.0, true)],
            window: SimDuration::from_secs(1),
            sender_energy_j: 60.0,
            n_sender_hosts: 2,
            capacity_gbps: 10.0,
            traces: None,
            injected_drops: 0,
            sim_end: SimTime::from_secs(1),
            fault_clear: None,
        }
    }

    //= DESIGN.md#inv-UtilizationFloor
    #[test]
    fn utilization_floor_pass_fail_boundary() {
        let m = two_flow_measured(); // 8 Gb/s of 10 => 0.8
        let pass = Expectation::UtilizationFloor { min_fraction: 0.7 }.evaluate(&m, None);
        assert!(pass.passed);
        assert!((pass.measured - 0.8).abs() < 1e-9);
        assert!(pass.margin > 0.0);

        let fail = Expectation::UtilizationFloor { min_fraction: 0.9 }.evaluate(&m, None);
        assert!(!fail.passed);
        assert!(fail.margin < 0.0);

        // Boundary: exactly at the floor passes (>=).
        let edge = Expectation::UtilizationFloor {
            min_fraction: pass.measured,
        }
        .evaluate(&m, None);
        assert!(edge.passed);
    }

    //= DESIGN.md#inv-JainFairnessBand
    #[test]
    fn jain_band_pass_fail() {
        let m = two_flow_measured(); // equal rates => jain == 1
        assert!(
            Expectation::JainFairnessBand { min: 0.9, max: 1.0 }
                .evaluate(&m, None)
                .passed
        );
        // An unfairness assertion: jain == 1 must FAIL a low band.
        let low = Expectation::JainFairnessBand { min: 0.0, max: 0.7 }.evaluate(&m, None);
        assert!(!low.passed);
        assert!((low.measured - 1.0).abs() < 1e-9);

        let mut skewed = two_flow_measured();
        skewed.reports = vec![report(0, 7.5, 1.0, true), report(1, 0.5, 1.0, true)];
        let j = Expectation::JainFairnessBand { min: 0.9, max: 1.0 }.evaluate(&skewed, None);
        assert!(!j.passed, "skewed rates must fail a tight band: {j:?}");
    }

    //= DESIGN.md#inv-EnergyBudget
    #[test]
    fn energy_budget_pass_fail_and_empty() {
        let m = two_flow_measured(); // 60 J over 1 GB => 60 J/GB
        assert!(
            Expectation::EnergyBudget {
                max_j_per_gb: 100.0
            }
            .evaluate(&m, None)
            .passed
        );
        let fail = Expectation::EnergyBudget { max_j_per_gb: 50.0 }.evaluate(&m, None);
        assert!(!fail.passed);
        assert!((fail.measured - 60.0).abs() < 0.1);

        let mut empty = two_flow_measured();
        for r in &mut empty.reports {
            r.bytes_acked = 0;
        }
        let und = Expectation::EnergyBudget {
            max_j_per_gb: 1000.0,
        }
        .evaluate(&empty, None);
        assert!(!und.passed, "zero acked bytes can never satisfy a budget");
    }

    //= DESIGN.md#inv-AbortFree
    #[test]
    fn abort_free_counts_aborts() {
        let m = two_flow_measured();
        assert!(Expectation::AbortFree.evaluate(&m, None).passed);
        let mut bad = two_flow_measured();
        bad.reports[1] = report(1, 1.0, 0.5, false);
        let r = Expectation::AbortFree.evaluate(&bad, None);
        assert!(!r.passed);
        assert_eq!(r.measured, 1.0);
    }

    //= DESIGN.md#inv-RecoveryWithin
    #[test]
    fn recovery_within_measures_from_the_clear() {
        let mut m = two_flow_measured();
        // 10 ms bins; fault clears at 20 ms; both flows are dead for two
        // bins after the clear, then back at full rate.
        let series = vec![
            vec![4.0, 0.0, 0.1, 0.1, 4.0, 4.0, 4.0, 4.0],
            vec![4.0, 0.0, 0.1, 0.1, 0.1, 4.0, 4.0, 4.0],
        ];
        m.traces = Some((SimDuration::from_millis(10), series));
        m.fault_clear = Some(SimTime::from_millis(20));
        m.sim_end = SimTime::from_millis(80);
        // Fair share = 5 Gb/s; band 0.5 => floor 2.5. Flow 0 recovers in
        // bins 4-5 (end 50 ms => 30 ms after clear); flow 1 in bins 5-6
        // (end 60 ms => 40 ms after clear). Worst = 40 ms.
        let r = Expectation::RecoveryWithin {
            band_frac: 0.5,
            within: SimDuration::from_millis(100),
        }
        .evaluate(&m, None);
        assert!(r.passed, "{r:?}");
        assert!((r.measured - 0.040).abs() < 1e-9, "{r:?}");

        let tight = Expectation::RecoveryWithin {
            band_frac: 0.5,
            within: SimDuration::from_millis(35),
        }
        .evaluate(&m, None);
        assert!(!tight.passed, "40 ms recovery must miss a 35 ms deadline");
    }

    #[test]
    fn recovery_never_reentering_charges_the_observed_span() {
        let mut m = two_flow_measured();
        m.traces = Some((
            SimDuration::from_millis(10),
            vec![vec![4.0, 0.0, 0.1, 0.1, 0.1, 0.1]],
        ));
        m.fault_clear = Some(SimTime::from_millis(20));
        m.sim_end = SimTime::from_millis(60);
        let r = Expectation::RecoveryWithin {
            band_frac: 0.5,
            within: SimDuration::from_millis(10),
        }
        .evaluate(&m, None);
        assert!(!r.passed);
        // 40 ms observed after the clear, never recovered.
        assert!((r.measured - 0.040).abs() < 1e-9, "{r:?}");
        assert!(r.detail.contains("never re-entered"), "{}", r.detail);
    }

    #[test]
    fn recovery_without_instrumentation_fails_closed() {
        let m = two_flow_measured();
        let r = Expectation::RecoveryWithin {
            band_frac: 0.5,
            within: SimDuration::from_millis(100),
        }
        .evaluate(&m, None);
        assert!(!r.passed);
        assert!(r.detail.contains("needs throughput traces"));
    }

    //= DESIGN.md#inv-SavingsOrdering
    #[test]
    fn savings_ordering_equalizes_windows() {
        // Baseline: 100 J over 2 s. Self: 80 J over 1 s, padded by
        // 1 s of idle power on both hosts.
        let mut base = two_flow_measured();
        base.sender_energy_j = 100.0;
        base.window = SimDuration::from_secs(2);
        let mut m = two_flow_measured();
        m.sender_energy_j = 80.0;
        m.window = SimDuration::from_secs(1);

        let (e, base_e) = equalized_energy_j(&m, &base);
        assert_eq!(base_e, 100.0, "longer window gets no padding");
        assert!(e > 80.0, "shorter window is padded with idle energy");

        let expected = 100.0 * (base_e - e) / base_e;
        let r = Expectation::SavingsOrdering {
            min_savings_pct: 2.0,
        }
        .evaluate(&m, Some(&base));
        assert!((r.measured - expected).abs() < 1e-9);

        // Without a baseline the check fails closed.
        let none = Expectation::SavingsOrdering {
            min_savings_pct: 2.0,
        }
        .evaluate(&m, None);
        assert!(!none.passed);
        assert!(none.detail.contains("baseline"));
    }

    #[test]
    fn reports_serialize_round_trip() {
        let m = two_flow_measured();
        let r = Expectation::UtilizationFloor { min_fraction: 0.5 }.evaluate(&m, None);
        let json = serde_json::to_string(&r).expect("serializes");
        let back: ExpectationReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, r);
    }
}
