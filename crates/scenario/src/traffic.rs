//! Traffic generators: declarative descriptions that compile to flows.
//!
//! A [`Traffic`] value names a workload shape the way an operator would
//! ("a bulk backup", "an RPC fan", "a 25 Mb/s video"); compilation
//! turns it into the [`FlowSpec`]s the runners consume. The mapping is
//! deliberately boring — every generator is expressible as bulk flows
//! with start delays, rate limits, and rate schedules — so the whole
//! surface stays on the one battle-tested sender path.

use cca::CcaKind;
use netsim::time::{SimDuration, SimTime};
use netsim::units::Rate;
use workload::iperf::FlowSpec;

/// One declarative traffic source.
#[derive(Clone, Debug)]
pub enum Traffic {
    /// An unthrottled bulk transfer (an iperf3 client, a backup job).
    Bulk {
        /// Congestion control algorithm.
        cca: CcaKind,
        /// Application bytes.
        bytes: u64,
        /// Start offset from simulation start.
        start: SimDuration,
    },
    /// A request/response RPC fan: `responses` short transfers of
    /// `resp_bytes` each, issued `interval` apart (an RPC client
    /// draining a queue of responses).
    Rpc {
        /// Congestion control algorithm.
        cca: CcaKind,
        /// Number of responses.
        responses: usize,
        /// Bytes per response.
        resp_bytes: u64,
        /// Gap between response starts.
        interval: SimDuration,
        /// Start offset of the first response.
        start: SimDuration,
    },
    /// A rate-limited, video-like stream: a bulk transfer throttled to
    /// its encode rate.
    Video {
        /// Congestion control algorithm.
        cca: CcaKind,
        /// Application bytes.
        bytes: u64,
        /// The stream's target rate.
        rate: Rate,
        /// Start offset from simulation start.
        start: SimDuration,
    },
    /// An on/off web-like source: bursts at full speed for `on`, then
    /// throttles to a trickle for `off`, repeated `cycles` times. The
    /// trickle (not a full stop) keeps the connection warm, like
    /// persistent HTTP between page loads.
    OnOffWeb {
        /// Congestion control algorithm.
        cca: CcaKind,
        /// Application bytes over the whole pattern.
        bytes: u64,
        /// Full-speed burst duration.
        on: SimDuration,
        /// Trickle-throttled gap duration.
        off: SimDuration,
        /// Number of on/off cycles.
        cycles: usize,
        /// Start offset from simulation start.
        start: SimDuration,
    },
    /// A population CCA mix for rack-grid topologies: `flows` bulk
    /// transfers of `bytes_per_flow` each, assigned to algorithms by
    /// weighted round-robin (see
    /// [`workload::population::PopulationSpec::cca_assignment`]).
    Mix {
        /// Total flows across the population.
        flows: usize,
        /// CCA mix as (algorithm, weight) pairs.
        mix: Vec<(CcaKind, u32)>,
        /// Application bytes per flow.
        bytes_per_flow: u64,
    },
}

/// Rate of the keep-warm trickle between web bursts, in Mbit/s.
const WEB_TRICKLE_MBPS: f64 = 10.0;

impl Traffic {
    /// A bulk transfer starting at t = 0.
    pub fn bulk(cca: CcaKind, bytes: u64) -> Traffic {
        Traffic::Bulk {
            cca,
            bytes,
            start: SimDuration::ZERO,
        }
    }

    /// How many flows this generator compiles to.
    pub fn flow_count(&self) -> usize {
        match self {
            Traffic::Bulk { .. } | Traffic::Video { .. } | Traffic::OnOffWeb { .. } => 1,
            Traffic::Rpc { responses, .. } => *responses,
            Traffic::Mix { flows, .. } => *flows,
        }
    }

    /// Compile to flow specs. [`Traffic::Mix`] compiles to nothing here
    /// — it configures the population runner instead (the builder
    /// rejects it on flow-level topologies).
    pub fn compile(&self) -> Vec<FlowSpec> {
        match self {
            Traffic::Bulk { cca, bytes, start } => {
                vec![FlowSpec::bulk(*cca, *bytes).with_start_delay(*start)]
            }
            Traffic::Rpc {
                cca,
                responses,
                resp_bytes,
                interval,
                start,
            } => (0..*responses)
                .map(|i| {
                    FlowSpec::bulk(*cca, *resp_bytes)
                        .with_start_delay(*start + interval.saturating_mul(i as u64))
                })
                .collect(),
            Traffic::Video {
                cca,
                bytes,
                rate,
                start,
            } => vec![FlowSpec::bulk(*cca, *bytes)
                .with_rate_limit(*rate)
                .with_start_delay(*start)],
            Traffic::OnOffWeb {
                cca,
                bytes,
                on,
                off,
                cycles,
                start,
            } => {
                // Bursts are unthrottled; gaps throttle to the trickle.
                // The schedule is absolute times, starting on.
                let mut spec = FlowSpec::bulk(*cca, *bytes).with_start_delay(*start);
                let mut t = start.as_nanos();
                for _ in 0..*cycles {
                    t += on.as_nanos();
                    spec = spec.with_rate_change(
                        SimTime::from_nanos(t),
                        Some(Rate::from_mbps(WEB_TRICKLE_MBPS)),
                    );
                    t += off.as_nanos();
                    spec = spec.with_rate_change(SimTime::from_nanos(t), None);
                }
                vec![spec]
            }
            Traffic::Mix { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_compiles_to_one_flow() {
        let flows = Traffic::bulk(CcaKind::Cubic, 1_000).compile();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].bytes, 1_000);
        assert!(flows[0].rate_limit.is_none());
    }

    #[test]
    fn rpc_fans_out_staggered() {
        let flows = Traffic::Rpc {
            cca: CcaKind::Reno,
            responses: 3,
            resp_bytes: 500,
            interval: SimDuration::from_millis(2),
            start: SimDuration::from_millis(1),
        }
        .compile();
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[0].start_delay, SimDuration::from_millis(1));
        assert_eq!(flows[1].start_delay, SimDuration::from_millis(3));
        assert_eq!(flows[2].start_delay, SimDuration::from_millis(5));
        assert!(flows.iter().all(|f| f.bytes == 500));
    }

    #[test]
    fn video_is_rate_limited() {
        let flows = Traffic::Video {
            cca: CcaKind::Bbr,
            bytes: 10_000,
            rate: Rate::from_mbps(25.0),
            start: SimDuration::ZERO,
        }
        .compile();
        assert_eq!(flows[0].rate_limit.unwrap().bps(), 25e6);
    }

    #[test]
    fn web_alternates_trickle_and_full_speed() {
        let flows = Traffic::OnOffWeb {
            cca: CcaKind::Cubic,
            bytes: 1_000_000,
            on: SimDuration::from_millis(10),
            off: SimDuration::from_millis(5),
            cycles: 2,
            start: SimDuration::ZERO,
        }
        .compile();
        let sched = &flows[0].rate_schedule;
        assert_eq!(sched.len(), 4);
        // on ends at 10 ms -> trickle; off ends at 15 ms -> unthrottled.
        assert_eq!(sched[0].0, SimTime::from_millis(10));
        assert!(sched[0].1.is_some());
        assert_eq!(sched[1].0, SimTime::from_millis(15));
        assert!(sched[1].1.is_none());
        assert_eq!(sched[3].0, SimTime::from_millis(30));
    }

    #[test]
    fn mix_counts_flows_but_compiles_to_none() {
        let t = Traffic::Mix {
            flows: 10,
            mix: vec![(CcaKind::Cubic, 1)],
            bytes_per_flow: 1_000,
        };
        assert_eq!(t.flow_count(), 10);
        assert!(t.compile().is_empty());
    }
}
