//! The scenario builder: topology → traffic → chaos → expectations.
//!
//! [`ScenarioBuilder`] is the authoring surface; [`ScenarioBuilder::build`]
//! validates the composition (chaos phases must compile to a legal
//! [`netsim::fault::FaultSpec`], recovery checks need a scheduled
//! outage to measure from, savings checks need a baseline run to
//! compare against, population topologies can't take flow-level chaos)
//! and freezes it into a [`ScenarioSpec`]; [`ScenarioSpec::run`]
//! dispatches to the right runner — the dumbbell and rack-grid runners
//! in `workload`, or this crate's parking-lot runner — and evaluates
//! every expectation over the run's [`Measured`] summary.

use crate::chaos::{self, ChaosPhase};
use crate::expect::{Expectation, ExpectationReport, Measured};
use crate::parking::ParkingRun;
use crate::traffic::Traffic;
use netsim::fault::{FaultSpec, FaultSpecError};
use netsim::time::{SimDuration, SimTime};
use workload::iperf::FlowSpec;
use workload::population::{PopulationError, PopulationSpec};
use workload::scenario::{Observe, Scenario, ScenarioError};

/// The paper's testbed link rate, shared by every topology here.
const LINK_GBPS: f64 = 10.0;

/// Default MTU (jumbo frames, like the runners' testbed defaults).
const DEFAULT_MTU: u32 = 9000;

/// Throughput-trace bin auto-enabled when a `RecoveryWithin`
/// expectation needs per-flow series. Fine enough to resolve recovery
/// after millisecond-scale flaps at tiny scale.
const RECOVERY_TRACE_BIN: SimDuration = SimDuration::from_millis(1);

/// The network shape a scenario runs on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// N sender hosts through one bottleneck to one receiver (the
    /// paper's testbed). Flow-level: supports chaos, traces, and every
    /// expectation.
    Dumbbell,
    /// A single rack: `senders` hosts fanning into one receiver.
    /// Population-level (takes one [`Traffic::Mix`]); no chaos/traces.
    Incast {
        /// Sender hosts fanning into the rack switch.
        senders: usize,
    },
    /// `racks` independent rack cells of `hosts_per_rack` senders each,
    /// the many-flow scale-out shape. Population-level.
    RackGrid {
        /// Independent rack cells.
        racks: usize,
        /// Sender hosts per rack.
        hosts_per_rack: usize,
    },
    /// A chain of `hops` bottlenecks: one through flow crossing all of
    /// them against one local flow per hop. Flow-level.
    ParkingLot {
        /// Bottleneck links in the chain.
        hops: usize,
    },
}

impl Topology {
    /// The capacity expectations normalize against: one bottleneck's
    /// rate for flow-level shapes, the aggregate across rack cells for
    /// the grid.
    pub fn capacity_gbps(&self) -> f64 {
        match self {
            Topology::Dumbbell | Topology::Incast { .. } | Topology::ParkingLot { .. } => LINK_GBPS,
            Topology::RackGrid { racks, .. } => *racks as f64 * LINK_GBPS,
        }
    }

    fn is_population(&self) -> bool {
        matches!(self, Topology::Incast { .. } | Topology::RackGrid { .. })
    }
}

/// Why a scenario composition was rejected at build time.
#[derive(Debug)]
pub enum BuildError {
    /// The scenario has no traffic at all.
    NoTraffic,
    /// The chaos phases compose into an illegal fault spec.
    Fault(FaultSpecError),
    /// A `RecoveryWithin` expectation with no flap phase: there is no
    /// fault-clear instant to measure recovery from.
    RecoveryNeedsFlap,
    /// A `SavingsOrdering` expectation with no attached baseline run.
    OrderingNeedsBaseline,
    /// The traffic list doesn't fit the topology (a population mix on a
    /// flow-level shape, flow traffic on a grid, wrong parking-lot flow
    /// count, ...).
    TopologyMismatch {
        /// What the topology required.
        detail: String,
    },
    /// The composition asks for something a runner can't do (chaos or
    /// traces on the population runner).
    Unsupported {
        /// What was asked and why it can't run.
        detail: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoTraffic => write!(f, "scenario has no traffic"),
            BuildError::Fault(err) => write!(f, "chaos phases do not compose: {err}"),
            BuildError::RecoveryNeedsFlap => write!(
                f,
                "recovery_within needs a flap phase to define the fault-clear instant"
            ),
            BuildError::OrderingNeedsBaseline => write!(
                f,
                "savings_ordering needs a baseline scenario (ScenarioBuilder::baseline)"
            ),
            BuildError::TopologyMismatch { detail } => {
                write!(f, "traffic does not fit the topology: {detail}")
            }
            BuildError::Unsupported { detail } => write!(f, "unsupported composition: {detail}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Why a validated scenario failed to run.
#[derive(Debug)]
pub enum RunError {
    /// A flow-level runner failed (stall, incomplete flow, deadline).
    Scenario(ScenarioError),
    /// The population runner failed (a rack stalled, a worker died).
    Population(PopulationError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Scenario(err) => write!(f, "{err}"),
            RunError::Population(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ScenarioError> for RunError {
    fn from(err: ScenarioError) -> Self {
        RunError::Scenario(err)
    }
}

impl From<PopulationError> for RunError {
    fn from(err: PopulationError) -> Self {
        RunError::Population(err)
    }
}

/// Composes one scenario. Terminal call: [`ScenarioBuilder::build`].
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    name: String,
    topology: Topology,
    traffic: Vec<Traffic>,
    chaos: Vec<ChaosPhase>,
    expectations: Vec<Expectation>,
    seed: u64,
    mtu: u32,
    trace_bin: Option<SimDuration>,
    max_rto_retries: Option<u32>,
    observability: bool,
    baseline: Option<Box<ScenarioSpec>>,
}

impl ScenarioBuilder {
    /// Start a scenario named `name` on a dumbbell with the testbed
    /// defaults (10 Gb/s, MTU 9000, seed 1).
    pub fn new(name: &str) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.to_string(),
            topology: Topology::Dumbbell,
            traffic: Vec::new(),
            chaos: Vec::new(),
            expectations: Vec::new(),
            seed: 1,
            mtu: DEFAULT_MTU,
            trace_bin: None,
            max_rto_retries: None,
            observability: false,
            baseline: None,
        }
    }

    /// Set the network shape.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Add one traffic source.
    pub fn traffic(mut self, traffic: Traffic) -> Self {
        self.traffic.push(traffic);
        self
    }

    /// Add one chaos phase on the bottleneck link.
    pub fn chaos(mut self, phase: ChaosPhase) -> Self {
        self.chaos.push(phase);
        self
    }

    /// Add one post-run expectation. (Named `expect_check` because
    /// `expect` collides with `Result::expect` at call sites.)
    pub fn expect_check(mut self, expectation: Expectation) -> Self {
        self.expectations.push(expectation);
        self
    }

    /// Set the master RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the MTU.
    pub fn with_mtu(mut self, mtu: u32) -> Self {
        self.mtu = mtu;
        self
    }

    /// Record per-flow throughput traces at `bin` (auto-enabled when a
    /// `RecoveryWithin` expectation needs them).
    pub fn with_trace(mut self, bin: SimDuration) -> Self {
        self.trace_bin = Some(bin);
        self
    }

    /// Cap consecutive RTO retries so flows on a dead path abort
    /// instead of backing off forever.
    pub fn with_max_rto_retries(mut self, retries: u32) -> Self {
        self.max_rto_retries = Some(retries);
        self
    }

    /// Run with full observability (metrics + flight recorder +
    /// Perfetto trace in the run's `obs` report). Dumbbell only.
    pub fn with_observability(mut self) -> Self {
        self.observability = true;
        self
    }

    /// Attach a baseline scenario; `SavingsOrdering` expectations
    /// compare this scenario's energy against the baseline's.
    pub fn baseline(mut self, baseline: ScenarioSpec) -> Self {
        self.baseline = Some(Box::new(baseline));
        self
    }

    /// Validate the composition and freeze it into a runnable spec.
    pub fn build(mut self) -> Result<ScenarioSpec, BuildError> {
        if self.traffic.is_empty() {
            return Err(BuildError::NoTraffic);
        }
        let fault = chaos::compile(&self.chaos).map_err(BuildError::Fault)?;
        // The recovery clock starts when the last scheduled outage ends.
        let fault_clear = self.chaos.iter().filter_map(|p| p.clears_at()).max();
        let needs_recovery = self
            .expectations
            .iter()
            .any(|e| e.needs_recovery_instrumentation());
        if needs_recovery {
            if fault_clear.is_none() {
                return Err(BuildError::RecoveryNeedsFlap);
            }
            self.trace_bin.get_or_insert(RECOVERY_TRACE_BIN);
        }
        if self.expectations.iter().any(|e| e.needs_baseline()) && self.baseline.is_none() {
            return Err(BuildError::OrderingNeedsBaseline);
        }

        if self.topology.is_population() {
            if !matches!(self.traffic.as_slice(), [Traffic::Mix { .. }]) {
                return Err(BuildError::TopologyMismatch {
                    detail: "population topologies take exactly one Traffic::Mix".into(),
                });
            }
            if fault.is_some() {
                return Err(BuildError::Unsupported {
                    detail: "the population runner has no fault layer; use a flow-level topology for chaos".into(),
                });
            }
            if self.trace_bin.is_some() {
                return Err(BuildError::Unsupported {
                    detail: "the population runner records no per-flow traces".into(),
                });
            }
            if self.observability {
                return Err(BuildError::Unsupported {
                    detail: "observability is wired through the dumbbell runner only".into(),
                });
            }
        } else {
            if self
                .traffic
                .iter()
                .any(|t| matches!(t, Traffic::Mix { .. }))
            {
                return Err(BuildError::TopologyMismatch {
                    detail: "Traffic::Mix only fits population topologies (Incast, RackGrid)"
                        .into(),
                });
            }
            if let Topology::ParkingLot { hops } = self.topology {
                if hops == 0 {
                    return Err(BuildError::TopologyMismatch {
                        detail: "a parking lot needs at least one hop".into(),
                    });
                }
                let flows: usize = self.traffic.iter().map(|t| t.flow_count()).sum();
                if flows != hops + 1 {
                    return Err(BuildError::TopologyMismatch {
                        detail: format!(
                            "a {hops}-hop parking lot takes exactly {} flows \
                             (through + one local per hop), got {flows}",
                            hops + 1
                        ),
                    });
                }
            }
            if self.observability && self.topology != Topology::Dumbbell {
                return Err(BuildError::Unsupported {
                    detail: "observability is wired through the dumbbell runner only".into(),
                });
            }
        }

        Ok(ScenarioSpec {
            name: self.name,
            topology: self.topology,
            traffic: self.traffic,
            chaos: self.chaos,
            fault,
            fault_clear,
            expectations: self.expectations,
            seed: self.seed,
            mtu: self.mtu,
            trace_bin: self.trace_bin,
            max_rto_retries: self.max_rto_retries,
            observability: self.observability,
            baseline: self.baseline,
        })
    }
}

/// A validated, runnable scenario. Construct via [`ScenarioBuilder`].
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    name: String,
    topology: Topology,
    traffic: Vec<Traffic>,
    chaos: Vec<ChaosPhase>,
    fault: Option<FaultSpec>,
    fault_clear: Option<SimTime>,
    expectations: Vec<Expectation>,
    seed: u64,
    mtu: u32,
    trace_bin: Option<SimDuration>,
    max_rto_retries: Option<u32>,
    observability: bool,
    baseline: Option<Box<ScenarioSpec>>,
}

/// One executed scenario: the measurements, the baseline's (if one was
/// attached), and every expectation's verdict.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The run's measurements.
    pub measured: Measured,
    /// The baseline's measurements, when one was attached.
    pub baseline: Option<Measured>,
    /// One report per expectation, in declaration order.
    pub reports: Vec<ExpectationReport>,
    /// Every expectation passed.
    pub passed: bool,
    /// The observability report (dumbbell with
    /// [`ScenarioBuilder::with_observability`] only).
    pub obs: Option<obs::ObsReport>,
}

impl ScenarioSpec {
    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared expectations, in order.
    pub fn expectations(&self) -> &[Expectation] {
        &self.expectations
    }

    /// Incident-timeline labels of the chaos phases, in order.
    pub fn chaos_labels(&self) -> Vec<String> {
        self.chaos.iter().map(|p| p.label()).collect()
    }

    /// The instant the last scheduled outage clears, if any.
    pub fn fault_clear(&self) -> Option<SimTime> {
        self.fault_clear
    }

    /// Run the scenario (baseline first, if attached) and evaluate
    /// every expectation.
    pub fn run(&self) -> Result<ScenarioRun, RunError> {
        let baseline = match &self.baseline {
            Some(spec) => Some(spec.measure()?.0),
            None => None,
        };
        let (measured, obs) = self.measure()?;
        let reports: Vec<ExpectationReport> = self
            .expectations
            .iter()
            .map(|e| e.evaluate(&measured, baseline.as_ref()))
            .collect();
        let passed = reports.iter().all(|r| r.passed);
        Ok(ScenarioRun {
            measured,
            baseline,
            reports,
            passed,
            obs,
        })
    }

    /// Execute on the right runner and summarize. Expectation-free:
    /// baselines run through this.
    fn measure(&self) -> Result<(Measured, Option<obs::ObsReport>), RunError> {
        match self.topology {
            Topology::Dumbbell => self.measure_dumbbell(),
            Topology::Incast { senders } => self.measure_population(1, senders),
            Topology::RackGrid {
                racks,
                hosts_per_rack,
            } => self.measure_population(racks, hosts_per_rack),
            Topology::ParkingLot { hops } => self.measure_parking(hops),
        }
    }

    fn flat_flows(&self) -> Vec<FlowSpec> {
        self.traffic.iter().flat_map(|t| t.compile()).collect()
    }

    fn measure_dumbbell(&self) -> Result<(Measured, Option<obs::ObsReport>), RunError> {
        let flows = self.flat_flows();
        let n_flows = flows.len();
        let mut sc = Scenario::new(self.mtu, flows).with_seed(self.seed);
        if let Some(spec) = &self.fault {
            sc = sc.with_fault(spec.clone());
        }
        if let Some(bin) = self.trace_bin {
            sc = sc.with_trace(bin);
        }
        if let Some(retries) = self.max_rto_retries {
            sc = sc.with_max_rto_retries(retries);
        }
        if self.observability {
            sc.observe = Observe::Full;
        }
        let capacity = sc.link_gbps;
        let outcome = workload::scenario::run(&sc)?;
        let traces = match (self.trace_bin, outcome.throughput_traces) {
            (Some(bin), Some(series)) => Some((bin, series)),
            _ => None,
        };
        Ok((
            Measured {
                reports: outcome.reports,
                window: outcome.window,
                sender_energy_j: outcome.sender_energy_j,
                n_sender_hosts: n_flows,
                capacity_gbps: capacity,
                traces,
                injected_drops: outcome.injected_drops,
                sim_end: outcome.sim_end,
                fault_clear: self.fault_clear,
            },
            outcome.obs,
        ))
    }

    fn measure_population(
        &self,
        racks: usize,
        hosts_per_rack: usize,
    ) -> Result<(Measured, Option<obs::ObsReport>), RunError> {
        let Some(Traffic::Mix {
            flows,
            mix,
            bytes_per_flow,
        }) = self.traffic.first()
        else {
            unreachable!("build() guarantees exactly one Traffic::Mix");
        };
        let spec = PopulationSpec::new(*flows, mix.clone())
            .with_grid(racks, hosts_per_rack)
            .with_bytes_per_flow(*bytes_per_flow)
            .with_seed(self.seed);
        let capacity = racks as f64 * spec.link_gbps;
        let outcome = workload::population::run_population(&spec)?;
        Ok((
            Measured {
                reports: outcome.reports,
                window: outcome.sim_end.saturating_since(SimTime::ZERO),
                sender_energy_j: outcome.sender_energy_j,
                n_sender_hosts: racks * hosts_per_rack,
                capacity_gbps: capacity,
                traces: None,
                injected_drops: 0,
                sim_end: outcome.sim_end,
                fault_clear: None,
            },
            None,
        ))
    }

    fn measure_parking(&self, hops: usize) -> Result<(Measured, Option<obs::ObsReport>), RunError> {
        let run = ParkingRun {
            hops,
            mtu: self.mtu,
            link_gbps: LINK_GBPS,
            hop_delay: SimDuration::from_micros(25),
            buffer_bytes: 1_000_000,
            flows: self.flat_flows(),
            seed: self.seed,
            trace_bin: self.trace_bin,
            fault: self.fault.clone(),
            max_rto_retries: self.max_rto_retries,
        };
        let mut measured = run.run().map_err(RunError::Scenario)?;
        measured.fault_clear = self.fault_clear;
        Ok((measured, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::CcaKind;
    use netsim::units::Rate;

    fn two_bulk() -> ScenarioBuilder {
        ScenarioBuilder::new("t")
            .traffic(Traffic::bulk(CcaKind::Cubic, 2_000_000))
            .traffic(Traffic::bulk(CcaKind::Cubic, 2_000_000))
    }

    #[test]
    fn empty_traffic_is_rejected() {
        assert!(matches!(
            ScenarioBuilder::new("t").build(),
            Err(BuildError::NoTraffic)
        ));
    }

    #[test]
    fn bad_chaos_is_rejected_at_build() {
        let err = two_bulk().chaos(ChaosPhase::Loss { prob: -0.5 }).build();
        assert!(matches!(err, Err(BuildError::Fault(_))));
    }

    #[test]
    fn recovery_without_a_flap_is_rejected() {
        let err = two_bulk()
            .expect_check(Expectation::RecoveryWithin {
                band_frac: 0.3,
                within: SimDuration::from_millis(500),
            })
            .build();
        assert!(matches!(err, Err(BuildError::RecoveryNeedsFlap)));
    }

    #[test]
    fn ordering_without_a_baseline_is_rejected() {
        let err = two_bulk()
            .expect_check(Expectation::SavingsOrdering {
                min_savings_pct: 1.0,
            })
            .build();
        assert!(matches!(err, Err(BuildError::OrderingNeedsBaseline)));
    }

    #[test]
    fn mix_on_a_dumbbell_is_rejected() {
        let err = ScenarioBuilder::new("t")
            .traffic(Traffic::Mix {
                flows: 4,
                mix: vec![(CcaKind::Cubic, 1)],
                bytes_per_flow: 1_000,
            })
            .build();
        assert!(matches!(err, Err(BuildError::TopologyMismatch { .. })));
    }

    #[test]
    fn chaos_on_a_rack_grid_is_rejected() {
        let err = ScenarioBuilder::new("t")
            .topology(Topology::RackGrid {
                racks: 2,
                hosts_per_rack: 2,
            })
            .traffic(Traffic::Mix {
                flows: 4,
                mix: vec![(CcaKind::Cubic, 1)],
                bytes_per_flow: 1_000,
            })
            .chaos(ChaosPhase::Loss { prob: 0.01 })
            .build();
        assert!(matches!(err, Err(BuildError::Unsupported { .. })));
    }

    #[test]
    fn parking_lot_flow_count_must_match_hops() {
        let err = ScenarioBuilder::new("t")
            .topology(Topology::ParkingLot { hops: 3 })
            .traffic(Traffic::bulk(CcaKind::Cubic, 1_000))
            .build();
        assert!(matches!(err, Err(BuildError::TopologyMismatch { .. })));
    }

    #[test]
    fn recovery_auto_enables_traces() {
        let spec = two_bulk()
            .chaos(ChaosPhase::flap(
                SimTime::from_millis(5),
                SimDuration::from_millis(2),
            ))
            .expect_check(Expectation::RecoveryWithin {
                band_frac: 0.3,
                within: SimDuration::from_millis(500),
            })
            .build()
            .expect("valid scenario");
        assert_eq!(spec.trace_bin, Some(RECOVERY_TRACE_BIN));
        assert_eq!(spec.fault_clear(), Some(SimTime::from_millis(7)));
    }

    #[test]
    fn dumbbell_runs_and_evaluates() {
        let run = two_bulk()
            .with_seed(7)
            .expect_check(Expectation::AbortFree)
            .expect_check(Expectation::UtilizationFloor { min_fraction: 0.25 })
            .expect_check(Expectation::JainFairnessBand { min: 0.8, max: 1.0 })
            .build()
            .expect("valid scenario")
            .run()
            .expect("runs");
        assert!(run.passed, "{:?}", run.reports);
        assert_eq!(run.reports.len(), 3);
        assert!(run.baseline.is_none());
        assert!((run.measured.capacity_gbps - 10.0).abs() < 1e-12);
    }

    #[test]
    fn incast_runs_a_population_mix() {
        let run = ScenarioBuilder::new("incast")
            .topology(Topology::Incast { senders: 4 })
            .traffic(Traffic::Mix {
                flows: 8,
                mix: vec![(CcaKind::Cubic, 3), (CcaKind::Bbr, 1)],
                bytes_per_flow: 500_000,
            })
            .with_seed(5)
            .expect_check(Expectation::AbortFree)
            .build()
            .expect("valid scenario")
            .run()
            .expect("runs");
        assert!(run.passed, "{:?}", run.reports);
        assert_eq!(run.measured.reports.len(), 8);
        assert_eq!(run.measured.n_sender_hosts, 4);
    }

    #[test]
    fn parking_lot_runs_through_the_dsl() {
        let run = ScenarioBuilder::new("lot")
            .topology(Topology::ParkingLot { hops: 2 })
            .traffic(Traffic::bulk(CcaKind::Cubic, 1_000_000))
            .traffic(Traffic::bulk(CcaKind::Cubic, 1_000_000))
            .traffic(Traffic::Video {
                cca: CcaKind::Bbr,
                bytes: 500_000,
                rate: Rate::from_gbps(1.0),
                start: SimDuration::ZERO,
            })
            .with_seed(3)
            .expect_check(Expectation::AbortFree)
            .build()
            .expect("valid scenario")
            .run()
            .expect("runs");
        assert!(run.passed, "{:?}", run.reports);
        assert_eq!(run.measured.reports.len(), 3);
    }

    #[test]
    fn baseline_feeds_savings_ordering() {
        // Serial video (rate-limited to a fraction of the link) vs two
        // fair bulk flows: the serial run idles senders longer, so no
        // savings are guaranteed here — just check the plumbing: a
        // baseline is measured and the report carries real numbers.
        let fair = two_bulk().with_seed(11).build().expect("valid baseline");
        let run = two_bulk()
            .with_seed(11)
            .baseline(fair)
            .expect_check(Expectation::SavingsOrdering {
                min_savings_pct: -5.0,
            })
            .build()
            .expect("valid scenario")
            .run()
            .expect("runs");
        assert!(run.baseline.is_some());
        // Identical scenario vs itself: savings are exactly zero.
        let report = &run.reports[0];
        assert!(report.measured.abs() < 1e-9, "{report:?}");
        assert!(report.passed);
    }
}
