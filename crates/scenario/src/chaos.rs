//! Named chaos phases: the fault layer with operator-readable labels.
//!
//! A [`ChaosPhase`] is one named disturbance — `loss(0.001)`,
//! `flap(at 30ms, for 20ms)` — that compiles onto a
//! [`netsim::fault::FaultSpec`]. Keeping phases as a list (rather than
//! a pre-composed spec) lets scenario definitions read like an incident
//! timeline, lets verdicts name the phase that was active, and lets the
//! builder validate the composed spec once with
//! [`FaultSpec::validate`] before anything runs.

use netsim::fault::{FaultSpec, FaultSpecError};
use netsim::time::{SimDuration, SimTime};

/// One named disturbance on the scenario's bottleneck link.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosPhase {
    /// Bernoulli frame loss at probability `prob`.
    Loss {
        /// Per-frame drop probability.
        prob: f64,
    },
    /// Bernoulli bit corruption (frame discarded at the receiving NIC).
    Corrupt {
        /// Per-frame corruption probability.
        prob: f64,
    },
    /// Bernoulli frame duplication.
    Duplicate {
        /// Per-frame duplication probability.
        prob: f64,
    },
    /// Bernoulli reordering: held-back frames re-injected after `hold`.
    Reorder {
        /// Per-frame hold-back probability.
        prob: f64,
        /// How long a held frame is delayed.
        hold: SimDuration,
    },
    /// Uniform random extra propagation delay in `[0, sigma)`.
    Jitter {
        /// Upper bound of the added delay.
        sigma: SimDuration,
    },
    /// A scheduled outage: the link is down during `[at, at + for_)`.
    Flap {
        /// When the link goes down.
        at: SimTime,
        /// How long it stays down.
        for_: SimDuration,
    },
}

impl ChaosPhase {
    /// A scheduled outage of `for_` starting at `at`.
    pub fn flap(at: SimTime, for_: SimDuration) -> ChaosPhase {
        ChaosPhase::Flap { at, for_ }
    }

    /// Human-readable label, used in scenario names and verdicts.
    pub fn label(&self) -> String {
        match self {
            ChaosPhase::Loss { prob } => format!("loss({prob})"),
            ChaosPhase::Corrupt { prob } => format!("corrupt({prob})"),
            ChaosPhase::Duplicate { prob } => format!("duplicate({prob})"),
            ChaosPhase::Reorder { prob, hold } => format!("reorder({prob}, hold {hold})"),
            ChaosPhase::Jitter { sigma } => format!("jitter({sigma})"),
            ChaosPhase::Flap { at, for_ } => format!("flap(at {at}, for {for_})"),
        }
    }

    /// The instant this phase's disturbance ends, if it is scheduled
    /// (only flaps are; probabilistic phases run for the whole
    /// scenario). The `RecoveryWithin` expectation measures from here.
    pub fn clears_at(&self) -> Option<SimTime> {
        match self {
            ChaosPhase::Flap { at, for_ } => at.checked_add(*for_),
            _ => None,
        }
    }

    fn apply(&self, spec: FaultSpec) -> FaultSpec {
        match *self {
            ChaosPhase::Loss { prob } => {
                let mut s = spec;
                s.drop_prob = prob;
                s
            }
            ChaosPhase::Corrupt { prob } => spec.with_corruption(prob),
            ChaosPhase::Duplicate { prob } => spec.with_duplication(prob),
            ChaosPhase::Reorder { prob, hold } => spec.with_reordering(prob, hold),
            ChaosPhase::Jitter { sigma } => spec.with_jitter(sigma),
            ChaosPhase::Flap { at, for_ } => {
                spec.with_flap(at, at.checked_add(for_).unwrap_or(SimTime::MAX))
            }
        }
    }
}

/// Compose phases into one validated fault spec. `Ok(None)` when the
/// phase list is empty (a clean wire installs no fault at all, keeping
/// the run bit-identical to an un-instrumented one).
pub fn compile(phases: &[ChaosPhase]) -> Result<Option<FaultSpec>, FaultSpecError> {
    if phases.is_empty() {
        return Ok(None);
    }
    let spec = phases
        .iter()
        .fold(FaultSpec::default(), |acc, p| p.apply(acc));
    spec.validate()?;
    Ok(Some(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_compose_onto_one_spec() {
        let spec = compile(&[
            ChaosPhase::Loss { prob: 0.01 },
            ChaosPhase::Duplicate { prob: 0.02 },
            ChaosPhase::flap(SimTime::from_millis(10), SimDuration::from_millis(5)),
        ])
        .expect("valid phases")
        .expect("non-empty");
        assert_eq!(spec.drop_prob, 0.01);
        assert_eq!(spec.duplicate_prob, 0.02);
        assert_eq!(spec.flaps.len(), 1);
        assert_eq!(spec.flaps[0].up, SimTime::from_millis(15));
    }

    #[test]
    fn empty_phase_list_is_a_clean_wire() {
        assert!(compile(&[]).expect("valid").is_none());
    }

    #[test]
    fn invalid_phases_are_rejected_at_compile() {
        let err = compile(&[ChaosPhase::Loss { prob: 1.5 }]);
        assert!(err.is_err(), "out-of-range probability must not compile");
    }

    #[test]
    fn only_flaps_have_a_clear_instant() {
        assert_eq!(ChaosPhase::Loss { prob: 0.1 }.clears_at(), None);
        assert_eq!(
            ChaosPhase::flap(SimTime::from_millis(2), SimDuration::from_millis(3)).clears_at(),
            Some(SimTime::from_millis(5))
        );
    }

    #[test]
    fn labels_read_like_an_incident_timeline() {
        assert_eq!(ChaosPhase::Loss { prob: 0.001 }.label(), "loss(0.001)");
        assert!(ChaosPhase::flap(SimTime::ZERO, SimDuration::from_millis(1))
            .label()
            .starts_with("flap(at "));
    }
}
