//! # scenario — declarative experiments with machine-checked outcomes
//!
//! Every experiment in this workspace used to be a hand-rolled binary
//! with ad-hoc pass/fail judgment: run the sim, print a table, eyeball
//! the JSON. This crate replaces that with the authoring shape of a
//! modern resilience harness: **topology → traffic → chaos →
//! expectations**, where "success" is a typed post-run check that
//! evaluates into a structured report, not a human opinion.
//!
//! ```
//! use scenario::prelude::*;
//!
//! let spec = ScenarioBuilder::new("flap-recovery")
//!     .topology(Topology::Dumbbell)
//!     .traffic(Traffic::bulk(CcaKind::Cubic, 12_000_000))
//!     .traffic(Traffic::bulk(CcaKind::Cubic, 12_000_000))
//!     .chaos(ChaosPhase::flap(
//!         SimTime::from_millis(5),
//!         SimDuration::from_millis(2),
//!     ))
//!     .expect_check(Expectation::AbortFree)
//!     .expect_check(Expectation::RecoveryWithin {
//!         band_frac: 0.3,
//!         within: SimDuration::from_millis(500),
//!     })
//!     .build()
//!     .expect("well-formed scenario");
//! let run = spec.run().expect("scenario completes");
//! assert!(run.passed, "{:?}", run.reports);
//! ```
//!
//! The pieces:
//!
//! * [`builder`] — [`builder::ScenarioBuilder`] composes a topology
//!   shape (dumbbell, incast, parking lot, rack grid), traffic
//!   generators, named chaos phases, and expectations into a validated
//!   [`builder::ScenarioSpec`]; `run()` executes it on the right
//!   runner and evaluates every expectation.
//! * [`traffic`] — [`traffic::Traffic`] generators (bulk,
//!   request/response RPC, rate-limited video, on/off web, and a
//!   population CCA mix) compiling down to [`workload::iperf::FlowSpec`]s.
//! * [`chaos`] — [`chaos::ChaosPhase`] wraps
//!   [`netsim::fault::FaultSpec`] knobs as named, labelled phases
//!   (`loss(p)`, `flap(at, for)`, ...), validated at build time.
//! * [`expect`] — the expectations engine: typed checks
//!   ([`expect::Expectation`]) over a runner-agnostic
//!   [`expect::Measured`] summary, each producing an
//!   [`expect::ExpectationReport`] with the measured value, the
//!   target, and the margin.
//! * [`parking`] — the parking-lot runner (one through flow crossing a
//!   chain of bottlenecks against per-hop local flows); dumbbell and
//!   rack-grid scenarios reuse the `workload` runners.
//! * [`suite`] — named collections of scenarios with a deterministic
//!   JSON verdict matrix and observability export (time-to-recover
//!   histogram, per-scenario trace spans).
//!
//! Determinism contract: a suite verdict is a pure function of its
//! specs — no wall-clock, no filesystem paths, fixed iteration and
//! float-summation order — so two runs of the same suite must emit
//! byte-identical verdict JSON (`verify.sh --scenarios` enforces it).

#![warn(missing_docs)]

pub mod builder;
pub mod chaos;
pub mod expect;
pub mod parking;
pub mod suite;
pub mod traffic;

/// The commonly-used names, re-exported in one place.
pub mod prelude {
    pub use crate::builder::{
        BuildError, RunError, ScenarioBuilder, ScenarioRun, ScenarioSpec, Topology,
    };
    pub use crate::chaos::ChaosPhase;
    pub use crate::expect::{Expectation, ExpectationReport, Measured};
    pub use crate::suite::{ScenarioVerdict, Suite, SuiteEntry, SuiteOutcome, SuiteVerdict};
    pub use crate::traffic::Traffic;
    pub use cca::CcaKind;
    pub use netsim::time::{SimDuration, SimTime};
    pub use netsim::units::Rate;
}
