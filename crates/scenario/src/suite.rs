//! Suites: named scenario collections with a deterministic verdict.
//!
//! A [`Suite`] bundles scenarios — including *negative* entries that
//! are **supposed** to fail their expectations, proving the checks
//! have teeth — and [`run_suite`] evaluates them all into one
//! [`SuiteVerdict`]: a JSON-serializable matrix of per-scenario,
//! per-expectation results. The verdict is a pure function of the
//! specs (no wall-clock, no paths, scenarios sorted by name, fixed
//! float handling), so two runs of the same suite serialize
//! byte-identically — `verify.sh --scenarios` diffs exactly that.
//!
//! Alongside the verdict, the runner exports observability: a
//! time-to-recover histogram ([`obs::recovery::RECOVERY_TIME_MS_METRIC`])
//! in Prometheus text format and a Perfetto trace with one span per
//! scenario plus an instant per failed expectation.

use crate::builder::ScenarioSpec;
use crate::expect::{self, Expectation, ExpectationReport};
use obs::{labels, MetricsRegistry, TraceBuilder, TrackKind};
use serde::{Deserialize, Serialize};

/// Bump when the verdict JSON shape changes.
pub const VERDICT_SCHEMA_VERSION: u32 = 1;

/// Perfetto counter bin for the suite trace (1 ms).
const TRACE_BIN_NS: u64 = 1_000_000;

/// One suite member.
pub struct SuiteEntry {
    /// The scenario to run.
    pub spec: ScenarioSpec,
    /// A negative entry is *expected to fail* its expectations; it
    /// behaves when `passed == false`. This keeps at least one
    /// deliberately-broken scenario in every suite proving the
    /// expectations engine actually rejects bad runs.
    pub negative: bool,
}

/// A named collection of scenarios evaluated together.
pub struct Suite {
    /// Suite name (verdict header, artifact filenames).
    pub name: String,
    /// Members, in insertion order. Verdicts are sorted by scenario
    /// name, so insertion order never leaks into the output.
    pub entries: Vec<SuiteEntry>,
}

impl Suite {
    /// An empty suite.
    pub fn new(name: &str) -> Suite {
        Suite {
            name: name.to_string(),
            entries: Vec::new(),
        }
    }

    /// Add a scenario that must pass all its expectations.
    pub fn push(&mut self, spec: ScenarioSpec) {
        self.entries.push(SuiteEntry {
            spec,
            negative: false,
        });
    }

    /// Add a scenario that must FAIL at least one expectation.
    pub fn push_negative(&mut self, spec: ScenarioSpec) {
        self.entries.push(SuiteEntry {
            spec,
            negative: true,
        });
    }
}

/// One scenario's row in the verdict matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioVerdict {
    /// Scenario name.
    pub name: String,
    /// Whether this was a negative (expected-to-fail) entry.
    pub negative: bool,
    /// Every expectation passed.
    pub passed: bool,
    /// The scenario did what the suite expects of it: passed if
    /// positive, failed if negative, and ran without a runner error
    /// either way.
    pub behaved: bool,
    /// Simulated end time, seconds.
    pub sim_end_s: f64,
    /// Chaos phases that were active, as incident-timeline labels.
    pub chaos: Vec<String>,
    /// Per-expectation reports, in declaration order.
    pub expectations: Vec<ExpectationReport>,
    /// The runner error, if the scenario failed to execute at all.
    pub error: Option<String>,
}

/// The whole suite's verdict: deterministic, diffable JSON.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuiteVerdict {
    /// Verdict JSON schema version.
    pub schema_version: u32,
    /// Suite name.
    pub suite: String,
    /// Every scenario behaved (see [`ScenarioVerdict::behaved`]).
    pub all_behaved: bool,
    /// Per-scenario verdicts, sorted by scenario name.
    pub scenarios: Vec<ScenarioVerdict>,
}

impl SuiteVerdict {
    /// Pretty JSON for the verdict artifact. Deterministic: two runs
    /// of the same suite produce byte-identical output.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("verdict serializes")
    }
}

/// A suite run's full output: the verdict plus observability exports.
pub struct SuiteOutcome {
    /// The verdict matrix.
    pub verdict: SuiteVerdict,
    /// Prometheus text exposition (recovery histogram, behave counters).
    pub prometheus: String,
    /// Perfetto trace JSON: one span per scenario, an instant per
    /// failed expectation.
    pub trace_json: String,
}

/// Run every entry and fold the results into one deterministic verdict.
/// Runner errors never panic the suite — they become
/// [`ScenarioVerdict::error`] rows with `behaved: false`.
pub fn run_suite(suite: &Suite) -> SuiteOutcome {
    let mut metrics = MetricsRegistry::new();
    let mut trace = TraceBuilder::new(TRACE_BIN_NS);
    let mut scenarios = Vec::with_capacity(suite.entries.len());
    let mut max_end_ns = 0u64;

    for (i, entry) in suite.entries.iter().enumerate() {
        let name = entry.spec.name().to_string();
        let track = i as u32;
        trace.set_track_name(TrackKind::Host, track, &format!("scenario: {name}"));
        let verdict = match entry.spec.run() {
            Ok(run) => {
                let end_ns = run.measured.sim_end.as_nanos();
                max_end_ns = max_end_ns.max(end_ns);
                trace.span(0, end_ns, TrackKind::Host, track, &name);
                for _ in run.reports.iter().filter(|r| !r.passed) {
                    trace.instant(end_ns, TrackKind::Host, track, "expectation_failed");
                }
                record_recovery(
                    &mut metrics,
                    &name,
                    entry.spec.expectations(),
                    &run.measured,
                );
                ScenarioVerdict {
                    name,
                    negative: entry.negative,
                    passed: run.passed,
                    behaved: run.passed != entry.negative,
                    sim_end_s: run.measured.sim_end.as_secs_f64(),
                    chaos: entry.spec.chaos_labels(),
                    expectations: run.reports,
                    error: None,
                }
            }
            Err(err) => {
                trace.instant(0, TrackKind::Host, track, "runner_error");
                ScenarioVerdict {
                    name,
                    negative: entry.negative,
                    passed: false,
                    behaved: false,
                    sim_end_s: 0.0,
                    chaos: entry.spec.chaos_labels(),
                    expectations: Vec::new(),
                    error: Some(err.to_string()),
                }
            }
        };
        let counter = if verdict.behaved {
            "scenario_behaved_total"
        } else {
            "scenario_misbehaved_total"
        };
        metrics.counter_add(counter, labels([("suite", suite.name.clone())]), 1);
        scenarios.push(verdict);
    }

    scenarios.sort_by(|a, b| a.name.cmp(&b.name));
    let all_behaved = scenarios.iter().all(|v| v.behaved);
    SuiteOutcome {
        verdict: SuiteVerdict {
            schema_version: VERDICT_SCHEMA_VERSION,
            suite: suite.name.clone(),
            all_behaved,
            scenarios,
        },
        prometheus: metrics.snapshot(max_end_ns).prometheus_text(),
        trace_json: trace.json(),
    }
}

/// Feed each recovered flow's time-to-recover into the shared
/// histogram, labelled by scenario. Flows that never recovered are the
/// expectation's problem (it fails); the histogram only records
/// measured recoveries.
fn record_recovery(
    metrics: &mut MetricsRegistry,
    scenario: &str,
    expectations: &[Expectation],
    measured: &crate::expect::Measured,
) {
    for e in expectations {
        let Expectation::RecoveryWithin { band_frac, .. } = e else {
            continue;
        };
        let Some(times) = expect::recovery_times_ns(measured, *band_frac) else {
            continue;
        };
        for ns in times.into_iter().flatten() {
            metrics.observe(
                obs::recovery::RECOVERY_TIME_MS_METRIC,
                labels([("scenario", scenario.to_string())]),
                ns / 1_000_000,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use crate::chaos::ChaosPhase;
    use crate::traffic::Traffic;
    use cca::CcaKind;
    use netsim::time::{SimDuration, SimTime};

    fn passing(name: &str) -> ScenarioSpec {
        ScenarioBuilder::new(name)
            .traffic(Traffic::bulk(CcaKind::Cubic, 1_000_000))
            .traffic(Traffic::bulk(CcaKind::Cubic, 1_000_000))
            .with_seed(9)
            .expect_check(Expectation::AbortFree)
            .build()
            .expect("valid scenario")
    }

    fn failing(name: &str) -> ScenarioSpec {
        // A utilization floor no 10 Gb/s link can reach.
        ScenarioBuilder::new(name)
            .traffic(Traffic::bulk(CcaKind::Cubic, 1_000_000))
            .with_seed(9)
            .expect_check(Expectation::UtilizationFloor { min_fraction: 1.5 })
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn positive_and_negative_entries_both_behave() {
        let mut suite = Suite::new("t");
        suite.push(passing("ok"));
        suite.push_negative(failing("broken-on-purpose"));
        let out = run_suite(&suite);
        assert!(out.verdict.all_behaved, "{}", out.verdict.to_json());
        let neg = &out.verdict.scenarios[0]; // sorted: "broken-on-purpose" < "ok"
        assert_eq!(neg.name, "broken-on-purpose");
        assert!(!neg.passed && neg.behaved);
    }

    #[test]
    fn a_failing_positive_entry_misbehaves() {
        let mut suite = Suite::new("t");
        suite.push(failing("should-have-passed"));
        let out = run_suite(&suite);
        assert!(!out.verdict.all_behaved);
        assert!(out.prometheus.contains("scenario_misbehaved_total"));
    }

    #[test]
    fn verdicts_sort_by_name_regardless_of_insertion_order() {
        let mut ab = Suite::new("t");
        ab.push(passing("a"));
        ab.push(passing("b"));
        let mut ba = Suite::new("t");
        ba.push(passing("b"));
        ba.push(passing("a"));
        assert_eq!(
            run_suite(&ab).verdict.to_json(),
            run_suite(&ba).verdict.to_json()
        );
    }

    #[test]
    fn verdict_json_is_byte_identical_across_runs() {
        let build = || {
            let mut s = Suite::new("t");
            s.push(passing("ok"));
            s.push_negative(failing("neg"));
            s
        };
        let a = run_suite(&build());
        let b = run_suite(&build());
        assert_eq!(a.verdict.to_json(), b.verdict.to_json());
        assert_eq!(a.prometheus, b.prometheus);
        assert_eq!(a.trace_json, b.trace_json);
    }

    #[test]
    fn recovery_scenarios_feed_the_histogram() {
        let spec = ScenarioBuilder::new("flappy")
            .traffic(Traffic::bulk(CcaKind::Cubic, 4_000_000))
            .traffic(Traffic::bulk(CcaKind::Cubic, 4_000_000))
            .with_seed(9)
            .chaos(ChaosPhase::flap(
                SimTime::from_millis(2),
                SimDuration::from_millis(1),
            ))
            .expect_check(Expectation::RecoveryWithin {
                band_frac: 0.2,
                within: SimDuration::from_secs(5),
            })
            .build()
            .expect("valid scenario");
        let mut suite = Suite::new("t");
        suite.push(spec);
        let out = run_suite(&suite);
        assert!(out.verdict.all_behaved, "{}", out.verdict.to_json());
        assert!(
            out.prometheus
                .contains(obs::recovery::RECOVERY_TIME_MS_METRIC),
            "{}",
            out.prometheus
        );
    }

    #[test]
    fn verdict_round_trips_through_json() {
        let mut suite = Suite::new("t");
        suite.push(passing("ok"));
        let out = run_suite(&suite);
        let back: SuiteVerdict = serde_json::from_str(&out.verdict.to_json()).expect("parses back");
        assert_eq!(back, out.verdict);
    }
}
