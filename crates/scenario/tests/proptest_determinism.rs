//! Property tests: suite evaluation is deterministic and independent
//! of expectation/scenario ordering.
//!
//! The suite verdict is documented as a pure function of its specs —
//! re-running a suite, or registering its scenarios in a different
//! order, must serialize to byte-identical JSON. These properties back
//! the `verify.sh --scenarios` byte-diff gate with randomized inputs:
//! arbitrary expectation thresholds, seeds, flow sizes, and
//! permutations of both the expectation list and the entry list.

use proptest::prelude::*;
use scenario::prelude::*;

/// A small strategy over expectation lists: thresholds vary, the set
/// composition varies, and the order varies independently.
fn arb_expectations() -> impl Strategy<Value = Vec<Expectation>> {
    let one = prop_oneof![
        (0.0f64..1.5).prop_map(|min_fraction| Expectation::UtilizationFloor { min_fraction }),
        (0.0f64..0.9, 0.9f64..1.0)
            .prop_map(|(min, max)| Expectation::JainFairnessBand { min, max }),
        (1.0f64..500.0).prop_map(|max_j_per_gb| Expectation::EnergyBudget { max_j_per_gb }),
        Just(Expectation::AbortFree),
    ];
    proptest::collection::vec(one, 1..5)
}

fn spec(name: &str, seed: u64, bytes: u64, expectations: &[Expectation]) -> ScenarioSpec {
    let mut b = ScenarioBuilder::new(name)
        .traffic(Traffic::bulk(CcaKind::Cubic, bytes))
        .traffic(Traffic::bulk(CcaKind::Reno, bytes))
        .with_seed(seed);
    for e in expectations {
        b = b.expect_check(e.clone());
    }
    b.build().expect("valid scenario")
}

proptest! {
    // Simulation runs dominate the budget; keep case counts modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Re-running the identical suite yields byte-identical verdict
    /// JSON, Prometheus text, and trace JSON.
    #[test]
    fn suite_reruns_are_byte_identical(
        seed in 0u64..1_000,
        bytes in 200_000u64..2_000_000,
        expectations in arb_expectations(),
    ) {
        let build = || {
            let mut s = Suite::new("prop");
            s.push(spec("a", seed, bytes, &expectations));
            s
        };
        let x = scenario::suite::run_suite(&build());
        let y = scenario::suite::run_suite(&build());
        prop_assert_eq!(x.verdict.to_json(), y.verdict.to_json());
        prop_assert_eq!(x.prometheus, y.prometheus);
        prop_assert_eq!(x.trace_json, y.trace_json);
    }

    /// Shuffling the expectation list changes only the order of the
    /// per-expectation reports (declaration order is preserved within
    /// a scenario), never any verdict: the same reports come back,
    /// pass/fail identical, regardless of declaration order.
    #[test]
    fn expectation_order_never_changes_verdicts(
        seed in 0u64..1_000,
        bytes in 200_000u64..2_000_000,
        expectations in arb_expectations(),
        rotation in 0usize..4,
    ) {
        let mut rotated = expectations.clone();
        let r = rotation % rotated.len().max(1);
        rotated.rotate_left(r);

        let a = spec("a", seed, bytes, &expectations)
            .run()
            .expect("scenario runs");
        let b = spec("a", seed, bytes, &rotated)
            .run()
            .expect("scenario runs");
        prop_assert_eq!(a.passed, b.passed);
        let mut ra = a.reports.clone();
        let mut rb = b.reports.clone();
        let key = |r: &ExpectationReport| (r.name.clone(), r.detail.clone());
        ra.sort_by_key(key);
        rb.sort_by_key(key);
        prop_assert_eq!(ra, rb);
    }

    /// Registering scenarios in a different order yields the same
    /// verdict JSON: the matrix is sorted by scenario name, so
    /// insertion order never leaks into the artifact.
    #[test]
    fn scenario_order_never_changes_the_verdict(
        seed in 0u64..1_000,
        bytes in 200_000u64..1_000_000,
        expectations in arb_expectations(),
    ) {
        let forward = || {
            let mut s = Suite::new("prop");
            s.push(spec("a", seed, bytes, &expectations));
            s.push(spec("b", seed.wrapping_add(1), bytes, &expectations));
            s
        };
        let reversed = || {
            let mut s = Suite::new("prop");
            s.push(spec("b", seed.wrapping_add(1), bytes, &expectations));
            s.push(spec("a", seed, bytes, &expectations));
            s
        };
        prop_assert_eq!(
            scenario::suite::run_suite(&forward()).verdict.to_json(),
            scenario::suite::run_suite(&reversed()).verdict.to_json()
        );
    }
}
