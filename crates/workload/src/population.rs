//! Population-scale traffic generation: thousands of flows across
//! independent rack cells.
//!
//! The paper measures a handful of flows; the deployment question is
//! population-scale — what does the energy bill look like when 10k CUBIC
//! flows meet 1k BBR flows (the CCA-mix regime of the content-provider
//! fairness studies in PAPERS.md)? A [`PopulationSpec`] describes N flows
//! with a CCA mix, staggered arrivals, and a rack grid: `racks`
//! independent incast cells of `hosts_per_rack` sender hosts, each host
//! kernel-multiplexing its share of flows behind one
//! [`transport::mux::MuxSender`].
//!
//! ## Determinism under parallelism
//!
//! Racks share no links, so each rack is an isolated simulation — a pure
//! function of its plan (a `Send`-able value type). That is the whole
//! parallelism story: [`run_population_with_threads`] hands complete
//! racks to worker threads, each worker builds and runs its own
//! `Network` locally, and outcomes are merged in rack-index order. The
//! merged result is therefore bit-identical for *any* thread count,
//! including 1 — the engine's `(at, seq)` event order inside each rack
//! is never touched. The golden fingerprint tests pin this.

use crate::iperf::FlowReport;
use crate::scenario::ScenarioError;
use cca::{CcaConfig, CcaKind};
use energy::calibration::{self, PACING_PPS_BONUS};
use energy::host::HostContext;
use energy::meter::EnergyMeter;
use netsim::engine::{Network, RunOutcome};
use netsim::ids::FlowId;
use netsim::packet::HEADER_BYTES;
use netsim::time::{SimDuration, SimTime};
use netsim::topology::{BottleneckQueue, Incast, IncastConfig};
use netsim::units::Rate;
use transport::mux::MuxSender;
use transport::receiver::TcpReceiver;
use transport::sender::{TcpSender, TcpSenderConfig};

/// A population of bulk flows over a grid of independent rack cells.
#[derive(Clone, Debug)]
pub struct PopulationSpec {
    /// MTU in bytes (wire size of a full segment).
    pub mtu: u32,
    /// Total flows across the whole population.
    pub total_flows: usize,
    /// CCA mix as (algorithm, weight) pairs; flows are assigned by
    /// smooth weighted round-robin over the global flow index, so the
    /// mix is even across racks and stable under re-sharding.
    pub mix: Vec<(CcaKind, u32)>,
    /// Application bytes per flow.
    pub bytes_per_flow: u64,
    /// Arrivals ramp linearly over this window (flow `f` starts at
    /// `spread * f / total`), modelling staggered client arrivals
    /// rather than a synchronized stampede.
    pub arrival_spread: SimDuration,
    /// Per-flow random start jitter on top of the ramp, drawn from the
    /// owning rack's seeded stream. `ZERO` disables.
    pub start_jitter: SimDuration,
    /// Number of independent rack cells.
    pub racks: usize,
    /// Sender hosts per rack (the incast fan-in).
    pub hosts_per_rack: usize,
    /// Edge and bottleneck rate in Gb/s (the paper's testbed is 10).
    pub link_gbps: f64,
    /// One-way propagation delay per hop.
    pub hop_delay: SimDuration,
    /// Bottleneck (switch -> receiver) buffer per rack, in bytes.
    pub buffer_bytes: u64,
    /// Buffer on non-bottleneck links, in bytes.
    pub edge_buffer_bytes: u64,
    /// LAG width for every rack link (see [`IncastConfig::bond_links`]).
    /// The default of 2 mirrors the dumbbell's bonded sender NICs and
    /// produces the same-nanosecond delivery ties the engine's batched
    /// dispatch coalesces.
    pub bond_links: usize,
    /// Host packet-processing ceiling in packets/sec (`None` disables).
    /// Off by default for populations: the ceiling models a single
    /// iperf socket's host, which a 20-flow multiplexed sender is not,
    /// and per-sub gaps would serialize the burst emission that feeds
    /// batched dispatch.
    pub host_pps_cap: Option<f64>,
    /// Bin width for energy activity integration.
    pub activity_bin: SimDuration,
    /// Master RNG seed; each rack derives an isolated stream from it.
    pub seed: u64,
    /// Same-timestamp delivery batching in the engine (on by default;
    /// the equivalence tests flip it off to pin bit-identity).
    pub delivery_batching: bool,
    /// Hard simulated-time limit per rack (`None` = derived default).
    pub time_limit: Option<SimTime>,
}

impl PopulationSpec {
    /// A population with the testbed defaults: MTU 9000, 10 Gb/s links,
    /// 8 racks of 8 sender hosts, 1 MB per flow, arrivals over 20 ms.
    pub fn new(total_flows: usize, mix: Vec<(CcaKind, u32)>) -> Self {
        assert!(total_flows > 0, "need at least one flow");
        assert!(!mix.is_empty(), "need at least one CCA in the mix");
        assert!(
            mix.iter().any(|&(_, w)| w > 0),
            "mix needs a positive weight"
        );
        PopulationSpec {
            mtu: 9000,
            total_flows,
            mix,
            bytes_per_flow: 1_000_000,
            arrival_spread: SimDuration::from_millis(20),
            start_jitter: SimDuration::from_micros(200),
            racks: 8,
            hosts_per_rack: 8,
            link_gbps: 10.0,
            hop_delay: SimDuration::from_micros(25),
            buffer_bytes: 1_000_000,
            edge_buffer_bytes: 4_000_000,
            bond_links: 2,
            host_pps_cap: None,
            activity_bin: SimDuration::from_millis(1),
            seed: 1,
            delivery_batching: true,
            time_limit: None,
        }
    }

    /// The tracked `bulk_10k_flows` benchmark population: 10,000 CUBIC
    /// flows sharing 22 racks with 1,000 BBR flows (the 10:1 CCA mix of
    /// the content-provider-fairness measurements), 1 MB per flow. This
    /// is the scenario BENCH_netsim.json pins `events_per_sec` for and
    /// the one the population golden tests fingerprint at tiny scale.
    pub fn bulk_10k_flows() -> Self {
        PopulationSpec::new(11_000, vec![(CcaKind::Cubic, 10), (CcaKind::Bbr, 1)])
            .with_grid(22, 10)
            .with_bytes_per_flow(1_000_000)
            .with_seed(6)
    }

    /// `bulk_10k_flows` shrunk ~100x (110 flows, 2 racks) with the same
    /// mix, per-flow size, and seed: small enough for CI to run in
    /// milliseconds, same shape everywhere else. The golden fingerprint
    /// test pins this spec's outcome bit-for-bit.
    pub fn bulk_10k_flows_tiny() -> Self {
        PopulationSpec::new(110, vec![(CcaKind::Cubic, 10), (CcaKind::Bbr, 1)])
            .with_grid(2, 10)
            .with_bytes_per_flow(1_000_000)
            .with_seed(6)
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the rack grid (racks x sender hosts per rack).
    pub fn with_grid(mut self, racks: usize, hosts_per_rack: usize) -> Self {
        assert!(racks > 0 && hosts_per_rack > 0, "grid must be non-empty");
        self.racks = racks;
        self.hosts_per_rack = hosts_per_rack;
        self
    }

    /// Set the per-flow transfer size.
    pub fn with_bytes_per_flow(mut self, bytes: u64) -> Self {
        self.bytes_per_flow = bytes;
        self
    }

    /// Set the arrival ramp window.
    pub fn with_arrival_spread(mut self, spread: SimDuration) -> Self {
        self.arrival_spread = spread;
        self
    }

    /// Toggle same-timestamp delivery batching in the engine.
    pub fn with_delivery_batching(mut self, on: bool) -> Self {
        self.delivery_batching = on;
        self
    }

    /// The CCA of every flow, in global flow order: smooth weighted
    /// round-robin over the mix, so any prefix carries (close to) the
    /// configured ratios and the assignment never depends on the rack
    /// grid or thread count.
    pub fn cca_assignment(&self) -> Vec<CcaKind> {
        let wsum: i64 = self.mix.iter().map(|&(_, w)| w as i64).sum();
        let mut credit = vec![0i64; self.mix.len()];
        let mut out = Vec::with_capacity(self.total_flows);
        for _ in 0..self.total_flows {
            for (c, &(_, w)) in credit.iter_mut().zip(&self.mix) {
                *c += w as i64;
            }
            let mut best = 0;
            for k in 1..credit.len() {
                if credit[k] > credit[best] {
                    best = k;
                }
            }
            credit[best] -= wsum;
            out.push(self.mix[best].0);
        }
        out
    }

    /// Derived per-rack time limit: 20x the rack's ideal transfer time
    /// plus the arrival ramp and a constant for RTO-heavy tails (the
    /// same shape as the scenario runner's default).
    fn default_time_limit(&self, rack_bytes: u64) -> SimTime {
        let ideal = rack_bytes as f64 * 8.0 / (self.link_gbps * 1e9);
        SimTime::from_secs_f64(20.0 * ideal + self.arrival_spread.as_secs_f64() + 30.0)
    }
}

/// One flow inside a rack plan: everything a worker needs to build it.
#[derive(Clone, Copy, Debug)]
struct PlanFlow {
    /// Global flow id (population-wide, sparse within one rack).
    flow: u32,
    cca: CcaKind,
    bytes: u64,
    /// Deterministic arrival-ramp offset (jitter is added rack-side).
    start: SimDuration,
}

/// A complete, `Send`-able description of one rack's simulation. The
/// rack outcome is a pure function of this value — the contract that
/// makes worker-thread execution safe.
#[derive(Clone, Debug)]
struct RackPlan {
    rack: usize,
    seed: u64,
    mtu: u32,
    hosts: usize,
    link_gbps: f64,
    hop_delay: SimDuration,
    buffer_bytes: u64,
    edge_buffer_bytes: u64,
    bond_links: usize,
    host_pps_cap: Option<f64>,
    activity_bin: SimDuration,
    start_jitter: SimDuration,
    delivery_batching: bool,
    time_limit: SimTime,
    /// Rack-local flow list, in rack-local order.
    flows: Vec<PlanFlow>,
}

/// What one rack produced (merged by the population runner).
struct RackOutcome {
    reports: Vec<FlowReport>,
    sender_energy_j: f64,
    receiver_energy_j: f64,
    counters: netsim::engine::EngineCounters,
    sim_end: SimTime,
}

/// Why a population run failed.
#[derive(Debug)]
pub enum PopulationError {
    /// One rack's simulation failed (stalled, incomplete, ...).
    Rack {
        /// Which rack.
        rack: usize,
        /// The underlying scenario-level failure.
        error: ScenarioError,
    },
    /// A worker thread died or failed to deliver its rack outcomes.
    Worker {
        /// The worker's stripe index.
        worker: usize,
    },
}

impl std::fmt::Display for PopulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PopulationError::Rack { rack, error } => write!(f, "rack {rack}: {error}"),
            PopulationError::Worker { worker } => {
                write!(f, "worker {worker} died without delivering its racks")
            }
        }
    }
}

impl std::error::Error for PopulationError {}

/// Everything a population run produced.
#[derive(Debug)]
pub struct PopulationOutcome {
    /// Per-flow reports in global flow order.
    pub reports: Vec<FlowReport>,
    /// Total sender-side energy across all racks (J).
    pub sender_energy_j: f64,
    /// Total receiver-side energy across all racks (J).
    pub receiver_energy_j: f64,
    /// Events through all rack engines combined.
    pub events_processed: u64,
    /// Agent dispatches that carried a coalesced same-timestamp batch.
    pub dispatch_batches: u64,
    /// Packets delivered through those batched dispatches.
    pub batched_pkts: u64,
    /// Scheduler pushes served by the O(1) wheel, across racks.
    pub wheel_pushes: u64,
    /// Scheduler pushes that overflowed to the far-future heap.
    pub heap_pushes: u64,
    /// Heap entries later migrated into the wheel.
    pub migrations: u64,
    /// Latest simulated end time across racks.
    pub sim_end: SimTime,
    /// Wall-clock time for the whole population run (reporting only;
    /// never feeds back into simulated state).
    pub wall: std::time::Duration,
    /// Racks that actually ran (non-empty).
    pub racks_run: usize,
    /// Worker threads used.
    pub threads: usize,
}

/// The deterministic signature of a population run: compared with `==`
/// in the golden and equivalence tests, so batching mode, thread count,
/// and re-runs must all reproduce it bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PopulationFingerprint {
    /// Events through all rack engines.
    pub events_processed: u64,
    /// Latest simulated end time, in nanoseconds.
    pub sim_end_ns: u64,
    /// Bit pattern of the total sender energy (exact, not approximate).
    pub sender_energy_bits: u64,
    /// Total retransmitted segments across all flows.
    pub total_retx: u64,
}

impl PopulationOutcome {
    /// Events per wall-clock second (the BENCH_netsim.json metric).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.events_processed as f64 / secs
    }

    /// Fraction of scheduler pushes served by the O(1) wheel path.
    pub fn wheel_hit_rate(&self) -> f64 {
        let total = self.wheel_pushes + self.heap_pushes;
        if total == 0 {
            return 1.0;
        }
        self.wheel_pushes as f64 / total as f64
    }

    /// Total retransmitted segments across the population.
    pub fn total_retx(&self) -> u64 {
        self.reports.iter().map(|r| r.retransmits).sum()
    }

    /// The deterministic run signature (see [`PopulationFingerprint`]).
    pub fn fingerprint(&self) -> PopulationFingerprint {
        PopulationFingerprint {
            events_processed: self.events_processed,
            sim_end_ns: self.sim_end.as_nanos(),
            sender_energy_bits: self.sender_energy_j.to_bits(),
            total_retx: self.total_retx(),
        }
    }

    /// Mean goodput (Gb/s) per CCA, in order of first appearance in the
    /// report list.
    pub fn goodput_by_cca(&self) -> Vec<(CcaKind, f64)> {
        let mut kinds: Vec<CcaKind> = Vec::new();
        for r in &self.reports {
            if !kinds.contains(&r.cca) {
                kinds.push(r.cca);
            }
        }
        kinds
            .into_iter()
            .map(|kind| {
                let mut sum = 0.0;
                let mut n = 0u64;
                for r in self.reports.iter().filter(|r| r.cca == kind) {
                    sum += r.mean_goodput.gbps();
                    n += 1;
                }
                (kind, if n == 0 { 0.0 } else { sum / n as f64 })
            })
            .collect()
    }

    /// Jain fairness index over per-flow mean goodputs.
    pub fn jain_fairness(&self) -> f64 {
        let xs: Vec<f64> = self.reports.iter().map(|r| r.mean_goodput.gbps()).collect();
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (xs.len() as f64 * sq)
    }
}

/// Derive the isolated per-rack seed: a splitmix-style scramble of the
/// master seed and rack index, so racks never share RNG streams and
/// adding a rack never perturbs another's draws.
fn rack_seed(master: u64, rack: usize) -> u64 {
    let mut z = master ^ (rack as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shard the population into per-rack plans. Flow `f` lands on rack
/// `f % racks` (even CCA mix per rack) and, within the rack, on host
/// `local_index % hosts` — both pure functions of the spec.
fn build_plans(spec: &PopulationSpec) -> Vec<RackPlan> {
    let ccas = spec.cca_assignment();
    let spread_ns = spec.arrival_spread.as_nanos();
    let mut plans: Vec<RackPlan> = (0..spec.racks)
        .map(|rack| RackPlan {
            rack,
            seed: rack_seed(spec.seed, rack),
            mtu: spec.mtu,
            hosts: spec.hosts_per_rack,
            link_gbps: spec.link_gbps,
            hop_delay: spec.hop_delay,
            buffer_bytes: spec.buffer_bytes,
            edge_buffer_bytes: spec.edge_buffer_bytes,
            bond_links: spec.bond_links,
            host_pps_cap: spec.host_pps_cap,
            activity_bin: spec.activity_bin,
            start_jitter: spec.start_jitter,
            delivery_batching: spec.delivery_batching,
            time_limit: SimTime::ZERO, // filled below, once rack bytes are known
            flows: Vec::new(),
        })
        .collect();
    for f in 0..spec.total_flows {
        let start_ns = spread_ns * f as u64 / spec.total_flows as u64;
        plans[f % spec.racks].flows.push(PlanFlow {
            flow: f as u32,
            cca: ccas[f],
            bytes: spec.bytes_per_flow,
            start: SimDuration::from_nanos(start_ns),
        });
    }
    plans.retain(|p| !p.flows.is_empty());
    for plan in &mut plans {
        let rack_bytes: u64 = plan.flows.iter().map(|f| f.bytes).sum();
        plan.time_limit = spec
            .time_limit
            .unwrap_or_else(|| spec.default_time_limit(rack_bytes));
    }
    plans
}

/// Build and run one rack cell to completion. Pure in `plan`: no global
/// state, no host clock, no cross-rack references — the worker-thread
/// contract.
fn run_rack(plan: &RackPlan) -> Result<RackOutcome, PopulationError> {
    let rack = plan.rack;
    let mss = plan.mtu - HEADER_BYTES;
    let mut net = Network::new(plan.seed);
    net.set_delivery_batching(plan.delivery_batching);
    net.enable_activity(plan.activity_bin);
    let cfg = IncastConfig {
        fan_in: plan.hosts,
        edge_rate: Rate::from_gbps(plan.link_gbps),
        bottleneck_rate: Rate::from_gbps(plan.link_gbps),
        hop_delay: plan.hop_delay,
        bond_links: plan.bond_links,
        bottleneck_queue: BottleneckQueue::DropTail {
            capacity_bytes: plan.buffer_bytes,
        },
        edge_buffer_bytes: plan.edge_buffer_bytes,
    };
    let cell = Incast::build(&mut net, &cfg);

    // simlint::allow(rng-discipline, reason = "named stream: rack seed XOR 'popu' salt; rack-local so jitter draws are identical for any thread count or rack subset")
    let mut jitter_rng = netsim::rng::SimRng::new(plan.seed ^ 0x706f_7075);
    let jitters: Vec<SimDuration> = plan
        .flows
        .iter()
        .map(|_| {
            let ns = if plan.start_jitter.is_zero() {
                0
            } else {
                jitter_rng.next_below(plan.start_jitter.as_nanos())
            };
            SimDuration::from_nanos(ns)
        })
        .collect();

    // Path capacity for the constant-cwnd baseline module, mirroring the
    // scenario runner's sizing against BDP + bottleneck buffer.
    let rtt = plan.hop_delay.as_secs_f64() * 4.0;
    let bdp = (plan.link_gbps * 1e9 / 8.0 * rtt) as u64;
    let baseline_cwnd =
        ((bdp + plan.buffer_bytes) as f64 * crate::scenario::BASELINE_CWND_FACTOR) as u64;
    let cca_cfg = CcaConfig::new(mss).with_baseline_cwnd(baseline_cwnd);

    // Round-robin flows onto hosts; each host multiplexes its share.
    let mut host_flows: Vec<Vec<usize>> = vec![Vec::new(); plan.hosts];
    for (l, _) in plan.flows.iter().enumerate() {
        host_flows[l % plan.hosts].push(l);
    }
    for (h, locals) in host_flows.iter().enumerate() {
        if locals.is_empty() {
            continue;
        }
        let subs: Vec<TcpSender> = locals
            .iter()
            .map(|&l| {
                let f = &plan.flows[l];
                let cc = f.cca.build(&cca_cfg);
                let min_gap = plan
                    .host_pps_cap
                    .map(|pps| {
                        let pps = if cc.uses_pacing() {
                            pps * PACING_PPS_BONUS
                        } else {
                            pps
                        };
                        SimDuration::from_secs_f64(1.0 / pps)
                    })
                    .unwrap_or(SimDuration::ZERO);
                let cfg = TcpSenderConfig::bulk(
                    FlowId::from_raw(f.flow),
                    cell.receiver,
                    plan.mtu,
                    f.bytes,
                )
                .with_min_pkt_gap(min_gap)
                .with_rtt_hint(plan.hop_delay * 4)
                .with_start_delay(f.start + jitters[l]);
                TcpSender::new(cfg, cc)
            })
            .collect();
        net.attach_agent(cell.senders[h], Box::new(MuxSender::new(subs)));
    }
    let policy = if plan.flows.iter().any(|f| f.cca == CcaKind::Dctcp) {
        CcaKind::Dctcp.ack_policy()
    } else {
        CcaKind::Cubic.ack_policy()
    };
    net.attach_agent(cell.receiver, Box::new(TcpReceiver::new(policy)));

    match net.run_until(plan.time_limit) {
        RunOutcome::Stalled => {
            return Err(PopulationError::Rack {
                rack,
                error: ScenarioError::Stalled { at: net.now() },
            })
        }
        RunOutcome::Drained
        | RunOutcome::Stopped
        | RunOutcome::TimeLimit
        | RunOutcome::DeadlineExceeded => {}
    }

    // Per-flow reports, in rack-local order (the merger re-sorts).
    let mut reports = Vec::with_capacity(plan.flows.len());
    for (h, locals) in host_flows.iter().enumerate() {
        let Some(mux) = net.agent::<MuxSender>(cell.senders[h]) else {
            continue; // host had no flows
        };
        for (j, &l) in locals.iter().enumerate() {
            let f = &plan.flows[l];
            let flow = FlowId::from_raw(f.flow);
            let stats = mux.sub(j).stats();
            let terminal_at = match (stats.completed_at, stats.aborted_at) {
                (Some(done), _) => done,
                (None, Some(gave_up)) => gave_up,
                (None, None) => {
                    return Err(PopulationError::Rack {
                        rack,
                        error: ScenarioError::Incomplete {
                            flow,
                            limit: plan.time_limit,
                        },
                    })
                }
            };
            let Some(started_at) = stats.started_at else {
                return Err(PopulationError::Rack {
                    rack,
                    error: ScenarioError::Incomplete {
                        flow,
                        limit: plan.time_limit,
                    },
                });
            };
            let fct = terminal_at.saturating_since(started_at);
            reports.push(FlowReport {
                flow,
                cca: f.cca,
                outcome: stats.outcome(),
                bytes: f.bytes,
                bytes_acked: stats.bytes_acked,
                started_at,
                completed_at: terminal_at,
                fct,
                mean_goodput: netsim::units::average_rate(stats.bytes_acked, fct),
                retransmits: stats.retx_segs,
                rtos: stats.rto_count,
                segs_sent: stats.segs_sent,
                acks_processed: stats.acks_processed,
                compute_cost_factor: mux.sub(j).compute_cost_factor(),
            });
        }
    }

    // Energy over [0, last terminal time in the rack], per sender host
    // with the CC cost weighted by each resident flow's ack share (the
    // scenario runner's colocated-sender accounting).
    let window_end = reports
        .iter()
        .map(|r| r.completed_at)
        .max()
        .unwrap_or(SimTime::ZERO);
    let window = window_end.saturating_since(SimTime::ZERO);
    let meter = EnergyMeter::new(calibration::reference_host_model());
    let ref_cost = calibration::cc_cost_per_ack_ref_j();
    let mut sender_energy_j = 0.0;
    let mut receiver_energy_j = 0.0;
    if let Some(activity) = net.activity() {
        // Walk hosts in rack order so float summation order is fixed.
        let mut base = 0usize;
        for (h, locals) in host_flows.iter().enumerate() {
            if locals.is_empty() {
                continue;
            }
            let Some(host_reports) = reports.get(base..base + locals.len()) else {
                debug_assert!(false, "host report slice out of range");
                continue;
            };
            base += locals.len();
            let total_acks: u64 = host_reports.iter().map(|r| r.acks_processed).sum();
            let weighted_factor = if total_acks == 0 {
                0.0
            } else {
                host_reports
                    .iter()
                    .map(|r| r.compute_cost_factor * r.acks_processed as f64)
                    .sum::<f64>()
                    / total_acks as f64
            };
            let ctx = HostContext {
                background_util: 0.0,
                cc_cost_per_ack_j: ref_cost * weighted_factor,
            };
            sender_energy_j += meter
                .measure_host(activity, cell.senders[h], window, ctx)
                .joules;
        }
        receiver_energy_j = meter
            .measure_host(activity, cell.receiver, window, HostContext::default())
            .joules;
    }

    Ok(RackOutcome {
        reports,
        sender_energy_j,
        receiver_energy_j,
        counters: net.counters(),
        sim_end: net.now(),
    })
}

/// Run a population single-threaded. Identical result to
/// [`run_population_with_threads`] with any worker count.
pub fn run_population(spec: &PopulationSpec) -> Result<PopulationOutcome, PopulationError> {
    run_population_with_threads(spec, 1)
}

/// Run a population with `threads` worker threads, whole racks per
/// worker, merged in rack-index order. Because every rack is a pure
/// function of its plan, the outcome is bit-identical for any
/// `threads >= 1`.
pub fn run_population_with_threads(
    spec: &PopulationSpec,
    threads: usize,
) -> Result<PopulationOutcome, PopulationError> {
    let plans = build_plans(spec);
    let threads = threads.clamp(1, plans.len().max(1));
    // simlint::allow(wall-clock, reason = "events_per_sec reporting only; the reading never feeds back into simulated state")
    let t0 = std::time::Instant::now();
    let mut slots: Vec<Option<Result<RackOutcome, PopulationError>>> =
        (0..plans.len()).map(|_| None).collect();
    if threads <= 1 {
        for (i, plan) in plans.iter().enumerate() {
            slots[i] = Some(run_rack(plan));
        }
    } else {
        // Striped static assignment: worker w runs racks w, w+T, w+2T...
        // Assignment affects only wall time, never results — each rack
        // is a pure function of its plan and the merge below is in rack
        // order regardless of which worker ran it.
        let joined = std::thread::scope(|s| {
            let plans = &plans;
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        let mut i = w;
                        while i < plans.len() {
                            out.push((i, run_rack(&plans[i])));
                            i += threads;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join())
                .collect::<Vec<std::thread::Result<_>>>()
        });
        for (w, res) in joined.into_iter().enumerate() {
            let Ok(list) = res else {
                return Err(PopulationError::Worker { worker: w });
            };
            for (i, r) in list {
                slots[i] = Some(r);
            }
        }
    }
    let wall = t0.elapsed();

    // Deterministic merge: rack-index order, then global flow order.
    let mut reports = Vec::with_capacity(spec.total_flows);
    let mut sender_energy_j = 0.0;
    let mut receiver_energy_j = 0.0;
    let mut events_processed = 0u64;
    let mut dispatch_batches = 0u64;
    let mut batched_pkts = 0u64;
    let mut wheel_pushes = 0u64;
    let mut heap_pushes = 0u64;
    let mut migrations = 0u64;
    let mut sim_end = SimTime::ZERO;
    let racks_run = slots.len();
    for (w, slot) in slots.into_iter().enumerate() {
        let Some(result) = slot else {
            return Err(PopulationError::Worker { worker: w });
        };
        let rack = result?;
        reports.extend(rack.reports);
        sender_energy_j += rack.sender_energy_j;
        receiver_energy_j += rack.receiver_energy_j;
        events_processed += rack.counters.events_processed;
        dispatch_batches += rack.counters.dispatch_batches;
        batched_pkts += rack.counters.batched_pkts;
        wheel_pushes += rack.counters.sched.wheel_pushes;
        heap_pushes += rack.counters.sched.heap_pushes;
        migrations += rack.counters.sched.migrations;
        sim_end = sim_end.max(rack.sim_end);
    }
    reports.sort_by_key(|r| r.flow.index());
    Ok(PopulationOutcome {
        reports,
        sender_energy_j,
        receiver_energy_j,
        events_processed,
        dispatch_batches,
        batched_pkts,
        wheel_pushes,
        heap_pushes,
        migrations,
        sim_end,
        wall,
        racks_run,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::KB;

    fn tiny_spec() -> PopulationSpec {
        PopulationSpec::new(48, vec![(CcaKind::Cubic, 10), (CcaKind::Bbr, 1)])
            .with_grid(4, 4)
            .with_bytes_per_flow(200 * KB)
            .with_arrival_spread(SimDuration::from_millis(5))
            .with_seed(42)
    }

    #[test]
    fn mix_assignment_matches_ratios() {
        let spec = PopulationSpec::new(110, vec![(CcaKind::Cubic, 10), (CcaKind::Bbr, 1)]);
        let ccas = spec.cca_assignment();
        let cubic = ccas.iter().filter(|&&c| c == CcaKind::Cubic).count();
        let bbr = ccas.iter().filter(|&&c| c == CcaKind::Bbr).count();
        assert_eq!(cubic, 100);
        assert_eq!(bbr, 10);
        // Smooth: any window of 11 consecutive flows holds exactly 1 BBR.
        for w in ccas.windows(11) {
            assert_eq!(w.iter().filter(|&&c| c == CcaKind::Bbr).count(), 1);
        }
    }

    #[test]
    fn all_flows_complete_in_global_order() {
        let out = run_population(&tiny_spec()).expect("population completes");
        assert_eq!(out.reports.len(), 48);
        for (i, r) in out.reports.iter().enumerate() {
            assert_eq!(r.flow.index(), i, "reports in global flow order");
            assert!(r.outcome.is_completed(), "flow {i} incomplete");
            assert_eq!(r.bytes_acked, 200 * KB);
        }
        assert!(out.sender_energy_j > 0.0);
        assert!(out.receiver_energy_j > 0.0);
        assert!(out.events_processed > 0);
        assert_eq!(out.racks_run, 4);
    }

    #[test]
    fn thread_count_does_not_change_the_fingerprint() {
        let spec = tiny_spec();
        let one = run_population_with_threads(&spec, 1).expect("1 thread");
        let three = run_population_with_threads(&spec, 3).expect("3 threads");
        let eight = run_population_with_threads(&spec, 8).expect("8 threads");
        assert_eq!(one.fingerprint(), three.fingerprint());
        assert_eq!(one.fingerprint(), eight.fingerprint());
        // And the full per-flow detail, not just the digest.
        for (a, b) in one.reports.iter().zip(&three.reports) {
            assert_eq!(a.flow, b.flow);
            assert_eq!(a.fct, b.fct);
            assert_eq!(a.retransmits, b.retransmits);
            assert_eq!(a.acks_processed, b.acks_processed);
        }
    }

    #[test]
    fn batching_off_matches_batching_on() {
        let spec = tiny_spec();
        let on = run_population(&spec).expect("batched");
        let off = run_population(&spec.clone().with_delivery_batching(false)).expect("unbatched");
        assert_eq!(on.fingerprint(), off.fingerprint());
        assert!(
            on.dispatch_batches < on.batched_pkts,
            "batched mode must coalesce somewhere: {} dispatches / {} pkts",
            on.dispatch_batches,
            on.batched_pkts
        );
        assert_eq!(
            off.dispatch_batches, off.batched_pkts,
            "unbatched mode must never coalesce"
        );
    }

    #[test]
    fn identical_seeds_reproduce_bit_for_bit() {
        let spec = tiny_spec();
        let a = run_population(&spec).expect("a");
        let b = run_population(&spec).expect("b");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.sender_energy_j.to_bits(), b.sender_energy_j.to_bits());
    }

    #[test]
    fn fairness_helpers_are_sane() {
        let out = run_population(&tiny_spec()).expect("population completes");
        let jain = out.jain_fairness();
        assert!((0.0..=1.0).contains(&jain), "jain={jain}");
        let by_cca = out.goodput_by_cca();
        assert_eq!(by_cca.len(), 2);
        assert!(by_cca.iter().all(|&(_, g)| g > 0.0));
    }

    #[test]
    fn sparse_rack_grid_handles_fewer_flows_than_racks() {
        let spec = PopulationSpec::new(3, vec![(CcaKind::Cubic, 1)])
            .with_grid(8, 2)
            .with_bytes_per_flow(100 * KB);
        let out = run_population(&spec).expect("sparse population");
        assert_eq!(out.reports.len(), 3);
        assert_eq!(out.racks_run, 3, "empty racks are skipped");
    }
}
