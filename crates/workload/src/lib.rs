//! # workload — traffic generation and the testbed-in-a-box
//!
//! The simulated analogue of the paper's §3 methodology: iperf3-style
//! bulk flows ([`iperf::FlowSpec`]), background compute load from the
//! `stress` tool ([`stress::StressLoad`]), and a one-call scenario runner
//! ([`scenario::run`]) that builds the dumbbell testbed, runs the flows to
//! completion, and measures per-host energy over the experiment window
//! with the calibrated RAPL model.
//!
//! ```
//! use workload::prelude::*;
//! use cca::CcaKind;
//!
//! // One CUBIC flow pushing 100 MB over the 10 Gb/s testbed.
//! let scenario = Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 100_000_000)]);
//! let out = workload::scenario::run(&scenario).unwrap();
//! assert!(out.reports[0].mean_goodput.gbps() > 8.0);
//! ```

#![warn(missing_docs)]

pub mod arrivals;
pub mod iperf;
pub mod population;
pub mod scenario;
pub mod stress;

/// The commonly-used names, re-exported in one place.
pub mod prelude {
    pub use crate::arrivals::{PoissonWorkload, SizeMix};
    pub use crate::iperf::{FlowReport, FlowSpec};
    pub use crate::population::{
        run_population, run_population_with_threads, PopulationError, PopulationFingerprint,
        PopulationOutcome, PopulationSpec,
    };
    pub use crate::scenario::{run, Scenario, ScenarioError, ScenarioOutcome};
    pub use crate::stress::StressLoad;
}
