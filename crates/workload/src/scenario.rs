//! Scenario construction and execution: the paper's testbed in a box.
//!
//! A [`Scenario`] is one run of the experiment machinery: the dumbbell
//! topology (10 Gb/s bottleneck, bonded sender uplinks), one sender host
//! **per flow** — matching the paper's per-socket energy accounting, where
//! each iperf3 flow's power is attributable to its own CPU package — a
//! shared receiver host, the flows themselves, optional background
//! compute load, and the energy measurement window ("from when the
//! experiment began until both flows successfully completed", §1).

use crate::iperf::{FlowReport, FlowSpec};
use crate::stress::StressLoad;
use cca::{CcaConfig, CcaKind};
use energy::calibration::{self, MAX_HOST_PPS, PACING_PPS_BONUS};
use energy::host::HostContext;
use energy::meter::{EnergyMeter, EnergyReading};
use netsim::engine::{EngineCounters, Network, RunOutcome};
use netsim::fault::FaultSpec;
use netsim::ids::FlowId;
use netsim::packet::HEADER_BYTES;
use netsim::time::{SimDuration, SimTime};
use netsim::topology::{BottleneckQueue, Dumbbell, DumbbellConfig};
use netsim::units::Rate;
use obs::{
    FlowEvent, Labels, NoopRecorder, ObsRecorder, ObsReport, Recorder, SharedRecorder, TrackKind,
};
use std::cell::RefCell;
use std::rc::Rc;
use transport::mux::MuxSender;
use transport::receiver::TcpReceiver;
use transport::sender::{TcpSender, TcpSenderConfig};

/// Constant-cwnd sizing for the baseline module, relative to path
/// capacity (BDP + bottleneck buffer). 1.4x keeps the sender permanently
/// overshooting — bursty and lossy (~11% retransmissions) but still
/// progressing through SACK/RACK recovery — which lands its energy
/// penalty in the paper's 8.2-14.2% band (§4.3) — bursty, lossy, but still making progress through SACK
/// recovery, like the paper's §4.3 runs.
pub const BASELINE_CWND_FACTOR: f64 = 1.40;

/// How much observability a run carries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Observe {
    /// No recorder attached: the instrumentation seam costs one
    /// `Option` check per site (the production default).
    #[default]
    Off,
    /// Hooks attached to a [`NoopRecorder`]: every call site fires but
    /// records nothing. Exists so `perf_baseline` can price the seam
    /// itself (`obs_overhead` in `BENCH_netsim.json`).
    Noop,
    /// Full pipeline: metrics registry, per-flow flight recorder, and
    /// Perfetto trace, returned as [`ScenarioOutcome::obs`].
    Full,
}

/// At most this many per-flow energy samples enter a flow's flight
/// ring: power bins arrive every millisecond and would otherwise evict
/// the cwnd/loss/RTO history the ring exists to keep.
const MAX_FLIGHT_ENERGY_SAMPLES: usize = 64;

/// One experiment run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// MTU in bytes (wire size of a full segment).
    pub mtu: u32,
    /// Bottleneck rate in Gb/s (the paper's is 10).
    pub link_gbps: f64,
    /// Per-hop propagation delay.
    pub hop_delay: SimDuration,
    /// Bottleneck buffer in bytes.
    pub buffer_bytes: u64,
    /// The flows; each gets its own sender host.
    pub flows: Vec<FlowSpec>,
    /// Background compute load on every sender host.
    pub background_load: StressLoad,
    /// Master RNG seed.
    pub seed: u64,
    /// Bin width for per-flow throughput traces (`None` = no traces).
    pub trace_bin: Option<SimDuration>,
    /// Bin width for energy activity integration.
    pub activity_bin: SimDuration,
    /// Host packet-processing ceiling in packets/sec (`None` disables).
    pub host_pps_cap: Option<f64>,
    /// Hard simulated-time limit (safety net against livelock).
    pub time_limit: Option<SimTime>,
    /// Put every flow on ONE sender host (kernel multiplexing) instead of
    /// one host per flow. The paper's §5 asks how the unfairness savings
    /// behave in this regime: per-socket power then depends on the
    /// aggregate rate only.
    pub colocate_senders: bool,
    /// Upper bound on the per-flow random start jitter drawn from the
    /// scenario seed. Real iperf3 processes never start nanosecond-
    /// synchronized; the jitter de-phases loss patterns across seeds so
    /// repetitions produce genuine spread (the simulator is otherwise a
    /// pure function of its inputs). `ZERO` disables.
    pub start_jitter: SimDuration,
    /// Fault injection on the bottleneck link ("chaos mode"): random
    /// loss, corruption, duplication, reordering, jitter, scheduled
    /// outages. `None` keeps the wire perfect.
    pub bottleneck_fault: Option<FaultSpec>,
    /// Consecutive-RTO retry budget for every sender (`None` keeps the
    /// transport default). Chaos runs lower this so flows on a dead path
    /// abort in simulated seconds instead of minutes.
    pub max_rto_retries: Option<u32>,
    /// Wall-clock budget for the run (`None` = unbounded). Complements
    /// `time_limit` (simulated time) and the stall watchdog (event
    /// count): a slow-wedged run that keeps making nominal progress is
    /// cut off by the host clock and surfaces as
    /// [`ScenarioError::DeadlineExceeded`].
    pub wall_deadline: Option<std::time::Duration>,
    /// Observability mode (see [`Observe`]).
    pub observe: Observe,
    /// Packet-log ring capacity (`None` disables the log). When
    /// observability is on, the log's eviction count surfaces as the
    /// `pktlog_dropped_records_total` metric.
    pub pkt_log_capacity: Option<usize>,
    /// Same-timestamp delivery batching in the engine (on by default).
    /// The batching-equivalence tests flip it off to pin that coalesced
    /// dispatch is bit-identical to per-packet dispatch.
    pub delivery_batching: bool,
}

/// Engine stall watchdog budget: abort the run if this many events are
/// processed without a single packet delivered to a host. Fault-free
/// runs deliver packets every handful of events, and even a fully
/// backed-off sender generates only a few timer events per RTO, so a
/// genuine run never comes close; only a livelocked event loop does.
const STALL_BUDGET_EVENTS: u64 = 2_000_000;

impl Scenario {
    /// The paper's testbed defaults: 10 Gb/s, ~100 µs base RTT, 1 MB
    /// drop-tail bottleneck buffer, calibrated host pps ceiling.
    pub fn new(mtu: u32, flows: Vec<FlowSpec>) -> Self {
        assert!(mtu > HEADER_BYTES, "MTU must exceed header size");
        assert!(!flows.is_empty(), "need at least one flow");
        Scenario {
            mtu,
            link_gbps: 10.0,
            hop_delay: SimDuration::from_micros(25),
            buffer_bytes: 1_000_000,
            flows,
            background_load: StressLoad::IDLE,
            seed: 1,
            trace_bin: None,
            activity_bin: SimDuration::from_millis(1),
            host_pps_cap: Some(MAX_HOST_PPS),
            time_limit: None,
            colocate_senders: false,
            start_jitter: SimDuration::from_micros(200),
            bottleneck_fault: None,
            max_rto_retries: None,
            wall_deadline: None,
            observe: Observe::Off,
            pkt_log_capacity: None,
            delivery_batching: true,
        }
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the background compute load.
    pub fn with_background_load(mut self, load: StressLoad) -> Self {
        self.background_load = load;
        self
    }

    /// Enable per-flow throughput tracing.
    pub fn with_trace(mut self, bin: SimDuration) -> Self {
        self.trace_bin = Some(bin);
        self
    }

    /// Multiplex all flows onto a single sender host.
    pub fn with_colocated_senders(mut self) -> Self {
        self.colocate_senders = true;
        self
    }

    /// Install a fault spec on the bottleneck link (chaos mode).
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.bottleneck_fault = Some(spec);
        self
    }

    /// Override every sender's consecutive-RTO retry budget.
    pub fn with_max_rto_retries(mut self, retries: u32) -> Self {
        self.max_rto_retries = Some(retries);
        self
    }

    /// Bound the run by host wall-clock time.
    pub fn with_wall_deadline(mut self, budget: std::time::Duration) -> Self {
        self.wall_deadline = Some(budget);
        self
    }

    /// Enable the full observability pipeline (metrics, flight
    /// recorder, Perfetto trace); the run returns an
    /// [`ObsReport`] in [`ScenarioOutcome::obs`].
    pub fn with_observability(mut self) -> Self {
        self.observe = Observe::Full;
        self
    }

    /// Attach a no-op recorder: exercises every instrumentation call
    /// site without recording, for overhead measurement.
    pub fn with_noop_observer(mut self) -> Self {
        self.observe = Observe::Noop;
        self
    }

    /// Enable the engine's packet log with the given ring capacity.
    pub fn with_packet_log(mut self, capacity: usize) -> Self {
        self.pkt_log_capacity = Some(capacity);
        self
    }

    /// Toggle same-timestamp delivery batching in the engine.
    pub fn with_delivery_batching(mut self, on: bool) -> Self {
        self.delivery_batching = on;
        self
    }

    /// Path bandwidth-delay product in bytes (excluding queueing).
    pub fn bdp_bytes(&self) -> u64 {
        let rtt = self.hop_delay.as_secs_f64() * 4.0;
        (self.link_gbps * 1e9 / 8.0 * rtt) as u64
    }

    fn uses_dctcp(&self) -> bool {
        self.flows.iter().any(|f| f.cca == CcaKind::Dctcp)
    }

    /// DCTCP's marking threshold K: the classic guidance is ~65 packets
    /// at 10 Gb/s with 1500-byte frames; we scale by MTU with a floor.
    fn dctcp_k_bytes(&self) -> u64 {
        (65 * self.mtu as u64)
            .min(self.buffer_bytes / 2)
            .max(30_000)
    }

    fn default_time_limit(&self) -> SimTime {
        let total_bytes: u64 = self.flows.iter().map(|f| f.bytes).sum();
        let slowest = self
            .flows
            .iter()
            .map(|f| {
                let rate = f
                    .rate_limit
                    .map(|r| r.bps())
                    .unwrap_or(self.link_gbps * 1e9)
                    .max(1.0);
                f.bytes as f64 * 8.0 / rate + f.start_delay.as_secs_f64()
            })
            .fold(0.0, f64::max);
        let aggregate = total_bytes as f64 * 8.0 / (self.link_gbps * 1e9);
        // Generous: 20x the ideal plus a constant for RTO-heavy runs.
        SimTime::from_secs_f64(20.0 * slowest.max(aggregate) + 30.0)
    }
}

/// Why a scenario failed.
#[derive(Debug)]
pub enum ScenarioError {
    /// A flow did not complete within the time limit.
    Incomplete {
        /// The stuck flow.
        flow: FlowId,
        /// The limit that was hit.
        limit: SimTime,
    },
    /// The engine's stall watchdog tripped: the event loop churned
    /// without delivering a single packet (livelock).
    Stalled {
        /// Simulated time when the watchdog gave up.
        at: SimTime,
    },
    /// The wall-clock budget ([`Scenario::wall_deadline`]) expired with
    /// the run still going: the cell is slow-wedged, not livelocked.
    DeadlineExceeded {
        /// Simulated time reached when the deadline fired.
        at: SimTime,
        /// The budget that was exceeded.
        budget: std::time::Duration,
    },
    /// The scenario's fault spec was rejected at install time (bad
    /// probability, empty/overlapping flap window, oversized jitter).
    Fault(netsim::fault::FaultSpecError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Incomplete { flow, limit } => {
                write!(f, "flow {flow} incomplete at time limit {limit}")
            }
            ScenarioError::Stalled { at } => {
                write!(f, "event loop stalled (no packet progress) at {at}")
            }
            ScenarioError::DeadlineExceeded { at, budget } => {
                write!(
                    f,
                    "wall-clock deadline exceeded ({:.1}s budget) at sim time {at}",
                    budget.as_secs_f64()
                )
            }
            ScenarioError::Fault(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Everything one run produced.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Per-flow iperf-style reports, in flow order.
    pub reports: Vec<FlowReport>,
    /// The measurement window: experiment start until the last flow
    /// completed.
    pub window: SimDuration,
    /// Total sender-side energy over the window (the paper's headline
    /// quantity; see `DESIGN.md` on per-socket accounting).
    pub sender_energy_j: f64,
    /// Per-sender-host energy readings, in flow order.
    pub sender_readings: Vec<EnergyReading>,
    /// The receiver host's energy over the same window (reported
    /// separately; the paper's per-flow arithmetic covers senders).
    pub receiver_energy_j: f64,
    /// Packets dropped at queues.
    pub dropped_pkts: u64,
    /// Packets CE-marked at queues.
    pub marked_pkts: u64,
    /// Frames lost to the fault layer (disjoint from `dropped_pkts`,
    /// which counts congestive queue drops only).
    pub injected_drops: u64,
    /// Frames bit-corrupted by the fault layer (discarded at the host).
    pub injected_corrupts: u64,
    /// Frames duplicated by the fault layer.
    pub injected_dups: u64,
    /// Frames held back for reordering by the fault layer.
    pub injected_reorders: u64,
    /// Frames agents handed to the network (data + acks, all hosts).
    pub originated_pkts: u64,
    /// Frames dispatched to a host agent (clean deliveries).
    pub delivered_pkts: u64,
    /// Corrupted frames discarded at a host NIC before the transport.
    pub corrupt_discards: u64,
    /// How the engine's run loop returned. [`RunOutcome::Drained`] means
    /// the network reached quiescence, which is when the paranoid
    /// checker may assert exact frame conservation.
    pub run_outcome: RunOutcome,
    /// Per-flow throughput series in Gb/s (if tracing was enabled),
    /// in flow order.
    pub throughput_traces: Option<Vec<Vec<f64>>>,
    /// Per-sender-host instantaneous power series (W per activity bin),
    /// aligned with [`Self::power_bin`]. One series per sender host.
    pub sender_power_series_w: Vec<Vec<f64>>,
    /// Bin width of the power series.
    pub power_bin: SimDuration,
    /// Simulation time when the run loop returned (quiescent or limit).
    pub sim_end: SimTime,
    /// Engine performance counters: events processed and scheduler
    /// wheel/heap operation counts. Exact, so they double as a
    /// determinism fingerprint in the golden regression tests.
    pub engine: EngineCounters,
    /// The observability report, when the scenario ran with
    /// [`Observe::Full`] (`None` otherwise).
    pub obs: Option<ObsReport>,
}

impl ScenarioOutcome {
    /// Total energy including the receiver.
    pub fn total_energy_with_receiver_j(&self) -> f64 {
        self.sender_energy_j + self.receiver_energy_j
    }

    /// Average sender power over the window (per the paper's Fig. 6:
    /// energy over iperf time).
    pub fn average_sender_power_w(&self) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.sender_energy_j / self.window.as_secs_f64()
    }
}

/// Run a scenario to completion and measure it.
pub fn run(scenario: &Scenario) -> Result<ScenarioOutcome, ScenarioError> {
    let mss = scenario.mtu - HEADER_BYTES;
    let mut net = Network::new(scenario.seed);
    net.set_delivery_batching(scenario.delivery_batching);
    net.enable_activity(scenario.activity_bin);
    if let Some(bin) = scenario.trace_bin {
        net.enable_flow_trace(bin);
    }
    if let Some(capacity) = scenario.pkt_log_capacity {
        net.enable_packet_log(capacity);
    }

    // The observability seam. `obs_rec` keeps the concrete type so the
    // driver can feed post-run series and finalize; `recorder` is the
    // erased handle shared with the engine and every sender.
    let obs_rec: Option<Rc<RefCell<ObsRecorder>>> =
        (scenario.observe == Observe::Full).then(|| Rc::new(RefCell::new(ObsRecorder::new())));
    let recorder: Option<SharedRecorder> = match scenario.observe {
        Observe::Off => None,
        Observe::Noop => Some(Rc::new(RefCell::new(NoopRecorder))),
        Observe::Full => obs_rec.clone().map(|r| r as Rc<RefCell<dyn obs::Recorder>>),
    };
    if let Some(rec) = &recorder {
        net.set_recorder(rec.clone());
    }

    let queue = if scenario.uses_dctcp() {
        BottleneckQueue::EcnThreshold {
            capacity_bytes: scenario.buffer_bytes,
            mark_bytes: scenario.dctcp_k_bytes(),
        }
    } else {
        BottleneckQueue::DropTail {
            capacity_bytes: scenario.buffer_bytes,
        }
    };
    let cfg = DumbbellConfig {
        bottleneck_rate: Rate::from_gbps(scenario.link_gbps),
        edge_rate: Rate::from_gbps(scenario.link_gbps),
        sender_bond_links: 2,
        hop_delay: scenario.hop_delay,
        bottleneck_queue: queue,
        edge_buffer_bytes: 4_000_000,
        host_min_pkt_gap: SimDuration::ZERO,
        senders: if scenario.colocate_senders {
            1
        } else {
            scenario.flows.len()
        },
    };
    let dumbbell = Dumbbell::build(&mut net, &cfg);
    if let Some(spec) = &scenario.bottleneck_fault {
        net.set_link_fault(dumbbell.bottleneck, spec.clone())
            .map_err(ScenarioError::Fault)?;
    }
    net.set_stall_budget(Some(STALL_BUDGET_EVENTS));

    // Human-readable track names for the trace viewer.
    if let Some(rec) = &obs_rec {
        let mut r = rec.borrow_mut();
        for (i, spec) in scenario.flows.iter().enumerate() {
            r.name_flow(i as u32, &format!("flow {i} ({})", spec.cca.name()));
        }
        for (i, &host) in dumbbell.senders.iter().enumerate() {
            r.name_host(host.index() as u32, &format!("sender {i}"));
        }
        r.name_host(dumbbell.receiver.index() as u32, "receiver");
        r.name_queue(dumbbell.bottleneck.index() as u32, "bottleneck");
    }

    let baseline_cwnd =
        ((scenario.bdp_bytes() + scenario.buffer_bytes) as f64 * BASELINE_CWND_FACTOR) as u64;
    let cca_cfg = CcaConfig::new(mss).with_baseline_cwnd(baseline_cwnd);

    // simlint::allow(rng-discipline, reason = "named stream: scenario seed XOR 'jutt' salt; isolated so adding flows never perturbs engine or fault draws")
    let mut jitter_rng = netsim::rng::SimRng::new(scenario.seed ^ 0x6a75_7474);
    let mut jitters = Vec::with_capacity(scenario.flows.len());
    for _ in &scenario.flows {
        let ns = if scenario.start_jitter.is_zero() {
            0
        } else {
            jitter_rng.next_below(scenario.start_jitter.as_nanos())
        };
        jitters.push(SimDuration::from_nanos(ns));
    }
    let build_sender = |i: usize, spec: &FlowSpec| -> TcpSender {
        let flow = FlowId::from_raw(i as u32);
        let cc = spec.cca.build(&cca_cfg);
        let min_gap = scenario
            .host_pps_cap
            .map(|pps| {
                let pps = if cc.uses_pacing() {
                    pps * PACING_PPS_BONUS
                } else {
                    pps
                };
                SimDuration::from_secs_f64(1.0 / pps)
            })
            .unwrap_or(SimDuration::ZERO);
        // Seed the RTT estimator with the path's base RTT, standing in
        // for the handshake sample (see TcpSenderConfig::initial_rtt_hint).
        let base_rtt = scenario.hop_delay * 4;
        let mut cfg = TcpSenderConfig::bulk(flow, dumbbell.receiver, scenario.mtu, spec.bytes)
            .with_min_pkt_gap(min_gap)
            .with_rtt_hint(base_rtt)
            .with_start_delay(spec.start_delay + jitters[i]);
        if let Some(retries) = scenario.max_rto_retries {
            cfg = cfg.with_max_rto_retries(retries);
        }
        if let Some(rate) = spec.rate_limit {
            cfg = cfg.with_rate_limit(rate);
        }
        for &(at, rate) in &spec.rate_schedule {
            cfg = cfg.with_rate_change(at, rate);
        }
        let mut sender = TcpSender::new(cfg, cc);
        if let Some(rec) = &recorder {
            sender.set_recorder(rec.clone());
        }
        sender
    };
    if scenario.colocate_senders {
        let subs: Vec<TcpSender> = scenario
            .flows
            .iter()
            .enumerate()
            .map(|(i, spec)| build_sender(i, spec))
            .collect();
        net.attach_agent(dumbbell.senders[0], Box::new(MuxSender::new(subs)));
    } else {
        for (i, spec) in scenario.flows.iter().enumerate() {
            net.attach_agent(dumbbell.senders[i], Box::new(build_sender(i, spec)));
        }
    }

    // The receiver's ack policy follows the (single) algorithm family in
    // use; the paper never mixes DCTCP with non-ECN algorithms.
    let policy = if scenario.uses_dctcp() {
        CcaKind::Dctcp.ack_policy()
    } else {
        CcaKind::Cubic.ack_policy()
    };
    net.attach_agent(dumbbell.receiver, Box::new(TcpReceiver::new(policy)));

    let limit = scenario
        .time_limit
        .unwrap_or_else(|| scenario.default_time_limit());
    if let Some(budget) = scenario.wall_deadline {
        // simlint::allow(wall-clock, reason = "converts the caller's wall budget into the engine watchdog deadline; decides when to abandon a run, never what it computes")
        net.set_wall_deadline(Some(std::time::Instant::now() + budget));
    }
    let run_outcome = net.run_until(limit);
    match run_outcome {
        RunOutcome::Stalled => return Err(ScenarioError::Stalled { at: net.now() }),
        RunOutcome::DeadlineExceeded => {
            return Err(ScenarioError::DeadlineExceeded {
                at: net.now(),
                budget: scenario.wall_deadline.unwrap_or_default(),
            })
        }
        RunOutcome::Drained | RunOutcome::Stopped | RunOutcome::TimeLimit => {}
    }

    // Collect per-flow reports; every flow must have reached a terminal
    // state — completed, or cleanly aborted by its retry budget.
    let mut reports = Vec::with_capacity(scenario.flows.len());
    for (i, spec) in scenario.flows.iter().enumerate() {
        let flow = FlowId::from_raw(i as u32);
        let (stats, cost_factor) = if scenario.colocate_senders {
            let mux = net
                .agent::<MuxSender>(dumbbell.senders[0])
                .expect("mux agent present");
            (mux.sub(i).stats(), mux.sub(i).compute_cost_factor())
        } else {
            let sender = net
                .agent::<TcpSender>(dumbbell.senders[i])
                .expect("sender agent present");
            (sender.stats(), sender.compute_cost_factor())
        };
        // An aborted flow's terminal time is the abort; its goodput is
        // over the bytes it actually moved.
        let terminal_at = match (stats.completed_at, stats.aborted_at) {
            (Some(done), _) => done,
            (None, Some(gave_up)) => gave_up,
            (None, None) => return Err(ScenarioError::Incomplete { flow, limit }),
        };
        let started_at = stats
            .started_at
            .ok_or(ScenarioError::Incomplete { flow, limit })?;
        let fct = terminal_at.saturating_since(started_at);
        reports.push(FlowReport {
            flow,
            cca: spec.cca,
            outcome: stats.outcome(),
            bytes: spec.bytes,
            bytes_acked: stats.bytes_acked,
            started_at,
            completed_at: terminal_at,
            fct,
            mean_goodput: netsim::units::average_rate(stats.bytes_acked, fct),
            retransmits: stats.retx_segs,
            rtos: stats.rto_count,
            segs_sent: stats.segs_sent,
            acks_processed: stats.acks_processed,
            compute_cost_factor: cost_factor,
        });
    }

    // Energy: RAPL-style reads over [0, last completion].
    let window_end = reports
        .iter()
        .map(|r| r.completed_at)
        .max()
        .expect("at least one flow");
    let window = window_end.saturating_since(SimTime::ZERO);

    let meter = EnergyMeter::new(calibration::reference_host_model());
    let activity = net.activity().expect("activity recording enabled");
    let ref_cost = calibration::cc_cost_per_ack_ref_j();
    let mut sender_power_series_w = Vec::new();
    let mut sender_readings = Vec::new();
    if scenario.colocate_senders {
        // One host serves every flow: weight the CC cost by each flow's
        // share of the processed acks.
        let total_acks: u64 = reports.iter().map(|r| r.acks_processed).sum();
        let weighted_factor = if total_acks == 0 {
            0.0
        } else {
            reports
                .iter()
                .map(|r| r.compute_cost_factor * r.acks_processed as f64)
                .sum::<f64>()
                / total_acks as f64
        };
        let ctx = HostContext {
            background_util: scenario.background_load.utilization(),
            cc_cost_per_ack_j: ref_cost * weighted_factor,
        };
        sender_readings.push(meter.measure_host(activity, dumbbell.senders[0], window, ctx));
        sender_power_series_w.push(meter.model().power_series(
            activity.series(dumbbell.senders[0]),
            activity.bin(),
            ctx,
        ));
    } else {
        for (i, report) in reports.iter().enumerate() {
            let ctx = HostContext {
                background_util: scenario.background_load.utilization(),
                cc_cost_per_ack_j: ref_cost * report.compute_cost_factor,
            };
            sender_readings.push(meter.measure_host(activity, dumbbell.senders[i], window, ctx));
            sender_power_series_w.push(meter.model().power_series(
                activity.series(dumbbell.senders[i]),
                activity.bin(),
                ctx,
            ));
        }
    }
    let sender_energy_j = sender_readings.iter().map(|r| r.joules).sum();
    let receiver_reading =
        meter.measure_host(activity, dumbbell.receiver, window, HostContext::default());

    let net_stats = net.network_stats();
    let throughput_traces = net.flow_trace().map(|trace| {
        (0..scenario.flows.len())
            .map(|i| trace.throughput_gbps(FlowId::from_raw(i as u32)))
            .collect()
    });

    // Feed post-run series into the recorder, then finalize the report.
    // The engine and senders still hold `Rc` clones inside `net`, so the
    // recorder is cloned out rather than unwrapped.
    let obs = obs_rec.map(|rec| {
        let mut r = rec.borrow_mut();
        let bin_ns = scenario.activity_bin.as_nanos();
        let sender_hosts: &[netsim::ids::NodeId] = if scenario.colocate_senders {
            &dumbbell.senders[..1]
        } else {
            &dumbbell.senders
        };
        for (series, &host) in sender_power_series_w.iter().zip(sender_hosts) {
            for (b, &w) in series.iter().enumerate() {
                r.power_sample(b as u64 * bin_ns, host.index() as u32, w);
            }
        }
        let receiver_series = meter.model().power_series(
            activity.series(dumbbell.receiver),
            activity.bin(),
            HostContext::default(),
        );
        for (b, &w) in receiver_series.iter().enumerate() {
            r.power_sample(b as u64 * bin_ns, dumbbell.receiver.index() as u32, w);
        }
        // Per-flow energy samples (one sender host per flow), strided so
        // they don't evict the flight ring's protocol history.
        if !scenario.colocate_senders {
            for (i, series) in sender_power_series_w.iter().enumerate() {
                let stride = (series.len() / MAX_FLIGHT_ENERGY_SAMPLES).max(1);
                for (b, &w) in series.iter().enumerate().step_by(stride) {
                    r.flow_event(
                        b as u64 * bin_ns,
                        i as u32,
                        FlowEvent::EnergySample {
                            milliwatts: (w * 1_000.0).round().max(0.0) as u64,
                        },
                    );
                }
            }
        }
        if let Some(log) = net.packet_log() {
            r.metrics_mut()
                .counter_add("pktlog_records_total", Labels::new(), log.total_seen());
            r.metrics_mut().counter_add(
                "pktlog_dropped_records_total",
                Labels::new(),
                log.overflowed(),
            );
        }
        if let Some(trace) = net.flow_trace() {
            let trace_bin_ns = trace.bin().as_nanos();
            for i in 0..scenario.flows.len() {
                let series = trace.throughput_gbps(FlowId::from_raw(i as u32));
                for (b, &gbps) in series.iter().enumerate() {
                    r.trace_mut().counter(
                        b as u64 * trace_bin_ns,
                        TrackKind::Flow,
                        i as u32,
                        "throughput_gbps",
                        gbps,
                    );
                }
            }
        }
        let end_ns = net.now().as_nanos();
        drop(r);
        rec.borrow().clone().finalize(end_ns)
    });

    Ok(ScenarioOutcome {
        reports,
        window,
        sender_energy_j,
        sender_readings,
        receiver_energy_j: receiver_reading.joules,
        dropped_pkts: net_stats.dropped_pkts,
        marked_pkts: net_stats.marked_pkts,
        injected_drops: net_stats.injected_drops,
        injected_corrupts: net_stats.injected_corrupts,
        injected_dups: net_stats.injected_dups,
        injected_reorders: net_stats.injected_reorders,
        originated_pkts: net_stats.originated_pkts,
        delivered_pkts: net_stats.delivered_pkts,
        corrupt_discards: net_stats.corrupt_discards,
        run_outcome,
        throughput_traces,
        sender_power_series_w,
        power_bin: scenario.activity_bin,
        sim_end: net.now(),
        engine: net.counters(),
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::{GB, MB};

    fn quick(mtu: u32, cca: CcaKind, bytes: u64) -> ScenarioOutcome {
        run(&Scenario::new(mtu, vec![FlowSpec::bulk(cca, bytes)])).expect("scenario completes")
    }

    #[test]
    fn single_cubic_flow_fills_the_link() {
        let out = quick(9000, CcaKind::Cubic, 500 * MB);
        let goodput = out.reports[0].mean_goodput.gbps();
        assert!(goodput > 8.0, "cubic goodput {goodput} Gbps");
        assert!(out.window >= out.reports[0].fct);
    }

    #[test]
    fn sender_power_sits_near_the_calibrated_point() {
        let out = quick(9000, CcaKind::Cubic, 500 * MB);
        let p = out.average_sender_power_w();
        // A cubic sender at ~line rate, MTU 9000: ~35.8 W (paper Fig. 2).
        assert!((33.0..37.5).contains(&p), "power={p} W");
    }

    #[test]
    fn mtu_1500_is_pps_capped() {
        let out = quick(1500, CcaKind::Cubic, 200 * MB);
        let goodput = out.reports[0].mean_goodput.gbps();
        // 650 kpps * 1460 B payload = ~7.6 Gb/s.
        assert!(goodput < 8.2, "goodput {goodput} should be pps-capped");
        assert!(goodput > 6.5, "goodput {goodput} suspiciously low");
    }

    #[test]
    fn rate_limited_flow_matches_target() {
        let spec = FlowSpec::bulk(CcaKind::Cubic, 125 * MB).with_rate_limit(Rate::from_gbps(2.0));
        let out = run(&Scenario::new(9000, vec![spec])).unwrap();
        let fct = out.reports[0].fct.as_secs_f64();
        // 125 MB ~ 1 Gbit of payload at ~2 Gb/s wire => ~0.5 s.
        assert!((0.45..0.6).contains(&fct), "fct={fct}");
    }

    #[test]
    fn two_cubic_flows_share_fairly() {
        let out = run(&Scenario::new(
            9000,
            vec![
                FlowSpec::bulk(CcaKind::Cubic, 500 * MB),
                FlowSpec::bulk(CcaKind::Cubic, 500 * MB),
            ],
        ))
        .unwrap();
        let g0 = out.reports[0].mean_goodput.gbps();
        let g1 = out.reports[1].mean_goodput.gbps();
        // Jain-fair enough: both in 3.5..6.5 Gbps.
        assert!((3.5..6.5).contains(&g0), "g0={g0}");
        assert!((3.5..6.5).contains(&g1), "g1={g1}");
    }

    #[test]
    fn dctcp_gets_ecn_marks_not_drops() {
        let out = quick(9000, CcaKind::Dctcp, 250 * MB);
        assert!(out.marked_pkts > 0, "DCTCP must see CE marks");
        // Slow-start overshoot may drop a handful of packets before alpha
        // converges; steady state must be mark-governed, not drop-governed.
        assert!(
            out.dropped_pkts * 20 < out.marked_pkts,
            "drops ({}) should be rare next to marks ({})",
            out.dropped_pkts,
            out.marked_pkts
        );
        assert!(out.reports[0].mean_goodput.gbps() > 7.5);
    }

    #[test]
    fn baseline_is_bursty_and_lossy() {
        let out = quick(9000, CcaKind::Baseline, 250 * MB);
        assert!(out.dropped_pkts > 0, "constant cwnd must overflow");
        assert!(out.reports[0].retransmits > 0);
    }

    #[test]
    fn traces_cover_the_transfer() {
        let scenario = Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 100 * MB)])
            .with_trace(SimDuration::from_millis(10));
        let out = run(&scenario).unwrap();
        let traces = out.throughput_traces.unwrap();
        assert_eq!(traces.len(), 1);
        let peak = traces[0].iter().cloned().fold(0.0, f64::max);
        assert!(peak > 7.0, "peak throughput {peak}");
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let s = Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)]).with_seed(7);
        let a = run(&s).unwrap();
        let b = run(&s).unwrap();
        assert_eq!(a.reports[0].fct, b.reports[0].fct);
        assert_eq!(a.sender_energy_j, b.sender_energy_j);
    }

    #[test]
    fn background_load_raises_energy() {
        let base = quick(9000, CcaKind::Cubic, 100 * MB);
        let loaded = run(
            &Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 100 * MB)])
                .with_background_load(StressLoad::fraction(0.5)),
        )
        .unwrap();
        assert!(loaded.sender_energy_j > 1.5 * base.sender_energy_j);
    }

    #[test]
    fn power_series_tracks_the_calibrated_levels() {
        let out = quick(9000, CcaKind::Cubic, 250 * MB);
        assert_eq!(out.sender_power_series_w.len(), 1);
        let series = &out.sender_power_series_w[0];
        assert!(!series.is_empty());
        // Steady-state bins sit near the 10 Gb/s operating point.
        let mid = series[series.len() / 2];
        assert!((34.0..38.0).contains(&mid), "mid-run power {mid}");
        // And integrating the series reproduces the measured energy over
        // the active part of the window.
        let integral: f64 = series.iter().sum::<f64>() * out.power_bin.as_secs_f64();
        assert!(
            (integral - out.sender_energy_j).abs() / out.sender_energy_j < 0.05,
            "series integral {integral} vs energy {}",
            out.sender_energy_j
        );
    }

    #[test]
    fn swift_holds_line_rate_with_tiny_queues() {
        let out = quick(9000, CcaKind::Swift, 200 * MB);
        assert!(out.reports[0].mean_goodput.gbps() > 9.0);
        assert_eq!(out.dropped_pkts, 0, "delay-based swift avoids drops");
    }

    #[test]
    fn hpcc_runs_off_telemetry_without_losses() {
        let out = quick(9000, CcaKind::Hpcc, 200 * MB);
        assert!(out.reports[0].mean_goodput.gbps() > 8.0);
        assert_eq!(out.reports[0].retransmits, 0);
    }

    #[test]
    fn two_swift_flows_share_fairly() {
        let out = run(&Scenario::new(
            9000,
            vec![
                FlowSpec::bulk(CcaKind::Swift, 200 * MB),
                FlowSpec::bulk(CcaKind::Swift, 200 * MB),
            ],
        ))
        .unwrap();
        let g: Vec<f64> = out.reports.iter().map(|r| r.mean_goodput.gbps()).collect();
        let jain = analysis_jain(&g);
        assert!(jain > 0.85, "swift-vs-swift Jain {jain:.3} ({g:?})");
    }

    /// Local Jain helper (workload doesn't depend on the analysis crate).
    fn analysis_jain(xs: &[f64]) -> f64 {
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        (sum * sum) / (xs.len() as f64 * sq)
    }

    #[test]
    fn colocated_flows_share_one_host_budget() {
        let separate = run(&Scenario::new(
            9000,
            vec![
                FlowSpec::bulk(CcaKind::Cubic, 100 * MB),
                FlowSpec::bulk(CcaKind::Cubic, 100 * MB),
            ],
        ))
        .unwrap();
        let colocated = run(&Scenario::new(
            9000,
            vec![
                FlowSpec::bulk(CcaKind::Cubic, 100 * MB),
                FlowSpec::bulk(CcaKind::Cubic, 100 * MB),
            ],
        )
        .with_colocated_senders())
        .unwrap();
        assert_eq!(separate.sender_readings.len(), 2);
        assert_eq!(colocated.sender_readings.len(), 1);
        // One busy host draws less than two half-busy ones (concavity!).
        assert!(colocated.sender_energy_j < separate.sender_energy_j);
        // Both move all the data.
        for out in [&separate, &colocated] {
            assert!(out.reports.iter().all(|r| r.bytes == 100 * MB));
        }
    }

    #[test]
    fn lossy_bottleneck_completes_and_attributes_drops() {
        let out = run(&Scenario::new(
            9000,
            vec![
                FlowSpec::bulk(CcaKind::Cubic, 50 * MB),
                FlowSpec::bulk(CcaKind::Reno, 50 * MB),
            ],
        )
        .with_fault(FaultSpec::random_loss(1e-3))
        .with_seed(11))
        .unwrap();
        assert!(out.injected_drops > 0, "0.1% loss must hit some frames");
        assert!(out.reports.iter().all(|r| r.outcome.is_completed()));
        assert!(
            out.reports.iter().map(|r| r.retransmits).sum::<u64>() > 0,
            "injected losses must force retransmissions"
        );
    }

    #[test]
    fn faulted_runs_are_still_deterministic() {
        let s = Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)])
            .with_fault(
                FaultSpec::random_loss(1e-3).with_reordering(1e-3, SimDuration::from_micros(80)),
            )
            .with_seed(13);
        let a = run(&s).unwrap();
        let b = run(&s).unwrap();
        assert_eq!(a.engine.events_processed, b.engine.events_processed);
        assert_eq!(a.injected_drops, b.injected_drops);
        assert_eq!(a.reports[0].fct, b.reports[0].fct);
        assert_eq!(a.sender_energy_j, b.sender_energy_j);
    }

    #[test]
    fn dead_bottleneck_reports_aborted_flows() {
        use transport::stats::FlowOutcome;
        let out = run(
            &Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 10 * MB)])
                .with_fault(FaultSpec::random_loss(1.0))
                .with_max_rto_retries(3),
        )
        .unwrap();
        let r = &out.reports[0];
        assert!(
            matches!(r.outcome, FlowOutcome::Aborted(_)),
            "outcome={:?}",
            r.outcome
        );
        assert_eq!(r.bytes_acked, 0);
        assert!(r.rtos >= 4);
        // The abort bounds the measurement window instead of hanging the
        // run at the time limit.
        assert!(
            out.sim_end < SimTime::from_secs(30),
            "sim_end={}",
            out.sim_end
        );
    }

    #[test]
    fn mid_run_flap_delays_but_does_not_kill_the_flow() {
        let clean =
            run(&Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 100 * MB)]).with_seed(5))
                .unwrap();
        let flapped = run(
            &Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 100 * MB)])
                .with_seed(5)
                .with_fault(
                    FaultSpec::default()
                        .with_flap(SimTime::from_millis(20), SimTime::from_millis(120)),
                ),
        )
        .unwrap();
        assert!(flapped.reports[0].outcome.is_completed());
        assert!(flapped.injected_drops > 0, "the outage must eat frames");
        // A 100 ms outage costs roughly that much completion time.
        assert!(
            flapped.reports[0].fct >= clean.reports[0].fct + SimDuration::from_millis(50),
            "clean={} flapped={}",
            clean.reports[0].fct,
            flapped.reports[0].fct
        );
    }

    #[test]
    fn expired_wall_deadline_surfaces_as_a_typed_error() {
        let s = Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 500 * MB)])
            .with_wall_deadline(std::time::Duration::ZERO);
        let err = run(&s).unwrap_err();
        assert!(
            matches!(err, ScenarioError::DeadlineExceeded { .. }),
            "got {err}"
        );
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn outcome_carries_conservation_counters() {
        let out = quick(9000, CcaKind::Cubic, 50 * MB);
        assert_eq!(out.run_outcome, RunOutcome::Drained);
        assert!(out.originated_pkts > 0);
        assert!(out.delivered_pkts > 0);
        assert_eq!(out.corrupt_discards, 0);
        // Quiescent clean run: every originated frame was delivered or
        // congestively dropped.
        assert_eq!(
            out.originated_pkts,
            out.delivered_pkts + out.dropped_pkts,
            "originated {} = delivered {} + dropped {}",
            out.originated_pkts,
            out.delivered_pkts,
            out.dropped_pkts
        );
    }

    #[test]
    fn observability_does_not_perturb_the_run() {
        let plain = Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)]).with_seed(7);
        let observed = plain.clone().with_observability().with_packet_log(4096);
        let a = run(&plain).unwrap();
        let b = run(&observed).unwrap();
        assert_eq!(a.engine.events_processed, b.engine.events_processed);
        assert_eq!(a.sim_end, b.sim_end);
        assert_eq!(a.sender_energy_j, b.sender_energy_j);
        assert!(a.obs.is_none());
        let report = b.obs.expect("full observability returns a report");
        // The pipeline saw the transfer end-to-end.
        assert_eq!(report.metrics.counter_total("flows_started_total"), 1);
        assert_eq!(report.metrics.counter_total("flows_completed_total"), 1);
        assert!(report.metrics.counter_total("tcp_retx_total") > 0 || a.dropped_pkts == 0);
        assert!(report.metrics.counter_total("pktlog_records_total") > 0);
        let json = report.perfetto_json();
        assert!(json.contains("\"name\":\"transfer\""));
        assert!(json.contains("cwnd_bytes"));
        assert!(json.contains("power_w"));
        assert!(json.contains("queue_bytes"));
        assert!(report.prometheus_text().contains("host_power_mw"));
    }

    #[test]
    fn noop_observer_matches_plain_fingerprint() {
        let plain = Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 50 * MB)]).with_seed(7);
        let noop = plain.clone().with_noop_observer();
        let a = run(&plain).unwrap();
        let b = run(&noop).unwrap();
        assert_eq!(a.engine.events_processed, b.engine.events_processed);
        assert_eq!(a.sender_energy_j, b.sender_energy_j);
        assert!(b.obs.is_none(), "noop mode produces no report");
    }

    #[test]
    fn observed_abort_dumps_the_flight_ring() {
        use transport::stats::FlowOutcome;
        let out = run(
            &Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 10 * MB)])
                .with_fault(FaultSpec::random_loss(1.0))
                .with_max_rto_retries(3)
                .with_observability(),
        )
        .unwrap();
        assert!(matches!(out.reports[0].outcome, FlowOutcome::Aborted(_)));
        let report = out.obs.unwrap();
        assert_eq!(report.metrics.counter_total("flows_aborted_total"), 1);
        let dump = report.flight_dump_flow(0);
        assert!(
            dump.contains("ABORTED"),
            "flight ring ends in abort:\n{dump}"
        );
        assert!(dump.contains("rto"), "the RTO spiral is in the ring");
        assert!(report.perfetto_json().contains("transfer (aborted)"));
    }

    #[test]
    fn observed_trace_is_byte_reproducible() {
        let s = Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 25 * MB)])
            .with_seed(3)
            .with_trace(SimDuration::from_millis(10))
            .with_observability();
        let a = run(&s).unwrap().obs.unwrap();
        let b = run(&s).unwrap().obs.unwrap();
        assert_eq!(a.perfetto_json(), b.perfetto_json());
        assert_eq!(a.prometheus_text(), b.prometheus_text());
    }

    #[test]
    fn time_limit_produces_incomplete_error() {
        let mut s = Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, GB)]);
        s.time_limit = Some(SimTime::from_millis(1));
        let err = run(&s).unwrap_err();
        assert!(matches!(err, ScenarioError::Incomplete { .. }));
        assert!(err.to_string().contains("incomplete"));
    }
}
