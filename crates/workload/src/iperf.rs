//! iperf3-style flow specifications and reports.
//!
//! The paper generates all traffic with `iperf3` (§3): bulk transfers of a
//! fixed byte count, optionally throttled to a target bitrate. A
//! [`FlowSpec`] describes one such client; a [`FlowReport`] is the
//! simulated analogue of `iperf3 --json` output plus the kernel counters
//! (`ss -i`) the paper reads.

use cca::CcaKind;
use netsim::ids::FlowId;
use netsim::time::{SimDuration, SimTime};
use netsim::units::Rate;
use transport::stats::FlowOutcome;

/// A timed rate-limit change (absolute time, new limit; `None` lifts it).
pub type RateChange = (SimTime, Option<Rate>);

/// One iperf3 client: a bulk transfer driven by a chosen CCA.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Congestion control algorithm.
    pub cca: CcaKind,
    /// Application bytes to transfer.
    pub bytes: u64,
    /// Optional throttle (`iperf3 -b`), in wire bits/sec.
    pub rate_limit: Option<Rate>,
    /// Start offset from simulation start.
    pub start_delay: SimDuration,
    /// Timed rate-limit changes (mid-experiment re-allocation).
    pub rate_schedule: Vec<RateChange>,
}

impl FlowSpec {
    /// An unthrottled bulk transfer.
    pub fn bulk(cca: CcaKind, bytes: u64) -> Self {
        FlowSpec {
            cca,
            bytes,
            rate_limit: None,
            start_delay: SimDuration::ZERO,
            rate_schedule: Vec::new(),
        }
    }

    /// Throttle to `rate`.
    pub fn with_rate_limit(mut self, rate: Rate) -> Self {
        self.rate_limit = Some(rate);
        self
    }

    /// Delay the start.
    pub fn with_start_delay(mut self, delay: SimDuration) -> Self {
        self.start_delay = delay;
        self
    }

    /// Schedule a rate-limit change at an absolute time.
    pub fn with_rate_change(mut self, at: SimTime, rate: Option<Rate>) -> Self {
        self.rate_schedule.push((at, rate));
        self
    }
}

/// What one flow did, in iperf3-report terms.
#[derive(Clone, Copy, Debug)]
pub struct FlowReport {
    /// Flow id inside the scenario.
    pub flow: FlowId,
    /// Algorithm name.
    pub cca: CcaKind,
    /// How the flow ended: completed, or aborted by the sender's RTO
    /// retry budget (fault-injection runs can kill the path).
    pub outcome: FlowOutcome,
    /// Application bytes *requested* (iperf3 `-n`).
    pub bytes: u64,
    /// Application bytes actually acknowledged; equals `bytes` for a
    /// completed flow, less for an aborted one.
    pub bytes_acked: u64,
    /// When the first segment left the host.
    pub started_at: SimTime,
    /// When the flow reached its terminal state: last byte acked for a
    /// completed flow, the moment the sender gave up for an aborted one.
    pub completed_at: SimTime,
    /// Flow completion time (iperf3's wall time). For an aborted flow,
    /// the time from start until the abort.
    pub fct: SimDuration,
    /// Mean goodput over the FCT.
    pub mean_goodput: Rate,
    /// Retransmitted segments (the paper's Fig. 8 metric).
    pub retransmits: u64,
    /// Retransmission timeouts.
    pub rtos: u64,
    /// Data segments sent in total.
    pub segs_sent: u64,
    /// Acks the sender processed (CC energy driver).
    pub acks_processed: u64,
    /// The algorithm's relative per-ack compute cost.
    pub compute_cost_factor: f64,
}

impl FlowReport {
    /// Retransmission ratio over all sent segments.
    pub fn retx_ratio(&self) -> f64 {
        if self.segs_sent == 0 {
            return 0.0;
        }
        self.retransmits as f64 / self.segs_sent as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_compose() {
        let s = FlowSpec::bulk(CcaKind::Cubic, 1_000_000)
            .with_rate_limit(Rate::from_gbps(5.0))
            .with_start_delay(SimDuration::from_millis(10));
        assert_eq!(s.cca, CcaKind::Cubic);
        assert_eq!(s.bytes, 1_000_000);
        assert_eq!(s.rate_limit.unwrap().gbps(), 5.0);
        assert_eq!(s.start_delay, SimDuration::from_millis(10));
    }

    #[test]
    fn retx_ratio_safe_on_empty() {
        let r = FlowReport {
            flow: FlowId::from_raw(0),
            cca: CcaKind::Reno,
            outcome: FlowOutcome::Completed,
            bytes: 0,
            bytes_acked: 0,
            started_at: SimTime::ZERO,
            completed_at: SimTime::ZERO,
            fct: SimDuration::ZERO,
            mean_goodput: Rate::ZERO,
            retransmits: 0,
            rtos: 0,
            segs_sent: 0,
            acks_processed: 0,
            compute_cost_factor: 1.0,
        };
        assert_eq!(r.retx_ratio(), 0.0);
    }
}
