//! Background compute load, the simulated analogue of the paper's use of
//! the Linux `stress` tool (§4.2): "generate load on a certain number of
//! cores at the end-host in addition to the CUBIC traffic".

/// A host's background compute load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StressLoad {
    /// Total cores on the host (the testbed's dual E5-2630v3 exposes 32
    /// hyper-threads per socket pair; 16 per socket).
    pub cores_total: u32,
    /// Cores kept busy by `stress`.
    pub cores_loaded: u32,
}

impl StressLoad {
    /// No background load.
    pub const IDLE: StressLoad = StressLoad {
        cores_total: 16,
        cores_loaded: 0,
    };

    /// Load a fraction of a 16-core socket (rounded to whole cores).
    pub fn fraction(f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "load fraction in [0,1]");
        StressLoad {
            cores_total: 16,
            cores_loaded: (f * 16.0).round() as u32,
        }
    }

    /// Background utilization in `[0, 1]`, as the energy model consumes it.
    pub fn utilization(self) -> f64 {
        if self.cores_total == 0 {
            return 0.0;
        }
        (self.cores_loaded as f64 / self.cores_total as f64).clamp(0.0, 1.0)
    }
}

impl Default for StressLoad {
    fn default() -> Self {
        StressLoad::IDLE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_rounds_to_cores() {
        assert_eq!(StressLoad::fraction(0.25).cores_loaded, 4);
        assert_eq!(StressLoad::fraction(0.5).cores_loaded, 8);
        assert_eq!(StressLoad::fraction(0.75).cores_loaded, 12);
        assert_eq!(StressLoad::fraction(0.0).cores_loaded, 0);
        assert_eq!(StressLoad::fraction(1.0).cores_loaded, 16);
    }

    #[test]
    fn utilization_roundtrips() {
        assert_eq!(StressLoad::IDLE.utilization(), 0.0);
        assert!((StressLoad::fraction(0.25).utilization() - 0.25).abs() < 1e-12);
        assert!((StressLoad::fraction(0.75).utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_core_count_is_safe() {
        let s = StressLoad {
            cores_total: 0,
            cores_loaded: 0,
        };
        assert_eq!(s.utilization(), 0.0);
    }
}
