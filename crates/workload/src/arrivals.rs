//! Production-style traffic: Poisson flow arrivals with heavy-tailed
//! sizes.
//!
//! The paper's §5 asks whether the energy findings hold "with the sorts
//! of workloads used in production data centers". This module generates
//! them: flows arrive as a Poisson process and draw sizes from a
//! heavy-tailed mix patterned on published datacenter distributions
//! (many mice, a few elephants carrying most bytes).

use crate::iperf::FlowSpec;
use cca::CcaKind;
use netsim::rng::SimRng;
use netsim::time::SimDuration;

/// A heavy-tailed flow-size distribution: a discrete mix of (probability,
/// size) classes, defaulting to a web-search-like pattern.
#[derive(Clone, Debug)]
pub struct SizeMix {
    /// `(weight, bytes)` classes; weights need not sum to 1.
    pub classes: Vec<(f64, u64)>,
}

impl SizeMix {
    /// A web-search-like mix: 60% mice (100 KB), 30% medium (1 MB),
    /// 9% large (10 MB), 1% elephants (100 MB). Elephants carry most of
    /// the bytes, as in the DCTCP/pFabric workload studies.
    pub fn websearch() -> SizeMix {
        SizeMix {
            classes: vec![
                (0.60, 100_000),
                (0.30, 1_000_000),
                (0.09, 10_000_000),
                (0.01, 100_000_000),
            ],
        }
    }

    /// Mean flow size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        let total_w: f64 = self.classes.iter().map(|c| c.0).sum();
        self.classes.iter().map(|&(w, b)| w * b as f64).sum::<f64>() / total_w
    }

    /// Draw one size.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let total_w: f64 = self.classes.iter().map(|c| c.0).sum();
        let mut x = rng.next_f64() * total_w;
        for &(w, b) in &self.classes {
            if x < w {
                return b;
            }
            x -= w;
        }
        self.classes.last().expect("non-empty mix").1
    }
}

/// A Poisson open-loop workload description.
#[derive(Clone, Debug)]
pub struct PoissonWorkload {
    /// Target offered load as a fraction of the link rate.
    pub load: f64,
    /// Link rate in Gb/s (to convert load to arrival rate).
    pub link_gbps: f64,
    /// Flow-size distribution.
    pub sizes: SizeMix,
    /// Number of flows to generate.
    pub flows: usize,
    /// Congestion control for every flow.
    pub cca: CcaKind,
}

impl PoissonWorkload {
    /// A workload offering `load` of a 10 Gb/s link with the web-search
    /// mix.
    pub fn new(load: f64, flows: usize, cca: CcaKind) -> Self {
        assert!(load > 0.0 && load < 1.0, "open-loop load must be in (0,1)");
        assert!(flows > 0);
        PoissonWorkload {
            load,
            link_gbps: 10.0,
            sizes: SizeMix::websearch(),
            flows,
            cca,
        }
    }

    /// Mean inter-arrival time for the configured load.
    pub fn mean_interarrival(&self) -> SimDuration {
        let bytes_per_sec = self.load * self.link_gbps * 1e9 / 8.0;
        let arrivals_per_sec = bytes_per_sec / self.sizes.mean_bytes();
        SimDuration::from_secs_f64(1.0 / arrivals_per_sec)
    }

    /// Generate the flow specs: exponential inter-arrivals, sampled sizes.
    pub fn generate(&self, seed: u64) -> Vec<FlowSpec> {
        // simlint::allow(rng-discipline, reason = "named stream: workload seed XOR 'pois' salt; arrival sampling must not share draws with any engine stream")
        let mut rng = SimRng::new(seed ^ 0x706f_6973);
        let mean_gap = self.mean_interarrival().as_secs_f64();
        let mut t = 0.0;
        (0..self.flows)
            .map(|_| {
                // Exponential(mean_gap) via inverse transform.
                let u = rng.next_f64().max(1e-12);
                t += -mean_gap * u.ln();
                FlowSpec::bulk(self.cca, self.sizes.sample(&mut rng))
                    .with_start_delay(SimDuration::from_secs_f64(t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn websearch_mix_is_elephant_dominated() {
        let mix = SizeMix::websearch();
        // Mean ~ 0.6*0.1 + 0.3*1 + 0.09*10 + 0.01*100 MB = 2.26 MB.
        assert!((mix.mean_bytes() - 2_260_000.0).abs() < 1.0);
        // Elephants (1% of flows) carry ~44% of bytes.
        let elephant_share = 0.01 * 100e6 / mix.mean_bytes();
        assert!(elephant_share > 0.4);
    }

    #[test]
    fn sampling_matches_weights() {
        let mix = SizeMix::websearch();
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let mice = (0..n).filter(|_| mix.sample(&mut rng) == 100_000).count() as f64 / n as f64;
        assert!((mice - 0.6).abs() < 0.01, "mice fraction {mice}");
    }

    #[test]
    fn interarrival_matches_load() {
        let w = PoissonWorkload::new(0.5, 100, CcaKind::Cubic);
        // 0.5 * 10 Gb/s = 625 MB/s offered; mean size 2.26 MB
        // -> ~276 arrivals/s -> ~3.6 ms inter-arrival.
        let gap = w.mean_interarrival().as_secs_f64();
        assert!((gap - 0.00362).abs() < 0.0002, "gap {gap}");
    }

    #[test]
    fn generated_arrivals_are_ordered_and_sized() {
        let w = PoissonWorkload::new(0.3, 50, CcaKind::Cubic);
        let flows = w.generate(42);
        assert_eq!(flows.len(), 50);
        let mut prev = SimDuration::ZERO;
        for f in &flows {
            assert!(f.start_delay >= prev, "arrivals must be ordered");
            prev = f.start_delay;
            assert!(f.bytes >= 100_000);
        }
        // Determinism.
        let again = w.generate(42);
        assert_eq!(flows.len(), again.len());
        assert!(flows
            .iter()
            .zip(&again)
            .all(|(a, b)| a.start_delay == b.start_delay && a.bytes == b.bytes));
    }

    #[test]
    fn empirical_rate_tracks_the_poisson_mean() {
        let w = PoissonWorkload::new(0.5, 2000, CcaKind::Cubic);
        let flows = w.generate(7);
        let span = flows.last().unwrap().start_delay.as_secs_f64();
        let measured_rate = flows.len() as f64 / span;
        let expected = 1.0 / w.mean_interarrival().as_secs_f64();
        assert!(
            (measured_rate - expected).abs() / expected < 0.1,
            "rate {measured_rate} vs {expected}"
        );
    }
}
