//! Equivalence property: same-timestamp delivery batching is a pure
//! dispatch optimization. For any small population — any rack grid, CCA
//! mix, seed, and transfer size — running with batching on and off must
//! produce bit-identical flow reports and the same engine fingerprint.
//!
//! The determinism argument being pinned: agent callbacks only buffer
//! commands, so handing an agent `[p1, p2]` in one call draws the same
//! RNG stream and emits the same command sequence as two back-to-back
//! calls, and only *consecutive* `(at, seq)` events coalesce.

use cca::CcaKind;
use proptest::prelude::*;
use workload::prelude::*;

/// Exact per-flow equality, including every float bit: `Debug` for
/// `f64` prints the shortest round-trip representation, so two reports
/// render identically iff their fields are numerically identical.
fn report_signature(out: &workload::population::PopulationOutcome) -> String {
    format!("{:?}", out.reports)
}

fn mix_strategy() -> impl Strategy<Value = Vec<(CcaKind, u32)>> {
    prop_oneof![
        Just(vec![(CcaKind::Cubic, 1)]),
        Just(vec![(CcaKind::Bbr, 1)]),
        Just(vec![(CcaKind::Cubic, 10), (CcaKind::Bbr, 1)]),
        Just(vec![(CcaKind::Cubic, 1), (CcaKind::Reno, 1)]),
        Just(vec![
            (CcaKind::Cubic, 3),
            (CcaKind::Bbr, 2),
            (CcaKind::Dctcp, 1)
        ]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched vs per-packet delivery: bit-identical reports and
    /// fingerprints across random small populations.
    #[test]
    fn batched_delivery_is_bit_identical(
        flows in 8usize..48,
        racks in 1usize..4,
        hosts in 2usize..6,
        bond in 1usize..4,
        kb_per_flow in 50u64..300,
        seed in 0u64..1_000_000,
        mix in mix_strategy(),
    ) {
        let mut spec = PopulationSpec::new(flows, mix)
            .with_grid(racks, hosts)
            .with_bytes_per_flow(kb_per_flow * 1_000)
            .with_seed(seed);
        spec.bond_links = bond;

        let batched = run_population(&spec.clone().with_delivery_batching(true))
            .expect("batched population");
        let unbatched = run_population(&spec.with_delivery_batching(false))
            .expect("unbatched population");

        prop_assert_eq!(batched.fingerprint(), unbatched.fingerprint());
        prop_assert_eq!(report_signature(&batched), report_signature(&unbatched));
    }
}
