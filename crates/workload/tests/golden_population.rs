//! Golden determinism fingerprint for the `bulk_10k_flows` population
//! at tiny scale (110 flows, 2 racks — the full scenario shrunk ~100x
//! with the same mix, per-flow size, and seed).
//!
//! These constants pin the population path bit-for-bit: event count,
//! simulated end time, the exact bit pattern of the total sender energy,
//! and the retransmit total. Any engine, transport, or workload change
//! that moves one of them is a *behavior* change, not an optimization,
//! and must be justified (and these constants regenerated) explicitly.

use workload::prelude::*;

/// Regenerate with:
/// `PopulationSpec::bulk_10k_flows_tiny()` → `run_population(..).fingerprint()`.
const GOLDEN: workload::population::PopulationFingerprint =
    workload::population::PopulationFingerprint {
        events_processed: 95_035,
        sim_end_ns: 632_312_729,
        sender_energy_bits: 4_637_053_659_719_401_472,
        total_retx: 1_989,
    };

#[test]
fn bulk_10k_flows_tiny_fingerprint_is_pinned() {
    let out = run_population(&PopulationSpec::bulk_10k_flows_tiny()).expect("tiny population");
    assert_eq!(
        out.fingerprint(),
        GOLDEN,
        "bulk_10k_flows_tiny moved: engine/transport behavior changed \
         (energy was {} J)",
        out.sender_energy_j
    );
    let done = out
        .reports
        .iter()
        .filter(|r| r.outcome.is_completed())
        .count();
    assert_eq!(done, 110, "every flow completes at tiny scale");
}

#[test]
fn bulk_10k_flows_tiny_fingerprint_holds_across_threads_and_batching() {
    // The same golden constants must hold with intra-cell parallelism
    // and with batching disabled: both are pure execution strategies.
    let threads = workload::population::run_population_with_threads(
        &PopulationSpec::bulk_10k_flows_tiny(),
        4,
    )
    .expect("threaded tiny population");
    assert_eq!(threads.fingerprint(), GOLDEN);

    let unbatched =
        run_population(&PopulationSpec::bulk_10k_flows_tiny().with_delivery_batching(false))
            .expect("unbatched tiny population");
    assert_eq!(unbatched.fingerprint(), GOLDEN);
}
