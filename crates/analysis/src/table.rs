//! Plain-text table rendering for the figure-regeneration binaries.
//!
//! Every experiment prints the same rows/series its figure in the paper
//! shows; this module keeps the formatting in one place so all binaries
//! look alike.

/// A simple right-aligned column table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (also available via `Display`).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float with three significant decimals, the house style.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a value ± deviation pair.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.3} ± {std:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["cca", "energy (J)"]);
        t.row(["cubic", "1700.1"]);
        t.row(["bbr", "1500.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("cca"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].ends_with("1700.1"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_enforced() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pm(1.0, 0.25), "1.000 ± 0.250");
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
