//! Descriptive statistics used by the experiment harness.
//!
//! The paper repeats every scenario ten times and reports means with
//! standard deviations (§3), and quotes two correlations: energy vs power
//! (-0.8, §4.3) and energy vs retransmissions (0.47, §4.5). These are the
//! estimators behind those numbers.

use serde::{Deserialize, Serialize};

/// Mean of a sample (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (Bessel-corrected; 0 for n < 2).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Pearson correlation coefficient. Returns 0 when either variable is
/// constant (no linear relationship is defined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Ordinary least squares `y = a + b x`; returns `(a, b)`.
/// Requires at least two points and non-constant `x`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for i in 0..xs.len() {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    assert!(sxx > 0.0, "x must not be constant");
    let b = sxy / sxx;
    (my - b * mx, b)
}

/// The `q`-quantile (0..=1) of a sample by the nearest-rank method.
/// Panics on an empty sample or out-of-range `q`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile order in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// A summarized repeated measurement: mean ± std over n runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Number of runs.
    pub n: usize,
}

impl Summary {
    /// Summarize a sample.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            mean: mean(xs),
            std: std_dev(xs),
            n: xs.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        // Sample std of this classic dataset is ~2.138.
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let pos: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let neg: Vec<f64> = xs.iter().map(|x| -3.0 * x).collect();
        assert!((pearson(&xs, &pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_variable_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        // Symmetric cloud around the origin.
        let xs = [-1.0, -1.0, 1.0, 1.0];
        let ys = [-1.0, 1.0, -1.0, 1.0];
        assert!(pearson(&xs, &ys).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 - 0.5 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 4.0).abs() < 1e-12);
        assert!((b + 0.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 0.99), 5.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_rejects_empty() {
        percentile(&[], 0.5);
    }

    #[test]
    fn summary_formats() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert!(format!("{s}").starts_with("2.000 ±"));
    }
}
