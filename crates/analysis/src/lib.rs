//! # analysis — statistics and reporting utilities
//!
//! Means/deviations over repeated runs (the paper repeats each scenario
//! ten times), the two correlations the paper quotes (energy-vs-power
//! ≈ -0.8, energy-vs-retransmissions ≈ 0.47), Jain's fairness index (the
//! objective the paper argues against optimizing), and plain-text table
//! rendering for the figure-regeneration binaries.

#![warn(missing_docs)]

pub mod chart;
pub mod fairness;
pub mod stats;
pub mod table;

/// The commonly-used names, re-exported in one place.
pub mod prelude {
    pub use crate::chart::{bar_chart, line_chart};
    pub use crate::fairness::{flow1_fraction, jain_index};
    pub use crate::stats::{linear_fit, mean, pearson, percentile, std_dev, Summary};
    pub use crate::table::{f3, pm, Table};
}
