//! Terminal charts for the figure-regeneration binaries.
//!
//! Unicode block-element renderings good enough to *see* the paper's
//! shapes in a terminal: an x-y line chart for the concave power curve,
//! and horizontal bars for the per-CCA comparisons.

/// Render an x-y series as a fixed-size line chart. Points are scaled
/// into `width x height` character cells; multiple series share axes and
/// get distinct glyphs.
pub fn line_chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "chart too small");
    let pts: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    if pts.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    const GLYPHS: [char; 4] = ['*', 'o', '+', 'x'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in s.iter() {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            // First-drawn series keeps contested cells (legend order wins).
            if grid[row][cx] == ' ' {
                grid[row][cx] = glyph;
            }
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>8.2} |")
        } else if i == height - 1 {
            format!("{y_min:>8.2} |")
        } else {
            format!("{:>8} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>8} +{}\n{:>10}{x_min:<.2}{}{x_max:>.2}\n",
        "",
        "-".repeat(width),
        "",
        " ".repeat(width.saturating_sub(8)),
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], name));
    }
    out
}

/// Render labelled values as horizontal bars, scaled to `width` cells.
pub fn bar_chart(rows: &[(String, f64)], width: usize, unit: &str) -> String {
    assert!(width >= 8);
    if rows.is_empty() {
        return String::from("(no data)\n");
    }
    let max = rows.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(4);
    let mut out = String::new();
    for (label, value) in rows {
        let cells = if max > 0.0 {
            ((value / max) * width as f64).round().max(0.0) as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:>label_w$} |{}{} {value:.3} {unit}\n",
            "#".repeat(cells),
            " ".repeat(width - cells.min(width)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_scales_and_labels() {
        let curve: Vec<(f64, f64)> = (0..=10).map(|i| (i as f64, (i as f64).sqrt())).collect();
        let chord: Vec<(f64, f64)> = vec![(0.0, 0.0), (10.0, 10f64.sqrt())];
        let s = line_chart(&[("curve", &curve), ("chord", &chord)], 40, 10);
        assert!(s.contains('*'), "curve glyph present");
        assert!(s.contains('o'), "chord glyph present");
        assert!(s.contains("curve"));
        assert!(s.contains("0.00"));
        assert_eq!(s.lines().filter(|l| l.contains('|')).count(), 10);
    }

    #[test]
    fn line_chart_handles_degenerate_input() {
        assert!(line_chart(&[("empty", &[])], 20, 5).contains("no data"));
        let flat = [(1.0, 2.0)];
        let s = line_chart(&[("one", &flat)], 20, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn bar_chart_is_proportional() {
        let rows = vec![("bbr".to_string(), 1.0), ("cubic".to_string(), 2.0)];
        let s = bar_chart(&rows, 20, "kJ");
        let bbr_bar = s.lines().next().unwrap().matches('#').count();
        let cubic_bar = s.lines().nth(1).unwrap().matches('#').count();
        assert_eq!(cubic_bar, 20);
        assert_eq!(bbr_bar, 10);
        assert!(s.contains("2.000 kJ"));
    }

    #[test]
    fn bar_chart_handles_empty_and_zero() {
        assert!(bar_chart(&[], 20, "J").contains("no data"));
        let s = bar_chart(&[("z".to_string(), 0.0)], 10, "J");
        assert!(s.contains("0.000 J"));
    }
}
