//! Fairness metrics.
//!
//! The paper's argument is precisely that optimizing Jain's fairness index
//! — the classic objective of CC design — pessimizes energy. The index is
//! therefore a first-class output of the experiments: Figure 1 is, in
//! effect, energy as a function of (un)fairness.

/// Jain's fairness index: `(Σx)² / (n · Σx²)`, in `(0, 1]`; 1 iff all
/// allocations are equal, `1/n` when one user takes everything.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    debug_assert!(xs.iter().all(|&x| x >= 0.0), "allocations are non-negative");
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0; // all-zero allocation: vacuously fair
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// The throughput imbalance of a two-flow allocation as the paper's
/// Figure 1 x-axis: the fraction of aggregate bandwidth taken by flow 1.
pub fn flow1_fraction(x1: f64, x2: f64) -> f64 {
    let total = x1 + x2;
    if total <= 0.0 {
        return 0.5;
    }
    x1 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_are_perfectly_fair() {
        assert!((jain_index(&[5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monopoly_scores_one_over_n() {
        assert!((jain_index(&[10.0, 0.0]) - 0.5).abs() < 1e-12);
        assert!((jain_index(&[10.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn intermediate_allocations_are_ordered() {
        let fair = jain_index(&[5.0, 5.0]);
        let mild = jain_index(&[6.0, 4.0]);
        let harsh = jain_index(&[9.0, 1.0]);
        assert!(fair > mild && mild > harsh);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn fraction_helper() {
        assert_eq!(flow1_fraction(7.5, 2.5), 0.75);
        assert_eq!(flow1_fraction(0.0, 0.0), 0.5);
    }
}
