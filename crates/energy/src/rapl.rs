//! Emulated Intel RAPL energy counters.
//!
//! The paper measures energy with Intel's Running Average Power Limit
//! interface (Rotem et al., IEEE Micro 2012): a per-package MSR exposing a
//! cumulative energy counter in fixed units (2^-16 J on the testbed's
//! Haswell Xeons), stored in 32 bits and silently wrapping. The paper's
//! procedure is to read the counter before and after each scenario and
//! difference the reads.
//!
//! This module reproduces that interface faithfully — quantized units,
//! 32-bit wraparound, monotone deposits — so experiments can measure
//! energy the same way the paper did, wraparound bugs and all.

/// Default RAPL energy unit: 2^-16 J ≈ 15.3 µJ (ENERGY_STATUS_UNITS=16).
pub const DEFAULT_UNIT_J: f64 = 1.0 / 65_536.0;

/// A RAPL power domain, as exposed per package.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaplDomain {
    /// Whole-package energy (PKG) — what the paper reads.
    Package,
    /// Core power plane (PP0).
    Pp0,
    /// DRAM plane.
    Dram,
}

/// A single wrapping energy counter.
#[derive(Clone, Debug)]
pub struct RaplCounter {
    unit_j: f64,
    /// Total deposited energy in *units*, unwrapped (internal bookkeeping).
    total_units: u64,
    /// Fractional unit not yet accumulated.
    residue_j: f64,
}

impl RaplCounter {
    /// A counter with the default 2^-16 J unit.
    pub fn new() -> Self {
        Self::with_unit(DEFAULT_UNIT_J)
    }

    /// A counter with a custom energy unit (must be positive).
    pub fn with_unit(unit_j: f64) -> Self {
        assert!(unit_j > 0.0, "RAPL unit must be positive");
        RaplCounter {
            unit_j,
            total_units: 0,
            residue_j: 0.0,
        }
    }

    /// The energy represented by one counter unit, in Joules.
    pub fn unit_j(&self) -> f64 {
        self.unit_j
    }

    /// Deposit `joules` of consumed energy into the counter.
    pub fn deposit(&mut self, joules: f64) {
        assert!(joules >= 0.0, "energy cannot decrease");
        let total = joules + self.residue_j;
        let units = (total / self.unit_j).floor();
        self.residue_j = total - units * self.unit_j;
        self.total_units += units as u64;
    }

    /// Read the 32-bit wrapping register, exactly like reading the
    /// `MSR_PKG_ENERGY_STATUS` MSR.
    pub fn read_raw(&self) -> u32 {
        (self.total_units & 0xFFFF_FFFF) as u32
    }

    /// Energy in Joules between two raw reads, assuming at most one wrap
    /// (the standard RAPL-consumer assumption; the counter wraps after
    /// ~18 hours at 1 kW with the default unit, so this is safe for any
    /// experiment).
    pub fn delta_j(&self, before: u32, after: u32) -> f64 {
        let units = after.wrapping_sub(before) as u64;
        units as f64 * self.unit_j
    }
}

impl Default for RaplCounter {
    fn default() -> Self {
        Self::new()
    }
}

/// A package's set of RAPL domains. The experiments read `Package`; the
/// other planes are maintained with fixed ratios for interface fidelity.
#[derive(Clone, Debug, Default)]
pub struct RaplPackage {
    package: RaplCounter,
    pp0: RaplCounter,
    dram: RaplCounter,
}

impl RaplPackage {
    /// Create a package with default units on all domains.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit package energy. PP0 is credited with the core share and
    /// DRAM with a small fixed share, mirroring typical testbed ratios.
    pub fn deposit(&mut self, package_j: f64) {
        self.package.deposit(package_j);
        self.pp0.deposit(package_j * 0.7);
        self.dram.deposit(package_j * 0.12);
    }

    /// Read a domain's raw counter.
    pub fn read_raw(&self, domain: RaplDomain) -> u32 {
        self.counter(domain).read_raw()
    }

    /// Joules between two raw reads of a domain.
    pub fn delta_j(&self, domain: RaplDomain, before: u32, after: u32) -> f64 {
        self.counter(domain).delta_j(before, after)
    }

    fn counter(&self, domain: RaplDomain) -> &RaplCounter {
        match domain {
            RaplDomain::Package => &self.package,
            RaplDomain::Pp0 => &self.pp0,
            RaplDomain::Dram => &self.dram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposits_accumulate_in_units() {
        let mut c = RaplCounter::new();
        let r0 = c.read_raw();
        c.deposit(1.0);
        let r1 = c.read_raw();
        assert_eq!(r1 - r0, 65_536);
        assert!((c.delta_j(r0, r1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sub_unit_deposits_carry_residue() {
        let mut c = RaplCounter::new();
        let r0 = c.read_raw();
        // Four deposits of a quarter unit (exact in binary) must yield
        // exactly one unit.
        for _ in 0..4 {
            c.deposit(DEFAULT_UNIT_J / 4.0);
        }
        assert_eq!(c.read_raw() - r0, 1);
    }

    #[test]
    fn quantization_error_is_bounded_by_one_unit() {
        let mut c = RaplCounter::new();
        let r0 = c.read_raw();
        let mut exact = 0.0;
        for i in 0..1000 {
            let j = 0.001 * (i % 7) as f64;
            c.deposit(j);
            exact += j;
        }
        let measured = c.delta_j(r0, c.read_raw());
        assert!((measured - exact).abs() <= DEFAULT_UNIT_J);
    }

    #[test]
    fn wraparound_diff_is_correct() {
        let c = RaplCounter::new();
        // before near the top, after wrapped past zero.
        let before = u32::MAX - 10;
        let after = 5u32;
        let units = after.wrapping_sub(before);
        assert_eq!(units, 16);
        assert!((c.delta_j(before, after) - 16.0 * DEFAULT_UNIT_J).abs() < 1e-15);
    }

    #[test]
    fn counter_actually_wraps() {
        let mut c = RaplCounter::with_unit(1.0); // 1 J units for speed
        c.deposit(u32::MAX as f64);
        c.deposit(2.0);
        assert_eq!(c.read_raw(), 1);
    }

    #[test]
    fn package_domains_track_shares() {
        let mut p = RaplPackage::new();
        let b_pkg = p.read_raw(RaplDomain::Package);
        let b_pp0 = p.read_raw(RaplDomain::Pp0);
        let b_dram = p.read_raw(RaplDomain::Dram);
        p.deposit(100.0);
        let pkg = p.delta_j(RaplDomain::Package, b_pkg, p.read_raw(RaplDomain::Package));
        let pp0 = p.delta_j(RaplDomain::Pp0, b_pp0, p.read_raw(RaplDomain::Pp0));
        let dram = p.delta_j(RaplDomain::Dram, b_dram, p.read_raw(RaplDomain::Dram));
        assert!((pkg - 100.0).abs() < 1e-3);
        assert!((pp0 - 70.0).abs() < 1e-3);
        assert!((dram - 12.0).abs() < 1e-3);
    }

    #[test]
    fn negative_deposit_panics() {
        let mut c = RaplCounter::new();
        assert!(std::panic::catch_unwind(move || c.deposit(-1.0)).is_err());
    }
}
