//! The composite per-host power model.
//!
//! One [`HostPowerModel`] instance models one CPU socket the way the
//! paper's RAPL measurements see it:
//!
//! ```text
//! P(t) = P_idle
//!      + fan(u_bg)                                  -- background compute
//!      + k(u_bg) * [ phi(wire Gb/s)                 -- byte-rate curve
//!                  + per-packet work                -- pps-linear
//!                  + CC computation per ack         -- CCA-specific
//!                  + retransmission recovery work ]
//! ```
//!
//! The nonlinear byte-rate term is integrated over binned activity
//! ([`netsim::trace::HostActivity`]); the per-event terms are additive in
//! counts, so lifetime totals suffice.

use crate::coupling::LoadCoupling;
use crate::model::{FanModel, ThroughputPowerCurve};
use netsim::time::SimDuration;
use netsim::trace::{ActivityBin, ActivityTotals};

/// Per-event energy costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacketCosts {
    /// Joules to transmit one packet (descriptor, completion, qdisc walk).
    pub tx_pkt_j: f64,
    /// Receiving costs `rx_pkt_factor * tx_pkt_j` per packet.
    pub rx_pkt_factor: f64,
    /// Extra Joules per retransmitted segment (loss-recovery work).
    pub retx_extra_j: f64,
}

/// A host's workload context for energy accounting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostContext {
    /// Background compute utilization in `[0, 1]` (the paper's `stress`).
    pub background_util: f64,
    /// Congestion-control compute cost per processed ack, in Joules.
    /// Zero for the paper's constant-cwnd baseline module; CCAs provide
    /// their own value via their compute profile.
    pub cc_cost_per_ack_j: f64,
}

impl Default for HostContext {
    fn default() -> Self {
        HostContext {
            background_util: 0.0,
            cc_cost_per_ack_j: 0.0,
        }
    }
}

/// Itemized energy for one host over one measurement window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Idle (base package) energy.
    pub idle_j: f64,
    /// Background compute energy.
    pub compute_j: f64,
    /// Byte-rate curve energy.
    pub curve_j: f64,
    /// Per-packet processing energy (tx + rx).
    pub pkt_j: f64,
    /// Congestion-control computation energy.
    pub cc_j: f64,
    /// Retransmission recovery energy.
    pub retx_j: f64,
    /// Measurement window length in seconds.
    pub window_s: f64,
}

impl EnergyBreakdown {
    /// Total energy in Joules.
    pub fn total_j(&self) -> f64 {
        self.idle_j + self.compute_j + self.curve_j + self.pkt_j + self.cc_j + self.retx_j
    }

    /// Average power over the window in Watts.
    pub fn average_w(&self) -> f64 {
        if self.window_s <= 0.0 {
            return 0.0;
        }
        self.total_j() / self.window_s
    }
}

/// The composite host power model. See the module docs for the formula.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostPowerModel {
    /// Idle package power in Watts.
    pub p_idle_w: f64,
    /// Concave byte-rate curve.
    pub curve: ThroughputPowerCurve,
    /// Background compute power curve.
    pub fan: FanModel,
    /// Network/compute attenuation.
    pub coupling: LoadCoupling,
    /// Per-event costs.
    pub costs: PacketCosts,
}

impl HostPowerModel {
    /// Instantaneous power at the given rates.
    ///
    /// * `wire_gbps` — total wire throughput (tx + rx) in Gb/s,
    /// * `tx_pps` / `rx_pps` — packet rates,
    /// * `ack_pps` — acks processed per second (drives CC computation),
    /// * `retx_pps` — retransmissions per second,
    /// * `ctx` — background load and CC cost.
    pub fn power_w(
        &self,
        wire_gbps: f64,
        tx_pps: f64,
        rx_pps: f64,
        ack_pps: f64,
        retx_pps: f64,
        ctx: HostContext,
    ) -> f64 {
        let k = self.coupling.k(ctx.background_util);
        let net = self.curve.watts(wire_gbps)
            + self.costs.tx_pkt_j * (tx_pps + self.costs.rx_pkt_factor * rx_pps)
            + ctx.cc_cost_per_ack_j * ack_pps
            + self.costs.retx_extra_j * retx_pps;
        self.p_idle_w + self.fan.watts(ctx.background_util) + k * net
    }

    /// Steady-state sender power at wire throughput `gbps` with `mtu`-byte
    /// packets and `acks_per_segment` delayed-ack ratio — the analytic
    /// form behind the paper's Figure 2.
    pub fn sender_power_at(
        &self,
        gbps: f64,
        mtu_bytes: u32,
        acks_per_segment: f64,
        ctx: HostContext,
    ) -> f64 {
        let tx_pps = gbps * 1e9 / (8.0 * mtu_bytes as f64);
        let ack_pps = tx_pps * acks_per_segment;
        self.power_w(gbps, tx_pps, ack_pps, ack_pps, 0.0, ctx)
    }

    /// Per-bin instantaneous power of one host, from recorded activity —
    /// the exact integrand behind [`Self::energy_from_activity`], useful
    /// for power-over-time traces.
    pub fn power_series(
        &self,
        bins: &[ActivityBin],
        bin: SimDuration,
        ctx: HostContext,
    ) -> Vec<f64> {
        let bin_s = bin.as_secs_f64();
        bins.iter()
            .map(|b| {
                let gbps = (b.tx_bytes + b.rx_bytes) as f64 * 8.0 / bin_s / 1e9;
                self.power_w(
                    gbps,
                    b.tx_pkts as f64 / bin_s,
                    b.rx_pkts as f64 / bin_s,
                    b.acks_rx as f64 / bin_s,
                    b.retx_pkts as f64 / bin_s,
                    ctx,
                )
            })
            .collect()
    }

    /// Energy of one host over a window, from recorded activity.
    ///
    /// * `bins` / `bin` — the host's activity series and its bin width,
    /// * `window` — measurement window (idle power accrues even past the
    ///   last activity, like a RAPL read after the flows finish),
    /// * `totals` — lifetime counters for the per-event terms.
    pub fn energy_from_activity(
        &self,
        bins: &[ActivityBin],
        bin: SimDuration,
        window: SimDuration,
        totals: &ActivityTotals,
        ctx: HostContext,
    ) -> EnergyBreakdown {
        let window_s = window.as_secs_f64();
        let bin_s = bin.as_secs_f64();
        let k = self.coupling.k(ctx.background_util);

        let mut curve_j = 0.0;
        let mut covered_s = 0.0;
        for (i, b) in bins.iter().enumerate() {
            let start_s = i as f64 * bin_s;
            if start_s >= window_s {
                break;
            }
            let span_s = bin_s.min(window_s - start_s);
            let gbps = (b.tx_bytes + b.rx_bytes) as f64 * 8.0 / bin_s / 1e9;
            curve_j += k * self.curve.watts(gbps) * span_s;
            covered_s += span_s;
        }
        // Bins beyond the recorded series are idle: the curve contributes
        // nothing there (phi(0) = 0), but time still accrues.
        let _ = covered_s;

        let pkt_j = k
            * self.costs.tx_pkt_j
            * (totals.tx_pkts as f64 + self.costs.rx_pkt_factor * totals.rx_pkts as f64);
        let cc_j = k * ctx.cc_cost_per_ack_j * totals.acks_rx as f64;
        let retx_j = k * self.costs.retx_extra_j * totals.retx_pkts as f64;

        EnergyBreakdown {
            idle_j: self.p_idle_w * window_s,
            compute_j: self.fan.watts(ctx.background_util) * window_s,
            curve_j,
            pkt_j,
            cc_j,
            retx_j,
            window_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration;
    use netsim::time::SimDuration;
    use netsim::trace::{ActivityBin, ActivityTotals};

    fn model() -> HostPowerModel {
        calibration::reference_host_model()
    }

    fn ref_ctx() -> HostContext {
        HostContext {
            background_util: 0.0,
            cc_cost_per_ack_j: calibration::cc_cost_per_ack_ref_j(),
        }
    }

    #[test]
    fn steady_state_power_hits_calibration_points() {
        let m = model();
        let p0 = m.sender_power_at(0.0, 9000, 0.5, ref_ctx());
        let p5 = m.sender_power_at(5.0, 9000, 0.5, ref_ctx());
        let p10 = m.sender_power_at(10.0, 9000, 0.5, ref_ctx());
        assert!((p0 - 21.49).abs() < 1e-9, "p0={p0}");
        assert!((p5 - 34.23).abs() < 1e-6, "p5={p5}");
        assert!((p10 - 35.82).abs() < 1e-6, "p10={p10}");
    }

    #[test]
    fn power_is_concave_in_throughput() {
        let m = model();
        let ctx = ref_ctx();
        assert!(crate::model::is_strictly_concave(
            |x| m.sender_power_at(x, 9000, 0.5, ctx),
            0.0,
            10.0,
            100
        ));
    }

    #[test]
    fn smaller_mtu_draws_more_power_at_equal_throughput() {
        let m = model();
        let ctx = ref_ctx();
        let p9000 = m.sender_power_at(5.0, 9000, 0.5, ctx);
        let p3000 = m.sender_power_at(5.0, 3000, 0.5, ctx);
        let p1500 = m.sender_power_at(5.0, 1500, 0.5, ctx);
        assert!(p9000 < p3000 && p3000 < p1500, "{p9000} {p3000} {p1500}");
    }

    #[test]
    fn background_load_raises_base_and_attenuates_network_power() {
        let m = model();
        let idle_ctx = ref_ctx();
        let loaded_ctx = HostContext {
            background_util: 0.5,
            ..idle_ctx
        };
        let net_idle = m.sender_power_at(10.0, 9000, 0.5, idle_ctx)
            - m.sender_power_at(0.0, 9000, 0.5, idle_ctx);
        let net_loaded = m.sender_power_at(10.0, 9000, 0.5, loaded_ctx)
            - m.sender_power_at(0.0, 9000, 0.5, loaded_ctx);
        assert!(net_loaded < net_idle * 0.2, "{net_loaded} vs {net_idle}");
        assert!(
            m.sender_power_at(0.0, 9000, 0.5, loaded_ctx)
                > m.sender_power_at(0.0, 9000, 0.5, idle_ctx)
        );
    }

    #[test]
    fn energy_from_activity_matches_steady_state_arithmetic() {
        // One second of 10 Gb/s with MTU-9000 packets in 10 ms bins must
        // integrate to P(10G) * 1 s.
        let m = model();
        let bin = SimDuration::from_millis(10);
        let pps = calibration::cal_tx_pps();
        let per_bin_pkts = (pps * 0.01) as u64;
        let per_bin_bytes = per_bin_pkts * 9000;
        let bins: Vec<ActivityBin> = (0..100)
            .map(|_| ActivityBin {
                tx_bytes: per_bin_bytes,
                tx_pkts: per_bin_pkts,
                rx_bytes: 0,
                rx_pkts: 0,
                acks_rx: 0,
                retx_pkts: 0,
            })
            .collect();
        let acks = (pps * 0.5) as u64;
        let totals = ActivityTotals {
            tx_bytes: per_bin_bytes * 100,
            tx_pkts: per_bin_pkts * 100,
            retx_pkts: 0,
            rx_bytes: 0,
            rx_pkts: acks,
            acks_rx: acks,
        };
        let e = m.energy_from_activity(&bins, bin, SimDuration::from_secs(1), &totals, ref_ctx());
        // per_bin quantization rounds pps down slightly; allow 1% slack.
        let expected = m.sender_power_at(10.0, 9000, 0.5, ref_ctx());
        assert!(
            (e.total_j() - expected).abs() / expected < 0.01,
            "E={} expected~{}",
            e.total_j(),
            expected
        );
        assert!((e.average_w() - e.total_j() / 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_window_costs_idle_power_only() {
        let m = model();
        let e = m.energy_from_activity(
            &[],
            SimDuration::from_millis(10),
            SimDuration::from_secs(2),
            &ActivityTotals::default(),
            HostContext::default(),
        );
        assert!((e.total_j() - 2.0 * 21.49).abs() < 1e-9);
        assert_eq!(e.curve_j, 0.0);
        assert_eq!(e.pkt_j, 0.0);
    }

    #[test]
    fn window_shorter_than_activity_truncates_integration() {
        let m = model();
        let bin = SimDuration::from_millis(10);
        let bins: Vec<ActivityBin> = (0..100)
            .map(|_| ActivityBin {
                tx_bytes: 12_500_000, // 10 Gb/s per 10 ms bin
                tx_pkts: 1389,
                rx_bytes: 0,
                rx_pkts: 0,
                acks_rx: 0,
                retx_pkts: 0,
            })
            .collect();
        let half = m.energy_from_activity(
            &bins,
            bin,
            SimDuration::from_millis(500),
            &ActivityTotals::default(),
            HostContext::default(),
        );
        let full = m.energy_from_activity(
            &bins,
            bin,
            SimDuration::from_secs(1),
            &ActivityTotals::default(),
            HostContext::default(),
        );
        assert!((full.curve_j - 2.0 * half.curve_j).abs() < 1e-6);
    }

    #[test]
    fn retransmissions_cost_extra_energy() {
        let m = model();
        let mut totals = ActivityTotals::default();
        let base = m.energy_from_activity(
            &[],
            SimDuration::from_millis(10),
            SimDuration::from_secs(1),
            &totals,
            HostContext::default(),
        );
        totals.retx_pkts = 10_000;
        let with_retx = m.energy_from_activity(
            &[],
            SimDuration::from_millis(10),
            SimDuration::from_secs(1),
            &totals,
            HostContext::default(),
        );
        let delta = with_retx.total_j() - base.total_j();
        assert!((delta - 10_000.0 * calibration::RETX_EXTRA_J).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = model();
        let bins = [ActivityBin {
            tx_bytes: 1_000_000,
            tx_pkts: 700,
            rx_bytes: 50_000,
            rx_pkts: 300,
            acks_rx: 300,
            retx_pkts: 0,
        }];
        let totals = ActivityTotals {
            tx_bytes: 1_000_000,
            tx_pkts: 700,
            retx_pkts: 5,
            rx_bytes: 50_000,
            rx_pkts: 300,
            acks_rx: 300,
        };
        let ctx = HostContext {
            background_util: 0.3,
            cc_cost_per_ack_j: 1e-6,
        };
        let e = m.energy_from_activity(
            &bins,
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            &totals,
            ctx,
        );
        let sum = e.idle_j + e.compute_j + e.curve_j + e.pkt_j + e.cc_j + e.retx_j;
        assert!((sum - e.total_j()).abs() < 1e-12);
        assert!(e.compute_j > 0.0);
        assert!(e.cc_j > 0.0);
        assert!(e.retx_j > 0.0);
    }
}
