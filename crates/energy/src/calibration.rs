//! Calibration constants derived from the paper's published measurements.
//!
//! The paper reports, for a CUBIC sender at MTU 9000 on its testbed
//! (§4.1, Figure 2):
//!
//! * idle package power **21.49 W**,
//! * **34.23 W** while sending smoothly at 5 Gb/s,
//! * **35.82 W** while sending at 10 Gb/s line rate,
//!
//! and, for background compute load (§4.2, Figure 4):
//!
//! * "full speed, then idle" saves **~1%** at 25% load and **~0.17%** at
//!   75% load,
//! * the loaded power axis reaches ≈ **120 W**.
//!
//! Everything below is fitted so the model reproduces those exact
//! numbers; the fit structure is explained next to each constant. The
//! decomposition between the concave byte-rate curve and the linear
//! per-packet term is chosen so that MTU-1500 senders land at the
//! ~40-50 W powers of Figure 6 (see [`PKT_POWER_AT_10G_W`]).

use crate::coupling::LoadCoupling;
use crate::host::{HostPowerModel, PacketCosts};
use crate::model::{FanModel, ThroughputPowerCurve};

/// Idle package power of one CPU socket (W). Paper §4.1.
pub const P_IDLE_W: f64 = 21.49;
/// Package power sending smoothly at 5 Gb/s, CUBIC, MTU 9000 (W).
pub const P_5GBPS_W: f64 = 34.23;
/// Package power sending at 10 Gb/s line rate, CUBIC, MTU 9000 (W).
pub const P_10GBPS_W: f64 = 35.82;
/// The MTU at which the three reference powers were measured.
pub const CAL_MTU_BYTES: u32 = 9000;
/// The wire rate of the calibration testbed.
pub const CAL_LINE_RATE_GBPS: f64 = 10.0;

/// Of the 14.33 W network power at 10 Gb/s, the share attributed to
/// *per-packet* work (interrupts, descriptor rings, skb bookkeeping) as
/// opposed to the byte-rate curve. Chosen so the per-packet term, scaled
/// to an MTU-1500 sender's ~4.7x packet rate, puts a capped MTU-1500
/// CUBIC sender at ~40 W — the level the paper's Figure 6 shows — while
/// keeping the 1500->9000 energy saving inside the paper's 13.4-31.9%
/// band (§4.4).
pub const PKT_POWER_AT_10G_W: f64 = 1.2;

/// Receiving a packet costs this fraction of transmitting one (no qdisc
/// walk or completion handling on rx of a pure ack).
pub const RX_PKT_FACTOR: f64 = 0.6;

/// Share of [`PKT_POWER_AT_10G_W`] spent in congestion-control
/// computation for the reference CCA (CUBIC). Other algorithms scale this
/// via their compute profile (see the `cca` crate).
pub const CC_POWER_SHARE: f64 = 0.1;

/// Acks per data segment under standard delayed acks (RFC 1122: at least
/// every second segment).
pub const ACKS_PER_SEGMENT: f64 = 0.5;

/// Extra energy charged per retransmitted segment: SACK scoreboard walks,
/// retransmit-queue surgery, timer churn, and the extra memory traffic the
/// paper blames for the baseline's overhead ("more frequent memory
/// accesses and packet loss", §4.3). ~0.6 mJ is on the order of 100 µs of
/// one 3 GHz core per recovered segment; the *relative* penalty is what
/// drives Figures 5 and 8.
pub const RETX_EXTRA_J: f64 = 350e-6;

/// Fully-loaded package power (W), from the top of the paper's Figure 4
/// power axis.
pub const P_BUSY_W: f64 = 120.0;

/// Fan-model curvature exponent (the published quadratic fit).
pub const FAN_R: f64 = 2.0;

/// Background compute loads at which the paper reports savings (Fig. 4).
pub const LOAD_ANCHOR_LOW: f64 = 0.25;
/// See [`LOAD_ANCHOR_LOW`].
pub const LOAD_ANCHOR_HIGH: f64 = 0.75;
/// "Full speed, then idle" saving at 25% background load (paper §4.2).
pub const SAVINGS_AT_25_LOAD: f64 = 0.01;
/// "Full speed, then idle" saving at 75% background load (paper §4.2).
pub const SAVINGS_AT_75_LOAD: f64 = 0.0017;

/// Host packet-processing ceiling in packets/second. Below MTU ~2300 the
/// per-packet CPU cost, not the wire, limits throughput; 650 kpps puts an
/// MTU-1500 sender at ≈ 7.6 Gb/s goodput, reproducing the paper's remark
/// that MTU 9000 is needed to reach the full 10 Gb/s, the MTU-1500 FCT
/// cluster of Figure 7, and the 13.4-31.9% MTU energy savings of §4.4.
pub const MAX_HOST_PPS: f64 = 650_000.0;

/// Multiplier on [`MAX_HOST_PPS`] for senders that pace their packets
/// (the BBR family). Pacing spreads interrupts and avoids qdisc requeue
/// churn, so a paced sender sustains a higher packet rate than an
/// ack-clocked burster. Calibrated so BBR's MTU-1500 completion time sits
/// below the loss-based algorithms, as the paper measures (Figs. 5, 7).
pub const PACING_PPS_BONUS: f64 = 1.15;

/// Packets per second a sender emits at `gbps` of wire throughput with
/// `mtu`-byte packets.
#[inline]
pub fn tx_pps(gbps: f64, mtu_bytes: u32) -> f64 {
    gbps * 1e9 / (8.0 * mtu_bytes as f64)
}

/// The reference packet rate: 10 Gb/s of 9000-byte packets.
pub fn cal_tx_pps() -> f64 {
    tx_pps(CAL_LINE_RATE_GBPS, CAL_MTU_BYTES)
}

/// Congestion-control compute cost per processed ack for the reference
/// CCA (CUBIC), in Joules.
pub fn cc_cost_per_ack_ref_j() -> f64 {
    CC_POWER_SHARE * PKT_POWER_AT_10G_W / (cal_tx_pps() * ACKS_PER_SEGMENT)
}

/// Per-packet transmit cost in Joules, derived so that at the calibration
/// point the packet-driven power totals [`PKT_POWER_AT_10G_W`]:
/// `c_pkt * tx_pps * (1 + RX_PKT_FACTOR * ACKS_PER_SEGMENT) = (1 - share) * PKT_POWER`.
pub fn tx_pkt_cost_j() -> f64 {
    (1.0 - CC_POWER_SHARE) * PKT_POWER_AT_10G_W
        / (cal_tx_pps() * (1.0 + RX_PKT_FACTOR * ACKS_PER_SEGMENT))
}

/// The concave byte-rate power curve, fitted through the paper's two
/// non-idle operating points after subtracting the per-packet share.
pub fn reference_curve() -> ThroughputPowerCurve {
    let phi5 = P_5GBPS_W - P_IDLE_W - PKT_POWER_AT_10G_W * 0.5;
    let phi10 = P_10GBPS_W - P_IDLE_W - PKT_POWER_AT_10G_W;
    ThroughputPowerCurve::fit_doubling(5.0, phi5, phi10)
}

/// The background-compute power curve.
pub fn reference_fan() -> FanModel {
    FanModel::new(P_BUSY_W - P_IDLE_W, FAN_R)
}

/// Network power at throughput `gbps` above idle at zero background load:
/// curve plus per-packet terms at the calibration MTU, reference CCA.
fn net_power_w(gbps: f64) -> f64 {
    let curve = reference_curve();
    let pps = tx_pps(gbps, CAL_MTU_BYTES);
    curve.watts(gbps)
        + tx_pkt_cost_j() * pps * (1.0 + RX_PKT_FACTOR * ACKS_PER_SEGMENT)
        + cc_cost_per_ack_ref_j() * pps * ACKS_PER_SEGMENT
}

/// Solve for the network-power attenuation `k` that yields a target
/// "full speed, then idle" saving `s` at background load `u`:
///
/// fair (per host):   2s at `P_b + k*N5`
/// unfair (per host): 1s at `P_b + k*N10` + 1s at `P_b`
/// saving = k*(2*N5 - N10) / (2*(P_b + k*N5))  =>  closed form for k.
fn coupling_anchor(u: f64, target_saving: f64) -> f64 {
    let n5 = net_power_w(5.0);
    let n10 = net_power_w(10.0);
    let d = 2.0 * n5 - n10;
    let p_b = P_IDLE_W + reference_fan().watts(u);
    2.0 * target_saving * p_b / (d - 2.0 * target_saving * n5)
}

/// The load coupling fitted to the paper's two savings observations.
pub fn reference_coupling() -> LoadCoupling {
    LoadCoupling::fit(
        LOAD_ANCHOR_LOW,
        coupling_anchor(LOAD_ANCHOR_LOW, SAVINGS_AT_25_LOAD),
        LOAD_ANCHOR_HIGH,
        coupling_anchor(LOAD_ANCHOR_HIGH, SAVINGS_AT_75_LOAD),
    )
}

/// The fully calibrated host power model used by every experiment.
pub fn reference_host_model() -> HostPowerModel {
    HostPowerModel {
        p_idle_w: P_IDLE_W,
        curve: reference_curve(),
        fan: reference_fan(),
        coupling: reference_coupling(),
        costs: PacketCosts {
            tx_pkt_j: tx_pkt_cost_j(),
            rx_pkt_factor: RX_PKT_FACTOR,
            retx_extra_j: RETX_EXTRA_J,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reproduces_the_three_reference_powers() {
        assert!((P_IDLE_W + net_power_w(0.0) - 21.49).abs() < 1e-9);
        assert!(
            (P_IDLE_W + net_power_w(5.0) - 34.23).abs() < 1e-6,
            "P(5)={}",
            P_IDLE_W + net_power_w(5.0)
        );
        assert!(
            (P_IDLE_W + net_power_w(10.0) - 35.82).abs() < 1e-6,
            "P(10)={}",
            P_IDLE_W + net_power_w(10.0)
        );
    }

    #[test]
    fn paper_worked_example_full_speed_then_idle_saves_16_percent() {
        // §4.1: fair = 2 hosts x 2 s x 34.23 = 136.92 J;
        // unfair = 2 hosts x (35.82 + 21.49) = 114.62 J; saving ≈ 16%.
        let fair = 2.0 * 2.0 * (P_IDLE_W + net_power_w(5.0));
        let unfair = 2.0 * ((P_IDLE_W + net_power_w(10.0)) + P_IDLE_W);
        let saving = (fair - unfair) / fair;
        assert!((fair - 136.92).abs() < 0.01, "fair={fair}");
        assert!((unfair - 114.62).abs() < 0.01, "unfair={unfair}");
        assert!(
            (saving - 0.1629).abs() < 0.002,
            "saving={saving} (paper: 16%)"
        );
    }

    #[test]
    fn marginal_power_matches_paper_quote() {
        // "Sending with 5 additional Gb/s increases power usage by 60%
        // (12.7 Watts) when the server is idling, but only increases it by
        // 5% (1.6 Watts) when the server is already sending at 5 Gb/s."
        let inc_from_idle = net_power_w(5.0) - net_power_w(0.0);
        let inc_from_5g = net_power_w(10.0) - net_power_w(5.0);
        assert!((inc_from_idle - 12.74).abs() < 1e-6);
        assert!((inc_from_5g - 1.59).abs() < 1e-6);
        assert!((inc_from_idle / P_IDLE_W - 0.593).abs() < 0.01);
    }

    #[test]
    fn coupling_reproduces_loaded_savings() {
        let coupling = reference_coupling();
        for (u, target) in [
            (LOAD_ANCHOR_LOW, SAVINGS_AT_25_LOAD),
            (LOAD_ANCHOR_HIGH, SAVINGS_AT_75_LOAD),
        ] {
            let k = coupling.k(u);
            let n5 = net_power_w(5.0);
            let n10 = net_power_w(10.0);
            let p_b = P_IDLE_W + reference_fan().watts(u);
            let fair = 2.0 * 2.0 * (p_b + k * n5);
            let unfair = 2.0 * ((p_b + k * n10) + p_b);
            let saving = (fair - unfair) / fair;
            assert!(
                (saving - target).abs() < 1e-6,
                "load {u}: saving {saving} target {target}"
            );
        }
    }

    #[test]
    fn savings_decrease_monotonically_with_load() {
        let coupling = reference_coupling();
        let n5 = net_power_w(5.0);
        let n10 = net_power_w(10.0);
        let mut prev = f64::INFINITY;
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let k = coupling.k(u);
            let p_b = P_IDLE_W + reference_fan().watts(u);
            let saving = k * (2.0 * n5 - n10) / (2.0 * (p_b + k * n5));
            assert!(saving < prev, "saving must fall with load (u={u})");
            assert!(saving >= 0.0);
            prev = saving;
        }
    }

    #[test]
    fn pps_helpers() {
        assert!((cal_tx_pps() - 138_888.889).abs() < 0.01);
        assert!((tx_pps(10.0, 1500) - 833_333.333).abs() < 0.01);
        // At the pps cap an MTU-1500 sender moves ~7.8 Gb/s of wire bytes.
        let capped_gbps = MAX_HOST_PPS * 1500.0 * 8.0 / 1e9;
        assert!((capped_gbps - 7.8).abs() < 0.01);
    }

    #[test]
    fn total_power_stays_concave_in_throughput() {
        // The sum of the concave curve and the linear per-packet terms
        // must remain strictly concave (Theorem 1's hypothesis).
        assert!(crate::model::is_strictly_concave(
            net_power_w,
            0.0,
            10.0,
            200
        ));
    }

    #[test]
    fn mtu_1500_power_lands_in_figure6_band() {
        // A capped MTU-1500 sender: 575 kpps, 6.9 Gb/s wire.
        let curve = reference_curve();
        let pps = MAX_HOST_PPS;
        let gbps = pps * 1500.0 * 8.0 / 1e9;
        let p = P_IDLE_W
            + curve.watts(gbps)
            + tx_pkt_cost_j() * pps * (1.0 + RX_PKT_FACTOR * ACKS_PER_SEGMENT)
            + cc_cost_per_ack_ref_j() * pps * ACKS_PER_SEGMENT;
        assert!(
            (38.0..46.0).contains(&p),
            "MTU-1500 sender power {p} W should sit near the paper's Figure-6 level"
        );
    }
}
