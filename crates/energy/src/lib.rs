//! # energy — RAPL-style end-host energy modeling
//!
//! The paper measures CPU energy with Intel RAPL on a physical testbed.
//! This crate substitutes a calibrated software model (see `DESIGN.md`):
//!
//! * a strictly **concave throughput→power curve** fitted through the
//!   paper's published CUBIC operating points (21.49 W idle, 34.23 W at
//!   5 Gb/s, 35.82 W at 10 Gb/s),
//! * **per-packet / per-ack / per-retransmission costs** that make MTU
//!   and CCA choices visible in power, as in the paper's Figs. 5-6,
//! * a **Fan-model background-compute curve** and a **load coupling**
//!   fitted to the paper's Fig. 4 savings (1% at 25% load, 0.17% at 75%),
//! * an emulated, quantized, wrapping **RAPL counter** read before/after
//!   each scenario, reproducing the paper's measurement procedure.
//!
//! ```
//! use energy::prelude::*;
//!
//! let model = reference_host_model();
//! let ctx = HostContext { background_util: 0.0,
//!                         cc_cost_per_ack_j: cc_cost_per_ack_ref_j() };
//! let p5 = model.sender_power_at(5.0, 9000, 0.5, ctx);
//! assert!((p5 - 34.23).abs() < 1e-6); // the paper's Figure 2 point
//! ```

#![warn(missing_docs)]

pub mod calibration;
pub mod coupling;
pub mod host;
pub mod meter;
pub mod model;
pub mod rapl;

/// The commonly-used names, re-exported in one place.
pub mod prelude {
    pub use crate::calibration::{
        cc_cost_per_ack_ref_j, reference_coupling, reference_curve, reference_fan,
        reference_host_model, tx_pkt_cost_j, tx_pps, ACKS_PER_SEGMENT, MAX_HOST_PPS, P_10GBPS_W,
        P_5GBPS_W, P_BUSY_W, P_IDLE_W,
    };
    pub use crate::coupling::LoadCoupling;
    pub use crate::host::{EnergyBreakdown, HostContext, HostPowerModel, PacketCosts};
    pub use crate::meter::{EnergyMeter, EnergyReading};
    pub use crate::model::{is_strictly_concave, FanModel, ThroughputPowerCurve};
    pub use crate::rapl::{RaplCounter, RaplDomain, RaplPackage, DEFAULT_UNIT_J};
}
