//! The measurement procedure.
//!
//! [`EnergyMeter`] reproduces the paper's §3 methodology: for each host,
//! read the (emulated) RAPL counter before the scenario, run it, read the
//! counter again, and report the difference. The meter consumes the
//! simulator's recorded [`HostActivity`] and the calibrated
//! [`HostPowerModel`], deposits the modeled energy into a wrapping
//! quantized counter, and differences raw reads — so reported Joules carry
//! genuine RAPL quantization, exactly like the testbed numbers.

use crate::host::{EnergyBreakdown, HostContext, HostPowerModel};
use crate::rapl::{RaplDomain, RaplPackage};
use netsim::ids::NodeId;
use netsim::time::SimDuration;
use netsim::trace::HostActivity;

/// One host's measured energy over a window.
#[derive(Clone, Copy, Debug)]
pub struct EnergyReading {
    /// Host measured.
    pub host: NodeId,
    /// Energy as differenced from the RAPL counter (quantized).
    pub joules: f64,
    /// Itemized model-side breakdown (pre-quantization).
    pub breakdown: EnergyBreakdown,
}

impl EnergyReading {
    /// Average power over the window in Watts.
    pub fn average_w(&self) -> f64 {
        if self.breakdown.window_s <= 0.0 {
            return 0.0;
        }
        self.joules / self.breakdown.window_s
    }
}

/// Measures host energy from recorded activity via an emulated RAPL
/// package per host.
pub struct EnergyMeter {
    model: HostPowerModel,
}

impl EnergyMeter {
    /// Create a meter over a calibrated host model.
    pub fn new(model: HostPowerModel) -> Self {
        EnergyMeter { model }
    }

    /// The underlying model.
    pub fn model(&self) -> &HostPowerModel {
        &self.model
    }

    /// Measure one host over `window`, under `ctx`.
    pub fn measure_host(
        &self,
        activity: &HostActivity,
        host: NodeId,
        window: SimDuration,
        ctx: HostContext,
    ) -> EnergyReading {
        let bins = activity.series(host);
        let totals = activity.totals(host);
        let breakdown = self
            .model
            .energy_from_activity(bins, activity.bin(), window, &totals, ctx);

        // The paper's procedure: counter read, scenario, counter read.
        let mut rapl = RaplPackage::new();
        let before = rapl.read_raw(RaplDomain::Package);
        rapl.deposit(breakdown.total_j());
        let after = rapl.read_raw(RaplDomain::Package);
        let joules = rapl.delta_j(RaplDomain::Package, before, after);

        EnergyReading {
            host,
            joules,
            breakdown,
        }
    }

    /// Feed a host's per-bin power series into an observability recorder
    /// as sim-time power samples, one per activity bin (stamped at the
    /// bin start). This is the meter-side bridge to `obs`: the samples
    /// come from the same integrand as [`Self::measure_host`], so the
    /// exported power track matches the reported Joules.
    pub fn record_power_series(
        &self,
        recorder: &mut dyn obs::Recorder,
        activity: &HostActivity,
        host: NodeId,
        ctx: HostContext,
    ) {
        let series = self
            .model
            .power_series(activity.series(host), activity.bin(), ctx);
        let bin_ns = activity.bin().as_nanos();
        for (i, watts) in series.iter().enumerate() {
            recorder.power_sample(i as u64 * bin_ns, host.index() as u32, *watts);
        }
    }

    /// Measure several hosts over a common window and sum their energy —
    /// the paper's "total energy usage during the experiment" across
    /// participating servers.
    pub fn measure_total(
        &self,
        activity: &HostActivity,
        hosts: &[(NodeId, HostContext)],
        window: SimDuration,
    ) -> (f64, Vec<EnergyReading>) {
        let readings: Vec<EnergyReading> = hosts
            .iter()
            .map(|&(h, ctx)| self.measure_host(activity, h, window, ctx))
            .collect();
        let total = readings.iter().map(|r| r.joules).sum();
        (total, readings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration;
    use netsim::time::SimTime;

    #[test]
    fn reading_matches_breakdown_within_quantization() {
        let meter = EnergyMeter::new(calibration::reference_host_model());
        let host = NodeId::from_raw(0);
        let mut act = HostActivity::new(SimDuration::from_millis(10));
        act.record_tx(host, SimTime::from_millis(1), 9000, false);
        act.record_rx(host, SimTime::from_millis(2), 64, true);
        let reading = meter.measure_host(
            &act,
            host,
            SimDuration::from_secs(1),
            HostContext::default(),
        );
        assert!(
            (reading.joules - reading.breakdown.total_j()).abs() <= crate::rapl::DEFAULT_UNIT_J
        );
        assert!(
            reading.joules > 21.0,
            "idle second dominates: {}",
            reading.joules
        );
    }

    #[test]
    fn total_sums_hosts() {
        let meter = EnergyMeter::new(calibration::reference_host_model());
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let act = HostActivity::new(SimDuration::from_millis(10));
        let window = SimDuration::from_secs(2);
        let ctx = HostContext::default();
        let (total, readings) = meter.measure_total(&act, &[(a, ctx), (b, ctx)], window);
        assert_eq!(readings.len(), 2);
        // Two idle hosts for two seconds: 2 * 2 * 21.49 J.
        assert!((total - 2.0 * 2.0 * 21.49).abs() < 0.01, "total={total}");
    }

    #[test]
    fn power_series_lands_in_the_recorder() {
        let meter = EnergyMeter::new(calibration::reference_host_model());
        let host = NodeId::from_raw(2);
        let mut act = HostActivity::new(SimDuration::from_millis(10));
        act.record_tx(host, SimTime::from_millis(1), 9000, false);
        act.record_tx(host, SimTime::from_millis(25), 9000, false);
        let mut rec = obs::ObsRecorder::new();
        meter.record_power_series(&mut rec, &act, host, HostContext::default());
        let report = rec.finalize(SimTime::from_millis(30).as_nanos());
        // Three bins -> three samples, all at least idle power (in mW).
        let key = obs::labels([("host", "n2".to_string())]);
        let hist = report
            .metrics
            .histogram("host_power_mw", &key)
            .expect("histogram");
        assert_eq!(hist.count(), 3);
        assert!(hist.min().unwrap() >= 21_000);
    }

    #[test]
    fn average_power_of_idle_host_is_idle_power() {
        let meter = EnergyMeter::new(calibration::reference_host_model());
        let host = NodeId::from_raw(3);
        let act = HostActivity::new(SimDuration::from_millis(10));
        let reading = meter.measure_host(
            &act,
            host,
            SimDuration::from_secs(5),
            HostContext::default(),
        );
        assert!((reading.average_w() - 21.49).abs() < 0.01);
    }
}
