//! Power-vs-throughput and power-vs-utilization curves.
//!
//! Two curve families cover the paper's observations:
//!
//! * [`ThroughputPowerCurve`]: the *network* component of CPU power as a
//!   strictly concave, saturating-exponential function of wire throughput,
//!   `phi(x) = A * (1 - exp(-x / tau))`. The paper's Figure 2 shows this
//!   shape directly; §4.1 relies only on strict concavity.
//! * [`FanModel`]: the *compute* component as the classic concave
//!   utilization curve of Fan, Weber & Barroso (ISCA '07),
//!   `P(u) = (P_busy - P_idle) * (2u - u^r)`, used for background load.

/// Strictly concave network power curve `phi(x) = A (1 - e^(-x/tau))`,
/// with `x` in Gb/s of wire throughput and the result in Watts *above
/// idle* (the caller adds idle power).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputPowerCurve {
    /// Saturation amplitude in Watts.
    pub a: f64,
    /// Curvature scale in Gb/s.
    pub tau: f64,
}

impl ThroughputPowerCurve {
    /// Construct directly from amplitude and curvature.
    pub fn new(a: f64, tau: f64) -> Self {
        assert!(a > 0.0 && tau > 0.0, "curve parameters must be positive");
        ThroughputPowerCurve { a, tau }
    }

    /// Fit the curve through two measured points `(x, phi)` and
    /// `(2x, phi2)` — a doubling pair, which admits a closed form:
    /// with `q = e^(-x/tau)`, `phi/phi2 = (1-q)/(1-q^2) = 1/(1+q)`.
    ///
    /// Panics unless `0 < phi < phi2 < 2*phi` (required for a concave
    /// increasing exponential to pass through both points).
    pub fn fit_doubling(x: f64, phi: f64, phi2: f64) -> Self {
        assert!(x > 0.0);
        assert!(
            0.0 < phi && phi < phi2 && phi2 < 2.0 * phi,
            "points not realizable by a saturating exponential: phi={phi}, phi2={phi2}"
        );
        let q = phi2 / phi - 1.0; // in (0,1)
        let tau = x / (1.0 / q).ln();
        let a = phi / (1.0 - q);
        ThroughputPowerCurve { a, tau }
    }

    /// Power above idle at wire throughput `gbps`.
    #[inline]
    pub fn watts(&self, gbps: f64) -> f64 {
        debug_assert!(gbps >= 0.0);
        self.a * (1.0 - (-gbps / self.tau).exp())
    }

    /// Marginal power dW/dx at `gbps` — strictly decreasing, which is the
    /// hypothesis of the paper's Theorem 1.
    #[inline]
    pub fn marginal_watts_per_gbps(&self, gbps: f64) -> f64 {
        (self.a / self.tau) * (-gbps / self.tau).exp()
    }
}

/// Fan-et-al. compute power curve: `watts(u) = span * (2u - u^r)` with
/// `u` in `[0, 1]` clamped, `span = P_busy - P_idle`, `r > 1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FanModel {
    /// `P_busy - P_idle` in Watts.
    pub span_w: f64,
    /// Curvature exponent; `r = 2` reproduces the published quadratic fit.
    pub r: f64,
}

impl FanModel {
    /// Construct from the busy-minus-idle power span and exponent.
    /// `r` must lie in `(1, 2]` so the curve is concave *and* monotone
    /// increasing on `[0, 1]`.
    pub fn new(span_w: f64, r: f64) -> Self {
        assert!(span_w >= 0.0, "power span must be non-negative");
        assert!(
            r > 1.0 && r <= 2.0,
            "Fan exponent must be in (1, 2] for a concave increasing curve"
        );
        FanModel { span_w, r }
    }

    /// Compute power above idle at utilization `u` (clamped to `[0, 1]`).
    /// `2u - u^r` is 0 at u=0 and 1 at u=1 and increasing for r <= 2.
    #[inline]
    pub fn watts(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        self.span_w * (2.0 * u - u.powf(self.r))
    }
}

/// Numerically verify strict concavity of `f` on `[lo, hi]` by testing
/// that midpoint values strictly exceed chord midpoints on a grid.
/// Used by tests and the Theorem-1 experiment.
pub fn is_strictly_concave(f: impl Fn(f64) -> f64, lo: f64, hi: f64, steps: usize) -> bool {
    assert!(hi > lo && steps >= 2);
    let h = (hi - lo) / steps as f64;
    for i in 0..steps - 1 {
        let x0 = lo + i as f64 * h;
        let x1 = x0 + h;
        let x2 = x0 + 2.0 * h;
        let mid = f(x1);
        let chord = 0.5 * (f(x0) + f(x2));
        if mid <= chord + 1e-12 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_doubling_reproduces_inputs() {
        let c = ThroughputPowerCurve::fit_doubling(5.0, 11.465, 11.78);
        assert!(
            (c.watts(5.0) - 11.465).abs() < 1e-9,
            "phi(5)={}",
            c.watts(5.0)
        );
        assert!(
            (c.watts(10.0) - 11.78).abs() < 1e-9,
            "phi(10)={}",
            c.watts(10.0)
        );
    }

    #[test]
    fn fit_doubling_rejects_non_concave_points() {
        // phi2 >= 2*phi would require convexity or linearity.
        let result =
            std::panic::catch_unwind(|| ThroughputPowerCurve::fit_doubling(5.0, 5.0, 10.0));
        assert!(result.is_err());
        let result = std::panic::catch_unwind(|| ThroughputPowerCurve::fit_doubling(5.0, 5.0, 4.0));
        assert!(result.is_err());
    }

    #[test]
    fn curve_is_zero_at_zero_and_saturates() {
        let c = ThroughputPowerCurve::new(10.0, 2.0);
        assert_eq!(c.watts(0.0), 0.0);
        assert!(c.watts(100.0) > 9.999);
        assert!(c.watts(100.0) <= 10.0);
    }

    #[test]
    fn curve_is_strictly_concave() {
        let c = ThroughputPowerCurve::new(11.8, 1.39);
        assert!(is_strictly_concave(|x| c.watts(x), 0.0, 10.0, 100));
    }

    #[test]
    fn marginal_power_is_strictly_decreasing() {
        let c = ThroughputPowerCurve::new(11.8, 1.39);
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let x = i as f64 * 0.1;
            let m = c.marginal_watts_per_gbps(x);
            assert!(m < prev, "marginal power must strictly decrease");
            assert!(m > 0.0);
            prev = m;
        }
    }

    #[test]
    fn fan_model_endpoints() {
        let f = FanModel::new(98.51, 2.0);
        assert_eq!(f.watts(0.0), 0.0);
        assert!((f.watts(1.0) - 98.51).abs() < 1e-9);
        // Clamping.
        assert_eq!(f.watts(-0.5), 0.0);
        assert!((f.watts(1.5) - 98.51).abs() < 1e-9);
    }

    #[test]
    fn fan_model_is_concave_and_above_linear() {
        let f = FanModel::new(100.0, 2.0);
        assert!(is_strictly_concave(|u| f.watts(u), 0.0, 1.0, 50));
        // Concave with f(0)=0 implies superlinearity on [0,1]:
        for i in 1..10 {
            let u = i as f64 / 10.0;
            assert!(f.watts(u) > 100.0 * u);
        }
    }

    #[test]
    fn concavity_checker_rejects_convex() {
        assert!(!is_strictly_concave(|x| x * x, 0.0, 1.0, 20));
        assert!(!is_strictly_concave(|x| x, 0.0, 1.0, 20)); // linear is not *strictly* concave
        assert!(is_strictly_concave(|x| x.sqrt(), 0.01, 1.0, 20));
    }
}
