//! Network/compute power coupling.
//!
//! The paper's Figure 4 shows that when a server already runs background
//! compute, the *marginal* power of pushing network traffic shrinks
//! dramatically: the "full speed, then idle" strategy saves 16% on an idle
//! server, ~1% at 25% compute load, and ~0.17% at 75% load. The absolute
//! network-power increment therefore attenuates with background
//! utilization (shared voltage/frequency domains and already-powered
//! uncore make extra packets nearly free on a hot package).
//!
//! [`LoadCoupling`] models this as a multiplicative attenuation
//! `k(u) = exp(-(u/c)^p)` applied to the network power term, with `k(0)=1`
//! and `k` strictly decreasing. The two parameters are fitted in closed
//! form to the paper's two published savings figures; see
//! [`crate::calibration`].

/// Attenuation of network power as a function of background utilization:
/// `k(u) = exp(-(u/c)^p)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadCoupling {
    /// Utilization scale.
    pub c: f64,
    /// Stretch exponent.
    pub p: f64,
}

impl LoadCoupling {
    /// No attenuation at any load (`k(u) = 1`); useful for ablations.
    pub const NONE: LoadCoupling = LoadCoupling {
        c: f64::INFINITY,
        p: 1.0,
    };

    /// Construct directly.
    pub fn new(c: f64, p: f64) -> Self {
        assert!(c > 0.0 && p > 0.0, "coupling parameters must be positive");
        LoadCoupling { c, p }
    }

    /// Fit through two attenuation observations `(u1, k1)` and `(u2, k2)`
    /// with `0 < u1 < u2` and `1 > k1 > k2 > 0`. Closed form:
    /// `p = ln(ln(1/k2)/ln(1/k1)) / ln(u2/u1)`, then `c` from either point.
    pub fn fit(u1: f64, k1: f64, u2: f64, k2: f64) -> Self {
        assert!(0.0 < u1 && u1 < u2, "need 0 < u1 < u2");
        assert!(0.0 < k2 && k2 < k1 && k1 < 1.0, "need 1 > k1 > k2 > 0");
        let l1 = (1.0 / k1).ln();
        let l2 = (1.0 / k2).ln();
        let p = (l2 / l1).ln() / (u2 / u1).ln();
        let c = u1 / l1.powf(1.0 / p);
        LoadCoupling::new(c, p)
    }

    /// Attenuation factor at background utilization `u` (clamped at 0).
    #[inline]
    pub fn k(&self, u: f64) -> f64 {
        if u <= 0.0 {
            return 1.0;
        }
        if self.c.is_infinite() {
            return 1.0;
        }
        (-(u / self.c).powf(self.p)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_reproduces_anchor_points() {
        let c = LoadCoupling::fit(0.25, 0.118562, 0.75, 0.034850);
        assert!((c.k(0.25) - 0.118562).abs() < 1e-9, "k25={}", c.k(0.25));
        assert!((c.k(0.75) - 0.034850).abs() < 1e-9, "k75={}", c.k(0.75));
    }

    #[test]
    fn zero_load_means_no_attenuation() {
        let c = LoadCoupling::fit(0.25, 0.1, 0.75, 0.03);
        assert_eq!(c.k(0.0), 1.0);
        assert_eq!(c.k(-1.0), 1.0);
    }

    #[test]
    fn attenuation_is_strictly_decreasing() {
        let c = LoadCoupling::fit(0.25, 0.118562, 0.75, 0.034850);
        let mut prev = 1.0 + 1e-12;
        for i in 1..=100 {
            let u = i as f64 / 100.0;
            let k = c.k(u);
            assert!(k < prev, "k must strictly decrease: k({u})={k}");
            assert!(k > 0.0);
            prev = k;
        }
    }

    #[test]
    fn none_is_identity() {
        assert_eq!(LoadCoupling::NONE.k(0.5), 1.0);
        assert_eq!(LoadCoupling::NONE.k(1.0), 1.0);
    }

    #[test]
    fn fit_rejects_bad_points() {
        assert!(std::panic::catch_unwind(|| LoadCoupling::fit(0.5, 0.1, 0.25, 0.03)).is_err());
        assert!(std::panic::catch_unwind(|| LoadCoupling::fit(0.25, 0.03, 0.75, 0.1)).is_err());
    }
}
