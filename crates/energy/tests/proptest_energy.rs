//! Property-based tests of the energy model's mathematical guarantees.

use energy::prelude::*;
use netsim::time::SimDuration;
use netsim::trace::{ActivityBin, ActivityTotals};
use proptest::prelude::*;

proptest! {
    /// Curve fitting: for any realizable doubling pair, the fitted curve
    /// passes through both points and stays strictly concave.
    #[test]
    fn fit_doubling_roundtrips(x in 0.5f64..20.0, phi in 1.0f64..50.0, ratio in 1.001f64..1.999) {
        let phi2 = phi * ratio;
        let curve = ThroughputPowerCurve::fit_doubling(x, phi, phi2);
        prop_assert!((curve.watts(x) - phi).abs() < 1e-6 * phi);
        prop_assert!((curve.watts(2.0 * x) - phi2).abs() < 1e-6 * phi2);
        // Check concavity over the fitted range [0, 2x]: past it the curve
        // saturates and, for ratios near 1, the second difference decays
        // like phi * e^(-v/tau) below what f64 subtraction can resolve.
        prop_assert!(is_strictly_concave(|v| curve.watts(v), 0.0, 2.0 * x, 64));
    }

    /// The Fan model is monotone increasing and superlinear on [0,1].
    #[test]
    fn fan_model_properties(span in 1.0f64..200.0, r in 1.01f64..2.0) {
        let fan = FanModel::new(span, r);
        let mut prev = -1e-9;
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let w = fan.watts(u);
            prop_assert!(w >= prev, "monotone");
            prop_assert!(w >= span * u - 1e-9, "concave => superlinear");
            prev = w;
        }
        prop_assert!((fan.watts(1.0) - span).abs() < 1e-9);
    }

    /// Coupling fits reproduce their anchors for any valid pair.
    #[test]
    fn coupling_fit_roundtrips(
        u1 in 0.05f64..0.5,
        du in 0.05f64..0.5,
        k1 in 0.05f64..0.9,
        kr in 0.05f64..0.95,
    ) {
        let u2 = u1 + du;
        let k2 = k1 * kr;
        let c = LoadCoupling::fit(u1, k1, u2, k2);
        prop_assert!((c.k(u1) - k1).abs() < 1e-9);
        prop_assert!((c.k(u2) - k2).abs() < 1e-9);
        prop_assert!(c.k(0.0) == 1.0);
    }

    /// Energy accounting is additive: splitting an activity series into
    /// two windows yields the same total as one window, for any split.
    #[test]
    fn energy_is_window_additive(
        bins in proptest::collection::vec((0u64..20_000_000, 0u64..2000), 1..60),
        split in 1usize..59,
    ) {
        prop_assume!(split < bins.len());
        let model = reference_host_model();
        let ctx = HostContext {
            background_util: 0.25,
            cc_cost_per_ack_j: cc_cost_per_ack_ref_j(),
        };
        let bin_w = SimDuration::from_millis(1);
        let series: Vec<ActivityBin> = bins
            .iter()
            .map(|&(b, p)| ActivityBin {
                tx_bytes: b,
                tx_pkts: p,
                rx_bytes: 0,
                rx_pkts: 0,
                acks_rx: 0,
                retx_pkts: 0,
            })
            .collect();
        // Totals only carry per-event terms; use zero so the check
        // isolates the time-integrated part.
        let totals = ActivityTotals::default();
        let full = model.energy_from_activity(
            &series,
            bin_w,
            SimDuration::from_millis(series.len() as u64),
            &totals,
            ctx,
        );
        let first = model.energy_from_activity(
            &series[..split],
            bin_w,
            SimDuration::from_millis(split as u64),
            &totals,
            ctx,
        );
        let rest = model.energy_from_activity(
            &series[split..],
            bin_w,
            SimDuration::from_millis((series.len() - split) as u64),
            &totals,
            ctx,
        );
        let sum = first.total_j() + rest.total_j();
        prop_assert!(
            (full.total_j() - sum).abs() < 1e-6 * full.total_j().max(1.0),
            "additivity: {} vs {}",
            full.total_j(),
            sum
        );
    }

    /// More traffic never costs less energy, all else equal.
    #[test]
    fn energy_is_monotone_in_traffic(
        base_bytes in 0u64..10_000_000,
        extra in 1u64..10_000_000,
    ) {
        let model = reference_host_model();
        let ctx = HostContext::default();
        let bin_w = SimDuration::from_millis(1);
        let window = SimDuration::from_millis(1);
        let mk = |bytes: u64| {
            let bins = [ActivityBin {
                tx_bytes: bytes,
                tx_pkts: bytes / 9000 + 1,
                rx_bytes: 0,
                rx_pkts: 0,
                acks_rx: 0,
                retx_pkts: 0,
            }];
            model
                .energy_from_activity(&bins, bin_w, window, &ActivityTotals::default(), ctx)
                .total_j()
        };
        prop_assert!(mk(base_bytes + extra) >= mk(base_bytes));
    }
}
