//! **Figure 7 / §4.5** — energy vs. flow completion time.
//!
//! A scatter of every (CCA, MTU) run: energy is strongly, positively
//! driven by completion time, and the points fall into two clusters —
//! small-MTU runs (slow, expensive, upper right) and jumbo-MTU runs
//! (fast, cheap, lower left).

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// One scatter point (a cell mean).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Completion time (s).
    pub fct_s: f64,
    /// Energy (J).
    pub energy_j: f64,
    /// MTU of the run.
    pub mtu: u32,
}

/// Figure-7 projection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// The underlying campaign.
    pub matrix: Matrix,
    /// All points.
    pub points: Vec<ScatterPoint>,
    /// Pearson correlation of energy vs FCT (the paper calls it
    /// "strongly correlated").
    pub energy_fct_correlation: f64,
    /// Mean (fct, energy) of the MTU-1500 cluster.
    pub cluster_1500: (f64, f64),
    /// Mean (fct, energy) of the jumbo (>= 3000) cluster.
    pub cluster_jumbo: (f64, f64),
}

/// Project the campaign into Figure 7.
pub fn from_matrix(matrix: Matrix) -> Result {
    let points: Vec<ScatterPoint> = matrix
        .cells
        .iter()
        .map(|c| ScatterPoint {
            fct_s: c.fct_s.mean,
            energy_j: c.energy_j.mean,
            mtu: c.mtu,
        })
        .collect();
    let fct: Vec<f64> = points.iter().map(|p| p.fct_s).collect();
    let energy: Vec<f64> = points.iter().map(|p| p.energy_j).collect();
    let corr = analysis::stats::pearson(&fct, &energy);

    let cluster = |pred: &dyn Fn(u32) -> bool| -> (f64, f64) {
        let sel: Vec<&ScatterPoint> = points.iter().filter(|p| pred(p.mtu)).collect();
        if sel.is_empty() {
            return (0.0, 0.0);
        }
        (
            analysis::stats::mean(&sel.iter().map(|p| p.fct_s).collect::<Vec<_>>()),
            analysis::stats::mean(&sel.iter().map(|p| p.energy_j).collect::<Vec<_>>()),
        )
    };

    let cluster_1500 = cluster(&|m| m == 1500);
    let cluster_jumbo = cluster(&|m| m >= 3000);
    Result {
        points,
        energy_fct_correlation: corr,
        cluster_1500,
        cluster_jumbo,
        matrix,
    }
}

/// Run the campaign and project it.
pub fn run(scale: crate::scale::Scale) -> Result {
    from_matrix(crate::matrix::run_matrix(scale))
}

/// Render the scatter as rows.
pub fn render(result: &Result) -> String {
    let mut t = analysis::table::Table::new(["cca", "mtu", "fct (s)", "energy (J)"]);
    for cell in &result.matrix.cells {
        t.row([
            cell.cca.clone(),
            cell.mtu.to_string(),
            format!("{:.3}", cell.fct_s.mean),
            format!("{:.1}", cell.energy_j.mean),
        ]);
    }
    format!(
        "Figure 7 — energy vs flow completion time (all CCA x MTU cells)\n\n{t}\n\
         energy-vs-FCT correlation: {:.2} (paper: strongly positive)\n\
         MTU-1500 cluster: fct {:.3} s, {:.1} J | jumbo cluster: fct {:.3} s, {:.1} J\n",
        result.energy_fct_correlation,
        result.cluster_1500.0,
        result.cluster_1500.1,
        result.cluster_jumbo.0,
        result.cluster_jumbo.1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{run_cell, MTUS};
    use cca::CcaKind;
    use netsim::units::MB;

    fn mini_matrix() -> Matrix {
        let seeds = [1u64];
        let bytes = 250 * MB;
        let mut cells = Vec::new();
        for cca in [CcaKind::Bbr, CcaKind::Cubic, CcaKind::Baseline] {
            for mtu in MTUS {
                cells.push(run_cell(cca, mtu, bytes, &seeds).expect("cell completes"));
            }
        }
        Matrix {
            schema_version: crate::matrix::MATRIX_SCHEMA_VERSION,
            transfer_bytes: bytes,
            repetitions: 1,
            seeds: seeds.to_vec(),
            cells,
            failed: Vec::new(),
        }
    }

    #[test]
    fn energy_rises_with_fct_and_clusters_separate() {
        let r = from_matrix(mini_matrix());
        assert!(
            r.energy_fct_correlation > 0.5,
            "energy must track completion time: {:.2}",
            r.energy_fct_correlation
        );
        // The 1500 cluster is slower and more expensive than the jumbo one.
        assert!(r.cluster_1500.0 > r.cluster_jumbo.0, "1500 cluster slower");
        assert!(
            r.cluster_1500.1 > r.cluster_jumbo.1,
            "1500 cluster costlier"
        );
    }

    #[test]
    fn render_has_all_cells() {
        let r = from_matrix(mini_matrix());
        let s = render(&r);
        assert!(s.contains("Figure 7"));
        assert!(s.matches("1500").count() >= 3);
    }
}
