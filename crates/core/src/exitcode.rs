//! The exit-code registry: one named constant per process exit status
//! used by the sim binaries.
//!
//! Exit codes are part of the scripted interface — `verify.sh` and the
//! campaign drivers branch on them — so the values here are frozen.
//! Binaries must exit through these names, never integer literals; the
//! `exit-code-registry` simlint rule enforces that. (simlint itself
//! depends on no workspace crate and keeps a local three-entry table.)
//!
//= DESIGN.md#exit-code-registry

/// Clean run: everything completed and every check passed.
pub const OK: i32 = 0;

/// The run itself failed: a cell errored out, a suite misbehaved, a
/// perf check regressed, or an artifact could not be written.
pub const FAILURE: i32 = 1;

/// Command-line usage error (bad flag, missing value).
pub const USAGE: i32 = 2;

/// The campaign matrix finished the process but is incomplete (cells
/// were skipped or never attempted); rerun with `--resume`.
pub const INCOMPLETE: i32 = 3;

/// Complete except for quarantined poison cells — results are valid
/// for every non-quarantined cell; see `quarantine.jsonl`.
pub const QUARANTINED: i32 = 4;

/// Results are valid but NOT crash-durable (journal or trace persist
/// failures); rerun with healthy storage before trusting `--resume`.
pub const DEGRADED: i32 = 5;

/// Interrupted by SIGINT; the journal is intact and `--resume`
/// continues the run. 128 + SIGINT(2), the shell convention.
pub const INTERRUPTED: i32 = 130;

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is an interface: values are frozen and distinct.
    //= DESIGN.md#inv-exit-code-registry
    #[test]
    fn codes_are_frozen_and_distinct() {
        let all = [
            OK,
            FAILURE,
            USAGE,
            INCOMPLETE,
            QUARANTINED,
            DEGRADED,
            INTERRUPTED,
        ];
        assert_eq!(all, [0, 1, 2, 3, 4, 5, 130]);
        let mut dedup = all.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "exit codes must be distinct");
    }
}
