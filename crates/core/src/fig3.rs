//! **Figure 3 / §4.1** — throughput-over-time traces for the fair and the
//! "full speed, then idle" schedules.
//!
//! Left panel: two CUBIC flows share the link at ~5 Gb/s each for ~2 s.
//! Right panel: each flow takes the full 10 Gb/s for ~1 s while the other
//! idles. Both move the same data; the right schedule is the
//! energy-efficient one.

use crate::scale::Scale;
use cca::CcaKind;
use netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use workload::prelude::*;

/// Configuration of the trace experiment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Bytes per flow.
    pub per_flow_bytes: u64,
    /// MTU.
    pub mtu: u32,
    /// Trace bin width.
    pub bin: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl Config {
    /// The paper's configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Config {
        Config {
            per_flow_bytes: scale.two_flow_bytes,
            mtu: 9000,
            bin: SimDuration::from_millis(10),
            seed: 1,
        }
    }
}

/// One schedule's traces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Panel {
    /// Time axis (bin centers, seconds).
    pub time_s: Vec<f64>,
    /// Flow 1 throughput (Gb/s) per bin.
    pub flow1_gbps: Vec<f64>,
    /// Flow 2 throughput (Gb/s) per bin.
    pub flow2_gbps: Vec<f64>,
    /// Total sender energy of this schedule (J).
    pub energy_j: f64,
    /// Completion of the later flow (s).
    pub window_s: f64,
}

/// Both panels.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// The fair schedule (left panel).
    pub fair: Panel,
    /// The full-speed-then-idle schedule (right panel).
    pub unfair: Panel,
}

fn to_panel(out: &ScenarioOutcome, bin: SimDuration) -> Panel {
    let traces = out
        .throughput_traces
        .as_ref()
        .expect("tracing enabled for Figure 3");
    let f1 = traces[0].clone();
    let f2 = traces[1].clone();
    let n = f1.len().max(f2.len());
    let pad = |mut v: Vec<f64>| {
        v.resize(n, 0.0);
        v
    };
    Panel {
        time_s: obs::series::bin_centers_s(n, bin.as_secs_f64()),
        flow1_gbps: pad(f1),
        flow2_gbps: pad(f2),
        energy_j: out.sender_energy_j,
        window_s: out.window.as_secs_f64(),
    }
}

/// Run both schedules.
pub fn run(cfg: &Config) -> Result {
    let fair_scenario = Scenario::new(
        cfg.mtu,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
        ],
    )
    .with_seed(cfg.seed)
    .with_trace(cfg.bin);
    let fair = workload::scenario::run(&fair_scenario).expect("fair schedule completes");

    let solo = Scenario::new(
        cfg.mtu,
        vec![FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes)],
    )
    .with_seed(cfg.seed);
    let solo_fct = workload::scenario::run(&solo)
        .expect("solo run completes")
        .reports[0]
        .completed_at
        .saturating_since(SimTime::ZERO);
    let unfair_scenario = Scenario::new(
        cfg.mtu,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes).with_start_delay(solo_fct),
        ],
    )
    .with_seed(cfg.seed)
    .with_trace(cfg.bin);
    let unfair = workload::scenario::run(&unfair_scenario).expect("serial schedule completes");

    Result {
        fair: to_panel(&fair, cfg.bin),
        unfair: to_panel(&unfair, cfg.bin),
    }
}

/// Render both series, paper-style.
pub fn render(result: &Result) -> String {
    let mut out = String::from(
        "Figure 3 — throughput vs time: fair (left) vs full-speed-then-idle (right)\n\n",
    );
    for (label, panel) in [
        ("fair", &result.fair),
        ("full-speed-then-idle", &result.unfair),
    ] {
        out.push_str(&format!(
            "[{label}] window = {:.3} s, sender energy = {:.1} J\n",
            panel.window_s, panel.energy_j
        ));
        let mut t = analysis::table::Table::new(["t (s)", "flow1 (Gbps)", "flow2 (Gbps)"]);
        // Print every Nth bin so panels stay readable.
        let step = (panel.time_s.len() / 20).max(1);
        for i in (0..panel.time_s.len()).step_by(step) {
            t.row([
                format!("{:.2}", panel.time_s[i]),
                format!("{:.2}", panel.flow1_gbps[i]),
                format!("{:.2}", panel.flow2_gbps[i]),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::MB;

    fn tiny() -> Config {
        Config {
            per_flow_bytes: 125 * MB, // 1 Gbit => ~0.1 s phases
            mtu: 9000,
            bin: SimDuration::from_millis(5),
            seed: 3,
        }
    }

    #[test]
    fn fair_panel_shows_sharing_and_unfair_shows_phases() {
        let r = run(&tiny());

        // Fair: mid-experiment, both flows near 5 Gb/s.
        let mid = r.fair.time_s.len() / 2;
        let f1 = r.fair.flow1_gbps[mid];
        let f2 = r.fair.flow2_gbps[mid];
        assert!((3.0..7.0).contains(&f1), "fair flow1 mid {f1}");
        assert!((3.0..7.0).contains(&f2), "fair flow2 mid {f2}");

        // Unfair: first quarter flow1 ~10, flow2 ~0; last quarter reversed.
        let q1 = r.unfair.time_s.len() / 4;
        let q3 = 3 * r.unfair.time_s.len() / 4;
        assert!(r.unfair.flow1_gbps[q1] > 8.0, "phase 1 flow1 at line rate");
        assert!(r.unfair.flow2_gbps[q1] < 1.0, "phase 1 flow2 idle");
        assert!(r.unfair.flow2_gbps[q3] > 8.0, "phase 2 flow2 at line rate");
        assert!(r.unfair.flow1_gbps[q3] < 1.0, "phase 2 flow1 idle");
    }

    #[test]
    fn schedules_move_the_same_data_but_unfair_costs_less() {
        let r = run(&tiny());
        // Same aggregate data, similar windows.
        assert!((r.fair.window_s - r.unfair.window_s).abs() / r.fair.window_s < 0.15);
        assert!(
            r.unfair.energy_j < r.fair.energy_j,
            "serial {} J must beat fair {} J",
            r.unfair.energy_j,
            r.fair.energy_j
        );
    }

    #[test]
    fn render_has_both_panels() {
        let r = run(&tiny());
        let s = render(&r);
        assert!(s.contains("[fair]"));
        assert!(s.contains("[full-speed-then-idle]"));
    }
}
