//! **Theorem 1 / §4.1** — the fair allocation maximizes power.
//!
//! Let `x ∈ R^n` be flow throughputs on a link of capacity `C`, and
//! `P(x) = Σ p(x_i)` with `p` strictly concave. Then the equal split
//! `x* = (C/n, ..., C/n)` satisfies `P(x*) > P(y)` for every other
//! allocation `y` with `Σ y_i = C`. The proof is one application of
//! Jensen's inequality; this module verifies it numerically for the
//! calibrated power curve and for arbitrary strictly concave functions,
//! and the property-based tests hammer it with random instances.

use energy::prelude::*;
use serde::{Deserialize, Serialize};

/// Total power of an allocation under per-flow power function `p`.
pub fn total_power(p: impl Fn(f64) -> f64, alloc: &[f64]) -> f64 {
    alloc.iter().map(|&x| p(x)).sum()
}

/// The fair allocation of capacity `c` over `n` flows.
pub fn fair_allocation(c: f64, n: usize) -> Vec<f64> {
    assert!(n > 0 && c > 0.0);
    vec![c / n as f64; n]
}

/// Check Theorem 1 for one instance: returns the power gap
/// `P(fair) - P(alloc)`, which must be positive for any non-fair `alloc`.
pub fn power_gap(p: impl Fn(f64) -> f64, c: f64, alloc: &[f64]) -> f64 {
    let total: f64 = alloc.iter().sum();
    assert!(
        (total - c).abs() < 1e-6 * c.max(1.0),
        "allocation must sum to capacity: {total} vs {c}"
    );
    let fair = fair_allocation(c, alloc.len());
    total_power(&p, &fair) - total_power(&p, alloc)
}

/// A strictly concave per-flow power function assembled from a random
/// seed: `p(x) = a*sqrt(x + s) + b*(1 - e^(-x/t))` with positive
/// coefficients. Used by the demonstration binary and the property tests.
pub fn random_concave(seed: u64) -> impl Fn(f64) -> f64 {
    let mut rng = netsim::rng::SimRng::new(seed);
    let a = rng.range_f64(0.5, 20.0);
    let s = rng.range_f64(0.1, 5.0);
    let b = rng.range_f64(0.5, 30.0);
    let t = rng.range_f64(0.5, 8.0);
    move |x: f64| a * (x + s).sqrt() + b * (1.0 - (-x / t).exp())
}

/// One demonstration row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DemoRow {
    /// Description of the allocation.
    pub allocation: Vec<f64>,
    /// Total power of the allocation (calibrated curve, W).
    pub power_w: f64,
    /// Power of the fair allocation of the same capacity (W).
    pub fair_power_w: f64,
}

/// Result of the demonstration sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// Capacity used (Gb/s).
    pub capacity_gbps: f64,
    /// Rows, every one of which must satisfy `power_w < fair_power_w`.
    pub rows: Vec<DemoRow>,
    /// Random-instance trials performed.
    pub random_trials: usize,
    /// Random-instance violations found (must be zero).
    pub violations: usize,
}

/// Run the numeric verification: a curated sweep on the calibrated curve
/// plus `trials` random concave instances.
pub fn run(trials: usize) -> Result {
    let model = reference_host_model();
    let ctx = HostContext {
        background_util: 0.0,
        cc_cost_per_ack_j: cc_cost_per_ack_ref_j(),
    };
    let p = |x: f64| model.sender_power_at(x, 9000, 0.5, ctx);
    let c = 10.0;

    let fair = fair_allocation(c, 2);
    let fair_power = total_power(p, &fair);
    let mut rows = Vec::new();
    for f in [0.55, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let alloc = vec![c * f, c * (1.0 - f)];
        rows.push(DemoRow {
            power_w: total_power(p, &alloc),
            allocation: alloc,
            fair_power_w: fair_power,
        });
    }
    // And some n > 2 allocations.
    for (i, alloc) in [
        vec![4.0, 3.0, 2.0, 1.0],
        vec![7.0, 1.0, 1.0, 1.0],
        vec![9.7, 0.1, 0.1, 0.1],
    ]
    .into_iter()
    .enumerate()
    {
        let fair_n = total_power(p, &fair_allocation(c, alloc.len()));
        let _ = i;
        rows.push(DemoRow {
            power_w: total_power(p, &alloc),
            allocation: alloc,
            fair_power_w: fair_n,
        });
    }

    // Random instances.
    let mut violations = 0;
    let mut rng = netsim::rng::SimRng::new(42);
    for trial in 0..trials {
        let p = random_concave(trial as u64);
        let n = 2 + (rng.next_below(6) as usize);
        let c = rng.range_f64(1.0, 50.0);
        // Random positive allocation normalized to capacity.
        let mut alloc: Vec<f64> = (0..n).map(|_| rng.range_f64(0.01, 1.0)).collect();
        let sum: f64 = alloc.iter().sum();
        for a in &mut alloc {
            *a *= c / sum;
        }
        // Skip near-fair draws: the theorem's inequality is strict only
        // for genuinely different allocations.
        let fair_share = c / n as f64;
        if alloc.iter().all(|&a| (a - fair_share).abs() < 1e-3 * c) {
            continue;
        }
        if power_gap(p, c, &alloc) <= 0.0 {
            violations += 1;
        }
    }

    Result {
        capacity_gbps: c,
        rows,
        random_trials: trials,
        violations,
    }
}

/// Render the verification table.
pub fn render(result: &Result) -> String {
    let mut t = analysis::table::Table::new(["allocation (Gbps)", "P(alloc) (W)", "P(fair) (W)"]);
    for row in &result.rows {
        let alloc = row
            .allocation
            .iter()
            .map(|a| format!("{a:.1}"))
            .collect::<Vec<_>>()
            .join("/");
        t.row([
            alloc,
            format!("{:.2}", row.power_w),
            format!("{:.2}", row.fair_power_w),
        ]);
    }
    format!(
        "Theorem 1 — the fair allocation maximizes instantaneous power\n\
         (calibrated curve, capacity {} Gb/s)\n\n{t}\n\
         random concave instances: {} trials, {} violations\n",
        result.capacity_gbps, result.random_trials, result.violations
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_curve_obeys_theorem() {
        let r = run(200);
        for row in &r.rows {
            assert!(
                row.power_w < row.fair_power_w,
                "allocation {:?} must draw less than fair: {} vs {}",
                row.allocation,
                row.power_w,
                row.fair_power_w
            );
        }
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn gap_grows_with_unfairness_for_two_flows() {
        let p = random_concave(7);
        let mut prev = 0.0;
        for f in [0.6, 0.7, 0.8, 0.9, 1.0] {
            let gap = power_gap(&p, 10.0, &[10.0 * f, 10.0 * (1.0 - f)]);
            assert!(gap > prev, "gap must grow with imbalance (f={f})");
            prev = gap;
        }
    }

    #[test]
    #[should_panic(expected = "allocation must sum to capacity")]
    fn mismatched_capacity_is_rejected() {
        power_gap(|x| x.sqrt(), 10.0, &[1.0, 2.0]);
    }

    #[test]
    fn render_reports_zero_violations() {
        let r = run(10);
        assert!(render(&r).contains("0 violations"));
    }
}
