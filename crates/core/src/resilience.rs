//! **Resilience suite** — the curated scenario battery with
//! machine-checkable expectations.
//!
//! Every scenario here is built on the [`scenario`] DSL: a topology, a
//! traffic mix, optional chaos on the bottleneck, and typed
//! expectations that evaluate into structured pass/fail reports. The
//! suite answers, in one deterministic verdict matrix, the questions
//! the paper's robustness story depends on:
//!
//! * do flows survive loss, reordering, corruption, and link flaps on
//!   the testbed bottleneck (no aborts, utilization recovers)?
//! * does fairness hold where it should (clean dumbbell) and degrade
//!   where it must (parking lot)?
//! * does the Figure-1 energy ordering — serial cheaper than fair —
//!   hold as a *checked expectation* rather than an eyeballed table?
//!
//! One entry is **negative**: `flap-no-recovery-window` demands
//! recovery within 1 ms of a multi-millisecond outage, which is
//! impossible; the suite only behaves if that scenario *fails* its
//! `RecoveryWithin` check with a measured recovery time. A checker that
//! can't reject anything proves nothing.
//!
//! Thresholds are calibrated at [`Scale::tiny`] (the `verify.sh
//! --scenarios` gate) with wide margins; they hold at larger scales,
//! where longer windows only improve utilization and fairness.

use crate::scale::Scale;
use scenario::prelude::*;
use scenario::suite::run_suite;

/// The suite name (verdict header, artifact filenames).
pub const SUITE_NAME: &str = "resilience";

fn two_bulk(name: &str, bytes: u64, seed: u64) -> ScenarioBuilder {
    ScenarioBuilder::new(name)
        .traffic(Traffic::bulk(CcaKind::Cubic, bytes))
        .traffic(Traffic::bulk(CcaKind::Cubic, bytes))
        .with_seed(seed)
}

/// Build the curated suite at `scale`. Runs one solo measurement (for
/// the serial schedule's hand-off time), so this takes a moment at
/// large scales; everything else is pure spec construction.
pub fn suite(scale: Scale) -> Result<Suite, RunError> {
    let bytes = scale.two_flow_bytes;
    let seed = scale.seeds()[0];
    let mut suite = Suite::new(SUITE_NAME);

    // 1. The clean testbed: two CUBIC flows must share fairly, fill the
    //    pipe, stay abort-free, and spend bounded energy per byte.
    suite.push(
        two_bulk("clean-dumbbell-cubic2", bytes, seed)
            .expect_check(Expectation::AbortFree)
            .expect_check(Expectation::UtilizationFloor { min_fraction: 0.60 })
            .expect_check(Expectation::JainFairnessBand {
                min: 0.90,
                max: 1.0,
            })
            .expect_check(Expectation::EnergyBudget {
                max_j_per_gb: 120.0,
            })
            .build()
            .expect("clean-dumbbell-cubic2 is well-formed"),
    );

    // 2. A mixed application layer: bulk + RPC fan + rate-limited video
    //    sharing one bottleneck. Everything must complete.
    suite.push(
        ScenarioBuilder::new("mixed-bulk-rpc-video")
            .traffic(Traffic::bulk(CcaKind::Cubic, bytes))
            .traffic(Traffic::Rpc {
                cca: CcaKind::Cubic,
                responses: 4,
                resp_bytes: bytes / 32,
                interval: SimDuration::from_millis(1),
                start: SimDuration::from_millis(1),
            })
            .traffic(Traffic::Video {
                cca: CcaKind::Bbr,
                bytes: bytes / 8,
                rate: Rate::from_mbps(200.0),
                start: SimDuration::ZERO,
            })
            .with_seed(seed)
            .expect_check(Expectation::AbortFree)
            // The rate-limited video trails long after the bulk flows
            // finish, idling the bottleneck for most of the window, so
            // the floor only guards against pathological collapse.
            .expect_check(Expectation::UtilizationFloor { min_fraction: 0.10 })
            .build()
            .expect("mixed-bulk-rpc-video is well-formed"),
    );

    // 3. Random loss at 0.1%: the transport absorbs it without aborting
    //    and still keeps the pipe busy.
    suite.push(
        two_bulk("loss-1e3", bytes, seed)
            .chaos(ChaosPhase::Loss { prob: 1e-3 })
            .expect_check(Expectation::AbortFree)
            .expect_check(Expectation::UtilizationFloor { min_fraction: 0.45 })
            .build()
            .expect("loss-1e3 is well-formed"),
    );

    // 4. Reordering + corruption together: dupacks that lie and frames
    //    that arrive broken. Still no aborts.
    suite.push(
        two_bulk("reorder-corrupt", bytes, seed)
            .chaos(ChaosPhase::Reorder {
                prob: 5e-3,
                hold: SimDuration::from_micros(200),
            })
            .chaos(ChaosPhase::Corrupt { prob: 1e-4 })
            .expect_check(Expectation::AbortFree)
            .expect_check(Expectation::UtilizationFloor { min_fraction: 0.40 })
            .build()
            .expect("reorder-corrupt is well-formed"),
    );

    // 5. An outage mid-transfer: the link flaps down for 3 ms; both
    //    flows must re-enter their fair-share band within 500 ms of the
    //    link coming back, and nobody aborts.
    suite.push(
        two_bulk("flap-recovery", bytes, seed)
            .chaos(ChaosPhase::flap(
                SimTime::from_millis(4),
                SimDuration::from_millis(3),
            ))
            .expect_check(Expectation::AbortFree)
            .expect_check(Expectation::RecoveryWithin {
                band_frac: 0.25,
                within: SimDuration::from_millis(500),
            })
            .build()
            .expect("flap-recovery is well-formed"),
    );

    // 6. The Figure-1 headline as a checked expectation: the serial
    //    "full speed, then idle" schedule must beat the fair 50/50
    //    split on window-equalized energy. The hand-off time comes from
    //    a real solo run on the same seed, exactly like the chaos
    //    experiment's schedule construction.
    let solo = ScenarioBuilder::new("solo-probe")
        .traffic(Traffic::bulk(CcaKind::Cubic, bytes))
        .with_seed(seed)
        .build()
        .expect("solo-probe is well-formed")
        .run()?;
    let solo_fct = solo.measured.reports[0]
        .completed_at
        .saturating_since(SimTime::ZERO);
    let fair = two_bulk("fair-split-baseline", bytes, seed)
        .build()
        .expect("fair-split-baseline is well-formed");
    suite.push(
        ScenarioBuilder::new("serial-beats-fair-energy")
            .traffic(Traffic::bulk(CcaKind::Cubic, bytes))
            .traffic(Traffic::Bulk {
                cca: CcaKind::Cubic,
                bytes,
                start: solo_fct,
            })
            .with_seed(seed)
            .baseline(fair)
            .expect_check(Expectation::AbortFree)
            .expect_check(Expectation::SavingsOrdering {
                min_savings_pct: 2.0,
            })
            .build()
            .expect("serial-beats-fair-energy is well-formed"),
    );

    // 7. Incast fan-in: 8 senders, a 3:1 CUBIC:BBR mix, one rack.
    suite.push(
        ScenarioBuilder::new("incast-fan-in")
            .topology(Topology::Incast { senders: 8 })
            .traffic(Traffic::Mix {
                flows: 16,
                mix: vec![(CcaKind::Cubic, 3), (CcaKind::Bbr, 1)],
                bytes_per_flow: bytes / 16,
            })
            .with_seed(seed)
            .expect_check(Expectation::AbortFree)
            .build()
            .expect("incast-fan-in is well-formed"),
    );

    // 8. The many-flow scale-out shape: two racks of four hosts.
    suite.push(
        ScenarioBuilder::new("rack-grid-mix")
            .topology(Topology::RackGrid {
                racks: 2,
                hosts_per_rack: 4,
            })
            .traffic(Traffic::Mix {
                flows: 16,
                mix: vec![(CcaKind::Cubic, 10), (CcaKind::Bbr, 1)],
                bytes_per_flow: bytes / 16,
            })
            .with_seed(seed)
            .expect_check(Expectation::AbortFree)
            .expect_check(Expectation::EnergyBudget {
                max_j_per_gb: 400.0,
            })
            .build()
            .expect("rack-grid-mix is well-formed"),
    );

    // 9. The parking lot: the through flow crosses two contended hops
    //    against per-hop locals. Unfairness is structural here — the
    //    band explicitly sits *below* perfect fairness, checking the
    //    topology actually bites.
    suite.push(
        ScenarioBuilder::new("parking-lot-through")
            .topology(Topology::ParkingLot { hops: 2 })
            .traffic(Traffic::bulk(CcaKind::Cubic, bytes / 2))
            .traffic(Traffic::bulk(CcaKind::Cubic, bytes / 2))
            .traffic(Traffic::bulk(CcaKind::Cubic, bytes / 2))
            .with_seed(seed)
            .expect_check(Expectation::AbortFree)
            .expect_check(Expectation::JainFairnessBand {
                min: 0.30,
                max: 0.999,
            })
            .build()
            .expect("parking-lot-through is well-formed"),
    );

    // 10. NEGATIVE: recovery from a 3 ms outage within 1 ms is
    //     impossible. This entry behaves only by FAILING its
    //     `RecoveryWithin` check with the real measured recovery time —
    //     the suite's proof that the expectations engine has teeth.
    suite.push_negative(
        two_bulk("flap-no-recovery-window", bytes, seed)
            .chaos(ChaosPhase::flap(
                SimTime::from_millis(4),
                SimDuration::from_millis(3),
            ))
            .expect_check(Expectation::RecoveryWithin {
                band_frac: 0.25,
                within: SimDuration::from_millis(1),
            })
            .build()
            .expect("flap-no-recovery-window is well-formed"),
    );

    Ok(suite)
}

/// Build and run the suite at `scale`.
pub fn run(scale: Scale) -> Result<SuiteOutcome, RunError> {
    Ok(run_suite(&suite(scale)?))
}

/// Render the verdict matrix as a human-readable table.
pub fn render(verdict: &SuiteVerdict) -> String {
    let mut t = analysis::table::Table::new(["scenario", "chaos", "checks", "verdict"]);
    for v in &verdict.scenarios {
        let checks = v
            .expectations
            .iter()
            .map(|r| format!("{}{}", if r.passed { "+" } else { "-" }, r.name.as_str()))
            .collect::<Vec<_>>()
            .join(" ");
        let verdict_str = match (&v.error, v.behaved, v.negative) {
            (Some(err), _, _) => format!("ERROR: {err}"),
            (None, true, false) => "ok".to_string(),
            (None, true, true) => "ok (failed as designed)".to_string(),
            (None, false, _) => "MISBEHAVED".to_string(),
        };
        t.row([
            v.name.clone(),
            if v.chaos.is_empty() {
                "-".to_string()
            } else {
                v.chaos.join(" ")
            },
            checks,
            verdict_str,
        ]);
    }
    format!(
        "Resilience — scenario DSL suite with machine-checked expectations\n\
         (negative entries must fail; everything else must pass)\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_behaves_end_to_end() {
        let out = run(Scale::tiny()).expect("suite runs");
        assert!(out.verdict.all_behaved, "{}", out.verdict.to_json());
        assert_eq!(out.verdict.scenarios.len(), 10);
    }

    #[test]
    fn negative_entry_fails_with_a_measured_recovery_time() {
        let out = run(Scale::tiny()).expect("suite runs");
        let neg = out
            .verdict
            .scenarios
            .iter()
            .find(|v| v.name == "flap-no-recovery-window")
            .expect("negative entry present");
        assert!(neg.negative && !neg.passed && neg.behaved);
        let report = neg
            .expectations
            .iter()
            .find(|r| r.name == "recovery_within")
            .expect("recovery check present");
        assert!(!report.passed);
        // The structured report names the real measured recovery time:
        // longer than the impossible 1 ms deadline, shorter than the run.
        assert!(report.measured > report.target, "{report:?}");
        assert!(report.detail.contains('s'), "{report:?}");
    }

    #[test]
    fn savings_ordering_is_checked_not_eyeballed() {
        let out = run(Scale::tiny()).expect("suite runs");
        let serial = out
            .verdict
            .scenarios
            .iter()
            .find(|v| v.name == "serial-beats-fair-energy")
            .expect("serial entry present");
        let ordering = serial
            .expectations
            .iter()
            .find(|r| r.name == "savings_ordering")
            .expect("ordering check present");
        assert!(ordering.passed, "{ordering:?}");
        assert!(
            ordering.measured > 2.0,
            "serial must save energy over fair: {ordering:?}"
        );
    }

    #[test]
    fn render_lists_every_scenario() {
        let out = run(Scale::tiny()).expect("suite runs");
        let s = render(&out.verdict);
        for v in &out.verdict.scenarios {
            assert!(s.contains(&v.name), "missing {}", v.name);
        }
        assert!(s.contains("failed as designed"));
    }
}
